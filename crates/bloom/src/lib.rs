//! Bloom filters for the Monkey LSM-tree key-value store.
//!
//! This crate provides the in-memory Bloom filters that every sorted run of
//! the LSM-tree carries (one filter per run). It exposes exactly the
//! knobs the Monkey paper (SIGMOD'17) tunes:
//!
//! * the number of **bits** allocated to a filter, and
//! * the number of **entries** the filter covers,
//!
//! which together determine the false positive rate through Equation 2 of
//! the paper:
//!
//! ```text
//! FPR = e^(-(bits/entries) * ln(2)^2)
//! ```
//!
//! assuming the optimal number of hash functions `k = (bits/entries) * ln 2`.
//! The [`math`] module implements that equation and its inverses; the
//! [`BloomFilter`] type implements the filter itself using the
//! Kirsch–Mitzenmacher double-hashing scheme over a 128-bit base hash, which
//! preserves the asymptotic false-positive behaviour of truly independent
//! hash functions while computing only two.
//!
//! # Example
//!
//! ```
//! use monkey_bloom::{BloomFilter, math};
//!
//! // A filter over 1000 entries with 10 bits per entry: ~1% FPR.
//! let mut filter = BloomFilter::with_bits_per_entry(1000, 10.0);
//! filter.insert(b"hello");
//! assert!(filter.contains(b"hello"));
//! assert!(math::false_positive_rate(10_000.0, 1000.0) < 0.01);
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod blocked;
pub mod hash;
pub mod math;

mod filter;

pub use bits::BitVec;
pub use blocked::BlockedBloomFilter;
pub use filter::{BloomFilter, BloomFilterBuilder, Filter, FilterVariant, ProbeScheme};
pub use hash::{hash_pair, HashPair};
