//! Cache-line-blocked Bloom filter (Putze, Sanders, Singler 2007).
//!
//! A flat Bloom filter touches `k` random cache lines per probe; on filters
//! larger than the last-level cache that is `k` memory stalls on the point
//! lookup hot path. The blocked variant first maps a key to one 512-bit
//! (64-byte) block — exactly one cache line — and derives all `k` probe bits
//! *inside* that block, so a negative probe costs at most one cache miss.
//!
//! The price is accuracy: block loads fluctuate around the mean, and
//! overloaded blocks false-positive far more often than Equation 2 predicts.
//! [`BlockedBloomFilter::theoretical_fpr`] therefore uses the honest Poisson
//! mixture model in [`math::blocked_false_positive_rate`], never Equation 2,
//! so the engine's expected-I/O accounting stays truthful when this variant
//! is selected.

use crate::hash::{fast_range, hash_pair, HashPair};
use crate::math;

/// Words (u64) per block: 512 bits = 64 bytes = one cache line.
const WORDS_PER_BLOCK: usize = math::BLOCK_BITS / 64;

/// A cache-line-blocked Bloom filter over byte-string keys.
///
/// Behaves like [`crate::BloomFilter`] — including the zero-bit degenerate
/// filter that reports *maybe* for everything — but with single-cache-line
/// probe locality and the matching (worse) false positive model.
#[derive(Debug, Clone)]
pub struct BlockedBloomFilter {
    /// Bit storage, `WORDS_PER_BLOCK` words per block.
    words: Vec<u64>,
    hashes: u32,
    entries: u64,
}

impl BlockedBloomFilter {
    /// Creates a filter sized for `expected_entries` keys at `bits_per_entry`
    /// bits each, rounded up to whole 512-bit blocks, with the Eq.-2-optimal
    /// hash count for the requested budget.
    ///
    /// `bits_per_entry <= 0` yields the degenerate always-positive filter.
    pub fn with_bits_per_entry(expected_entries: u64, bits_per_entry: f64) -> Self {
        let bits = bits_per_entry * expected_entries as f64;
        let (words, hashes) = if bits.is_finite() && bits >= 1.0 && expected_entries > 0 {
            let blocks = (bits / math::BLOCK_BITS as f64).ceil() as usize;
            (
                vec![0u64; blocks * WORDS_PER_BLOCK],
                math::optimal_hash_count(bits_per_entry),
            )
        } else {
            (Vec::new(), 1)
        };
        Self {
            words,
            hashes,
            entries: 0,
        }
    }

    /// The block index for a key: `h1` fast-ranged over the block count.
    #[inline]
    fn block_of(&self, pair: HashPair) -> usize {
        fast_range(pair.h1, (self.words.len() / WORDS_PER_BLOCK) as u64) as usize
    }

    /// Bit offset of probe `i` inside the key's block: double hashing with
    /// origin `h2` and an odd stride derived from `h1`, masked to the block.
    /// (`h1`'s low bits are nearly independent of the block choice, which
    /// fast-range takes from its high bits.)
    #[inline]
    fn bit_in_block(pair: HashPair, i: u32) -> usize {
        (pair.h2.wrapping_add((i as u64).wrapping_mul(pair.h1 | 1)) & (math::BLOCK_BITS as u64 - 1))
            as usize
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hashed(&mut self, pair: HashPair) {
        self.entries += 1;
        if self.words.is_empty() {
            return;
        }
        let base = self.block_of(pair) * WORDS_PER_BLOCK;
        for i in 0..self.hashes {
            let bit = Self::bit_in_block(pair, i);
            self.words[base + (bit >> 6)] |= 1u64 << (bit & 63);
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        self.insert_hashed(hash_pair(key));
    }

    /// Tests a pre-hashed key. `false` means definitely absent.
    pub fn contains_hashed(&self, pair: HashPair) -> bool {
        if self.words.is_empty() {
            return true; // degenerate filter: always a (possible) positive
        }
        let base = self.block_of(pair) * WORDS_PER_BLOCK;
        (0..self.hashes).all(|i| {
            let bit = Self::bit_in_block(pair, i);
            self.words[base + (bit >> 6)] & (1u64 << (bit & 63)) != 0
        })
    }

    /// Tests a key. `false` means the key is definitely absent; `true` means
    /// it may be present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.contains_hashed(hash_pair(key))
    }

    /// Number of bits in the filter (always a multiple of 512).
    pub fn nbits(&self) -> usize {
        self.words.len() * 64
    }

    /// Number of probe bits per key.
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.entries
    }

    /// Main-memory footprint in bits. Blocks are whole words, so this equals
    /// [`nbits`](Self::nbits).
    pub fn memory_bits(&self) -> usize {
        self.nbits()
    }

    /// The false positive rate predicted by the Poisson-mixture block model
    /// for this filter's actual geometry and inserted entries. Deliberately
    /// *not* Equation 2 — see the module docs.
    pub fn theoretical_fpr(&self) -> f64 {
        math::blocked_false_positive_rate(self.nbits() as f64, self.entries as f64, self.hashes)
    }

    /// Serializes the filter: format magic, hash count, entry count, word
    /// count, then the words.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&crate::filter::MAGIC_BLOCKED.to_le_bytes());
        out.extend_from_slice(&self.hashes.to_le_bytes());
        out.extend_from_slice(&self.entries.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Deserializes a filter produced by [`encode`](Self::encode). Returns
    /// the filter and bytes consumed, or `None` on truncated or foreign
    /// input.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 24 {
            return None;
        }
        let magic = u32::from_le_bytes(buf[..4].try_into().unwrap());
        if magic != crate::filter::MAGIC_BLOCKED {
            return None;
        }
        let hashes = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        let entries = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let nwords = u64::from_le_bytes(buf[16..24].try_into().unwrap()) as usize;
        if !nwords.is_multiple_of(WORDS_PER_BLOCK) || buf.len() < 24 + nwords * 8 {
            return None;
        }
        let words = buf[24..24 + nwords * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some((
            Self {
                words,
                hashes,
                entries,
            },
            24 + nwords * 8,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64, tag: u8) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut k = vec![tag];
                k.extend_from_slice(&i.to_be_bytes());
                k
            })
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(5_000, 0);
        let mut f = BlockedBloomFilter::with_bits_per_entry(5_000, 8.0);
        for k in &present {
            f.insert(k);
        }
        for k in &present {
            assert!(f.contains(k), "false negative");
        }
    }

    #[test]
    fn all_probes_stay_in_one_block() {
        for key in [b"a".as_slice(), b"longer key material", b""] {
            let pair = hash_pair(key);
            for i in 0..64 {
                assert!(BlockedBloomFilter::bit_in_block(pair, i) < math::BLOCK_BITS);
            }
        }
    }

    #[test]
    fn geometry_rounds_up_to_whole_blocks() {
        let f = BlockedBloomFilter::with_bits_per_entry(10, 10.0); // 100 bits
        assert_eq!(f.nbits(), math::BLOCK_BITS);
        assert_eq!(f.memory_bits(), math::BLOCK_BITS);
        let f = BlockedBloomFilter::with_bits_per_entry(1000, 10.0); // 10_000 bits
        assert_eq!(f.nbits() % math::BLOCK_BITS, 0);
        assert!(f.nbits() >= 10_000);
    }

    #[test]
    fn degenerate_zero_bit_filter_always_positive() {
        let mut f = BlockedBloomFilter::with_bits_per_entry(100, 0.0);
        assert_eq!(f.nbits(), 0);
        assert!(f.contains(b"anything"));
        f.insert(b"x");
        assert!(f.contains(b"y"));
        assert_eq!(f.theoretical_fpr(), 1.0);
    }

    #[test]
    fn empirical_fpr_tracks_poisson_model() {
        let n = 20_000u64;
        for &bpe in &[5.0, 10.0] {
            let mut f = BlockedBloomFilter::with_bits_per_entry(n, bpe);
            for k in keys(n, 0) {
                f.insert(&k);
            }
            let probes = 50_000u64;
            let fp = keys(probes, 1).iter().filter(|k| f.contains(k)).count();
            let measured = fp as f64 / probes as f64;
            let predicted = f.theoretical_fpr();
            assert!(
                measured < predicted * 2.5 + 1e-3,
                "bpe={bpe}: measured {measured} vs predicted {predicted}"
            );
            assert!(
                measured > predicted / 2.5 - 1e-3,
                "bpe={bpe}: measured {measured} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip_preserves_behaviour() {
        let mut f = BlockedBloomFilter::with_bits_per_entry(500, 10.0);
        for k in keys(500, 3) {
            f.insert(&k);
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = BlockedBloomFilter::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(g.nbits(), f.nbits());
        assert_eq!(g.hash_count(), f.hash_count());
        assert_eq!(g.inserted(), 500);
        for k in keys(500, 3) {
            assert!(g.contains(&k));
        }
    }

    #[test]
    fn decode_truncated_or_foreign_is_none() {
        let mut f = BlockedBloomFilter::with_bits_per_entry(10, 10.0);
        f.insert(b"k");
        let mut buf = Vec::new();
        f.encode(&mut buf);
        for cut in [0, 5, 23, buf.len() - 1] {
            assert!(
                BlockedBloomFilter::decode(&buf[..cut]).is_none(),
                "cut={cut}"
            );
        }
        // A flat-filter encoding (different magic) must not decode as a
        // blocked filter.
        let mut flat = Vec::new();
        crate::BloomFilter::with_bits_per_entry(10, 10.0).encode(&mut flat);
        assert!(BlockedBloomFilter::decode(&flat).is_none());
    }
}
