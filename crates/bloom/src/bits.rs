//! A compact, fixed-size bit vector backing the Bloom filter.

/// A fixed-length bit vector stored in 64-bit words.
///
/// The length is fixed at construction. Bits are addressed `0..len()`.
#[derive(Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector with `len` bits, all cleared.
    pub fn new(len: usize) -> Self {
        let words = vec![0u64; len.div_ceil(64)];
        Self { words, len }
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the bit at `idx`. Returns whether the bit was previously set.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn set(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let was = *word & mask != 0;
        *word |= mask;
        was
    }

    /// Returns the bit at `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits set, in `[0, 1]`. Returns 0 for an empty vector.
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Memory occupied by the bit data itself, in bits (a multiple of 64).
    pub fn allocated_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Serializes the vector as an 8-byte little-endian length followed by
    /// the raw words.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Deserializes a vector produced by [`encode`](Self::encode).
    /// Returns the vector and the number of bytes consumed, or `None` when
    /// the input is truncated.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
        let nwords = len.div_ceil(64);
        let need = 8 + nwords * 8;
        if buf.len() < need {
            return None;
        }
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let off = 8 + i * 8;
            words.push(u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()));
        }
        Some((Self { words, len }, need))
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitVec")
            .field("len", &self.len)
            .field("ones", &self.count_ones())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let bv = BitVec::new(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        for i in 0..130 {
            assert!(!bv.get(i));
        }
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut bv = BitVec::new(200);
        for i in (0..200).step_by(3) {
            assert!(!bv.set(i), "first set reports previously clear");
        }
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0);
        }
        assert_eq!(bv.count_ones(), 67);
    }

    #[test]
    fn set_reports_already_set() {
        let mut bv = BitVec::new(10);
        assert!(!bv.set(7));
        assert!(bv.set(7));
    }

    #[test]
    fn boundary_bits() {
        let mut bv = BitVec::new(128);
        bv.set(0);
        bv.set(63);
        bv.set(64);
        bv.set(127);
        assert!(bv.get(0) && bv.get(63) && bv.get(64) && bv.get(127));
        assert_eq!(bv.count_ones(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::new(64).get(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitVec::new(0).set(0);
    }

    #[test]
    fn fill_ratio_empty_and_half() {
        assert_eq!(BitVec::new(0).fill_ratio(), 0.0);
        let mut bv = BitVec::new(4);
        bv.set(0);
        bv.set(1);
        assert!((bv.fill_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut bv = BitVec::new(77);
        for i in [0, 5, 13, 64, 76] {
            bv.set(i);
        }
        let mut buf = Vec::new();
        bv.encode(&mut buf);
        let (back, used) = BitVec::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, bv);
    }

    #[test]
    fn decode_truncated_is_none() {
        let mut bv = BitVec::new(100);
        bv.set(42);
        let mut buf = Vec::new();
        bv.encode(&mut buf);
        assert!(BitVec::decode(&buf[..buf.len() - 1]).is_none());
        assert!(BitVec::decode(&buf[..4]).is_none());
    }

    #[test]
    fn allocated_bits_rounds_up_to_words() {
        assert_eq!(BitVec::new(1).allocated_bits(), 64);
        assert_eq!(BitVec::new(64).allocated_bits(), 64);
        assert_eq!(BitVec::new(65).allocated_bits(), 128);
    }
}
