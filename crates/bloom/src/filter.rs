//! The Bloom filter proper, plus the variant-dispatching [`Filter`] wrapper
//! and the versioned on-disk filter format.
//!
//! # On-disk format
//!
//! The legacy encoding (format v0) was `hashes: u32 | entries: u64 | bits`,
//! with probe positions reduced by `%`. The current encoding prefixes a
//! magic `u32 >= 0xFFFF_FF00` whose low byte carries the filter *flavor*:
//!
//! ```text
//! 0xFFFF_FF00  standard flat filter, fast-range probe reduction
//! 0xFFFF_FF01  cache-line-blocked filter
//! ```
//!
//! A legacy stream is recognized by its first `u32` being a plausible hash
//! count (far below the magic range) and decodes to a filter that keeps the
//! legacy `%` reduction, so its persisted bits remain findable. Legacy
//! filters also re-encode in the legacy layout — the format of a filter is
//! sticky until the filter is rebuilt from its keys.

use crate::bits::BitVec;
use crate::blocked::BlockedBloomFilter;
use crate::hash::{hash_pair, probe, probe_legacy, HashPair};
use crate::math;

/// Format magic of the standard flat filter with fast-range probes.
pub(crate) const MAGIC_STANDARD: u32 = 0xFFFF_FF00;
/// Format magic of the cache-line-blocked filter.
pub(crate) const MAGIC_BLOCKED: u32 = 0xFFFF_FF01;

/// How a flat filter reduces a 64-bit probe hash to a bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeScheme {
    /// Lemire multiply-shift fast range — the current format.
    FastRange,
    /// 64-bit `%` — filters decoded from the pre-magic format keep this so
    /// their bits stay findable; a rebuild upgrades them.
    Legacy,
}

/// A Bloom filter over byte-string keys.
///
/// Construction fixes the number of bits and hash functions; see
/// [`BloomFilterBuilder`] for choosing them from a memory budget or a target
/// false positive rate, as Monkey's per-level allocation does.
///
/// A filter built with zero bits is a valid degenerate filter that reports
/// *maybe* for every key (false positive rate 1) — this is how Monkey models
/// "unfiltered" deep levels, where the optimal FPR converges to 1 and the
/// filter ceases to exist (paper §4.1).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitVec,
    hashes: u32,
    entries: u64,
    scheme: ProbeScheme,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_entries` keys at `bits_per_entry`
    /// bits each, with the optimal hash count for that budget.
    ///
    /// `bits_per_entry <= 0` yields the degenerate always-positive filter.
    pub fn with_bits_per_entry(expected_entries: u64, bits_per_entry: f64) -> Self {
        BloomFilterBuilder::new(expected_entries)
            .bits_per_entry(bits_per_entry)
            .build()
    }

    /// Creates a filter sized for `expected_entries` keys at the target
    /// false positive rate `fpr` (Equation 2 rearranged).
    pub fn with_fpr(expected_entries: u64, fpr: f64) -> Self {
        BloomFilterBuilder::new(expected_entries).fpr(fpr).build()
    }

    /// Bit position of probe `i` under this filter's probe scheme.
    #[inline]
    fn position(&self, pair: HashPair, i: u32, nbits: usize) -> usize {
        match self.scheme {
            ProbeScheme::FastRange => probe(pair, i, nbits),
            ProbeScheme::Legacy => probe_legacy(pair, i, nbits),
        }
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hashed(&mut self, pair: HashPair) {
        self.entries += 1;
        if self.bits.is_empty() {
            return;
        }
        for i in 0..self.hashes {
            let pos = self.position(pair, i, self.bits.len());
            self.bits.set(pos);
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        self.insert_hashed(hash_pair(key));
    }

    /// Tests a pre-hashed key. `false` means definitely absent.
    pub fn contains_hashed(&self, pair: HashPair) -> bool {
        if self.bits.is_empty() {
            return true; // degenerate filter: always a (possible) positive
        }
        (0..self.hashes).all(|i| self.bits.get(self.position(pair, i, self.bits.len())))
    }

    /// Tests a key. `false` means the key is definitely absent; `true` means
    /// it may be present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.contains_hashed(hash_pair(key))
    }

    /// The probe reduction this filter was built (or decoded) with.
    pub fn probe_scheme(&self) -> ProbeScheme {
        self.scheme
    }

    /// Number of bits in the filter's bit array.
    pub fn nbits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.entries
    }

    /// Main-memory footprint of the filter in bits (bit array, rounded up to
    /// whole words). This is what counts against `M_filters` in the model.
    pub fn memory_bits(&self) -> usize {
        self.bits.allocated_bits()
    }

    /// The false positive rate predicted by Equation 2 for this filter's
    /// actual bits and inserted entries.
    pub fn theoretical_fpr(&self) -> f64 {
        math::false_positive_rate(self.bits.len() as f64, self.entries as f64)
    }

    /// Serializes the filter. Fast-range filters write the current magic-
    /// prefixed format; legacy-scheme filters re-encode in the legacy layout
    /// (no magic) so a decode→encode round trip is byte-faithful.
    pub fn encode(&self, out: &mut Vec<u8>) {
        if self.scheme == ProbeScheme::FastRange {
            out.extend_from_slice(&MAGIC_STANDARD.to_le_bytes());
        }
        out.extend_from_slice(&self.hashes.to_le_bytes());
        out.extend_from_slice(&self.entries.to_le_bytes());
        self.bits.encode(out);
    }

    /// Deserializes a filter produced by [`encode`](Self::encode) — either
    /// format generation. Returns the filter and bytes consumed, or `None`
    /// on truncated input or a non-flat flavor magic.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let head = u32::from_le_bytes(buf[..4].try_into().unwrap());
        let (scheme, body, skip) = if head >= MAGIC_STANDARD {
            if head != MAGIC_STANDARD {
                return None; // some other flavor (e.g. blocked)
            }
            (ProbeScheme::FastRange, &buf[4..], 4)
        } else {
            // Legacy format v0: the first u32 is the hash count itself.
            (ProbeScheme::Legacy, buf, 0)
        };
        if body.len() < 12 {
            return None;
        }
        let hashes = u32::from_le_bytes(body[..4].try_into().unwrap());
        let entries = u64::from_le_bytes(body[4..12].try_into().unwrap());
        let (bits, used) = BitVec::decode(&body[12..])?;
        Some((
            Self {
                bits,
                hashes,
                entries,
                scheme,
            },
            skip + 12 + used,
        ))
    }
}

/// Builder fixing a filter's geometry from a memory budget or FPR target.
#[derive(Debug, Clone)]
pub struct BloomFilterBuilder {
    expected_entries: u64,
    total_bits: usize,
    hashes: Option<u32>,
}

impl BloomFilterBuilder {
    /// Starts a builder for a filter covering `expected_entries` keys.
    /// Without further configuration, builds with the LevelDB-default
    /// 10 bits per entry.
    pub fn new(expected_entries: u64) -> Self {
        Self {
            expected_entries,
            total_bits: (expected_entries as usize).saturating_mul(10),
            hashes: None,
        }
    }

    /// Allocates `bpe` bits per expected entry. Non-positive budgets yield
    /// the degenerate always-positive filter.
    pub fn bits_per_entry(mut self, bpe: f64) -> Self {
        let bits = (bpe * self.expected_entries as f64).round();
        self.total_bits = if bits.is_finite() && bits > 0.0 {
            bits as usize
        } else {
            0
        };
        self
    }

    /// Allocates an absolute number of bits.
    pub fn total_bits(mut self, bits: usize) -> Self {
        self.total_bits = bits;
        self
    }

    /// Sizes the filter for a target false positive rate via Equation 2.
    /// An `fpr >= 1` yields the degenerate filter.
    pub fn fpr(mut self, fpr: f64) -> Self {
        let bits = math::bits_for_fpr(self.expected_entries as f64, fpr);
        self.total_bits = bits.round() as usize;
        self
    }

    /// Overrides the hash count (otherwise the Eq.-2-optimal count is used).
    pub fn hash_count(mut self, k: u32) -> Self {
        self.hashes = Some(k.max(1));
        self
    }

    /// Builds the filter.
    pub fn build(self) -> BloomFilter {
        let hashes = if self.total_bits == 0 || self.expected_entries == 0 {
            1
        } else {
            self.hashes.unwrap_or_else(|| {
                math::optimal_hash_count(self.total_bits as f64 / self.expected_entries as f64)
            })
        };
        BloomFilter {
            bits: BitVec::new(self.total_bits),
            hashes,
            entries: 0,
            scheme: ProbeScheme::FastRange,
        }
    }
}

/// Which filter layout a run uses; the per-`Db` knob behind
/// `DbOptions::filter_variant` in the engine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FilterVariant {
    /// Flat bit array probed by double hashing — best accuracy per bit.
    #[default]
    Standard,
    /// Cache-line-blocked: all `k` probes inside one 512-bit block — at most
    /// one cache miss per negative probe, slightly worse FPR per bit.
    Blocked,
}

impl FilterVariant {
    /// Short lowercase name (for manifests and CSV output).
    pub fn name(self) -> &'static str {
        match self {
            Self::Standard => "standard",
            Self::Blocked => "blocked",
        }
    }

    /// Parses [`name`](Self::name)'s output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "standard" => Some(Self::Standard),
            "blocked" => Some(Self::Blocked),
            _ => None,
        }
    }
}

/// A run's filter: either layout behind one interface, so the engine can
/// switch variants per database without touching the lookup path.
#[derive(Debug, Clone)]
pub enum Filter {
    /// Flat filter (standard layout, or a decoded legacy-format filter).
    Standard(BloomFilter),
    /// Cache-line-blocked filter.
    Blocked(BlockedBloomFilter),
}

impl Filter {
    /// Creates a filter of the given `variant` sized for `expected_entries`
    /// keys at `bits_per_entry` bits each.
    pub fn with_bits_per_entry(
        variant: FilterVariant,
        expected_entries: u64,
        bits_per_entry: f64,
    ) -> Self {
        match variant {
            FilterVariant::Standard => Self::Standard(BloomFilter::with_bits_per_entry(
                expected_entries,
                bits_per_entry,
            )),
            FilterVariant::Blocked => Self::Blocked(BlockedBloomFilter::with_bits_per_entry(
                expected_entries,
                bits_per_entry,
            )),
        }
    }

    /// The layout of this filter.
    pub fn variant(&self) -> FilterVariant {
        match self {
            Self::Standard(_) => FilterVariant::Standard,
            Self::Blocked(_) => FilterVariant::Blocked,
        }
    }

    /// Inserts a pre-hashed key.
    pub fn insert_hashed(&mut self, pair: HashPair) {
        match self {
            Self::Standard(f) => f.insert_hashed(pair),
            Self::Blocked(f) => f.insert_hashed(pair),
        }
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        self.insert_hashed(hash_pair(key));
    }

    /// Tests a pre-hashed key. `false` means definitely absent.
    pub fn contains_hashed(&self, pair: HashPair) -> bool {
        match self {
            Self::Standard(f) => f.contains_hashed(pair),
            Self::Blocked(f) => f.contains_hashed(pair),
        }
    }

    /// Tests a key. `false` means the key is definitely absent.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.contains_hashed(hash_pair(key))
    }

    /// Number of bits in the filter.
    pub fn nbits(&self) -> usize {
        match self {
            Self::Standard(f) => f.nbits(),
            Self::Blocked(f) => f.nbits(),
        }
    }

    /// Number of hash probes per key.
    pub fn hash_count(&self) -> u32 {
        match self {
            Self::Standard(f) => f.hash_count(),
            Self::Blocked(f) => f.hash_count(),
        }
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        match self {
            Self::Standard(f) => f.inserted(),
            Self::Blocked(f) => f.inserted(),
        }
    }

    /// Main-memory footprint in bits (counts against `M_filters`).
    pub fn memory_bits(&self) -> usize {
        match self {
            Self::Standard(f) => f.memory_bits(),
            Self::Blocked(f) => f.memory_bits(),
        }
    }

    /// The false positive rate predicted by the *matching* model for each
    /// layout: Equation 2 for flat filters, the Poisson block mixture for
    /// blocked ones — so expected-I/O accounting stays honest either way.
    pub fn theoretical_fpr(&self) -> f64 {
        match self {
            Self::Standard(f) => f.theoretical_fpr(),
            Self::Blocked(f) => f.theoretical_fpr(),
        }
    }

    /// Serializes the filter in its layout's format.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Self::Standard(f) => f.encode(out),
            Self::Blocked(f) => f.encode(out),
        }
    }

    /// Deserializes any filter format generation: blocked magic, standard
    /// magic, or the legacy magic-less layout.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let head = u32::from_le_bytes(buf[..4].try_into().unwrap());
        if head == MAGIC_BLOCKED {
            let (f, used) = BlockedBloomFilter::decode(buf)?;
            Some((Self::Blocked(f), used))
        } else {
            let (f, used) = BloomFilter::decode(buf)?;
            Some((Self::Standard(f), used))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64, tag: u8) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut k = vec![tag];
                k.extend_from_slice(&i.to_be_bytes());
                k
            })
            .collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(5_000, 0);
        let mut f = BloomFilter::with_bits_per_entry(5_000, 8.0);
        for k in &present {
            f.insert(k);
        }
        for k in &present {
            assert!(f.contains(k), "false negative");
        }
    }

    #[test]
    fn empirical_fpr_tracks_equation_two() {
        let n = 20_000u64;
        for &bpe in &[4.0, 8.0, 12.0] {
            let mut f = BloomFilter::with_bits_per_entry(n, bpe);
            for k in keys(n, 0) {
                f.insert(&k);
            }
            let probes = 50_000u64;
            let fp = keys(probes, 1).iter().filter(|k| f.contains(k)).count();
            let measured = fp as f64 / probes as f64;
            let predicted = math::false_positive_rate(bpe * n as f64, n as f64);
            // Equation 2 is asymptotic; allow 2.5x slack either way plus an
            // absolute floor for tiny rates.
            assert!(
                measured < predicted * 2.5 + 1e-3,
                "bpe={bpe}: measured {measured} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn degenerate_zero_bit_filter_always_positive() {
        let mut f = BloomFilter::with_bits_per_entry(100, 0.0);
        assert_eq!(f.nbits(), 0);
        assert!(f.contains(b"anything"));
        f.insert(b"x");
        assert!(f.contains(b"y"));
        assert_eq!(f.theoretical_fpr(), 1.0);
    }

    #[test]
    fn fpr_constructor_matches_math() {
        let f = BloomFilter::with_fpr(1000, 0.01);
        let want = math::bits_for_fpr(1000.0, 0.01).round() as usize;
        assert_eq!(f.nbits(), want);
    }

    #[test]
    fn fpr_of_one_builds_degenerate_filter() {
        let f = BloomFilter::with_fpr(1000, 1.0);
        assert_eq!(f.nbits(), 0);
        assert!(f.contains(b"anything"));
    }

    #[test]
    fn builder_hash_count_override() {
        let f = BloomFilterBuilder::new(10)
            .bits_per_entry(10.0)
            .hash_count(3)
            .build();
        assert_eq!(f.hash_count(), 3);
    }

    #[test]
    fn builder_default_is_ten_bits_per_entry() {
        let f = BloomFilterBuilder::new(100).build();
        assert_eq!(f.nbits(), 1000);
        assert_eq!(f.hash_count(), 7);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_behaviour() {
        let mut f = BloomFilter::with_bits_per_entry(500, 10.0);
        for k in keys(500, 3) {
            f.insert(&k);
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = BloomFilter::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(g.nbits(), f.nbits());
        assert_eq!(g.hash_count(), f.hash_count());
        assert_eq!(g.inserted(), 500);
        for k in keys(500, 3) {
            assert!(g.contains(&k));
        }
    }

    #[test]
    fn decode_truncated_is_none() {
        let mut f = BloomFilter::with_bits_per_entry(10, 10.0);
        f.insert(b"k");
        let mut buf = Vec::new();
        f.encode(&mut buf);
        for cut in [0, 5, 11, buf.len() - 1] {
            assert!(BloomFilter::decode(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn memory_bits_counts_whole_words() {
        let f = BloomFilterBuilder::new(1).total_bits(65).build();
        assert_eq!(f.memory_bits(), 128);
    }

    #[test]
    fn new_filters_use_fast_range_and_magic_format() {
        let f = BloomFilter::with_bits_per_entry(10, 10.0);
        assert_eq!(f.probe_scheme(), ProbeScheme::FastRange);
        let mut buf = Vec::new();
        f.encode(&mut buf);
        assert_eq!(
            u32::from_le_bytes(buf[..4].try_into().unwrap()),
            MAGIC_STANDARD
        );
    }

    /// Builds the byte stream a pre-bump store would have persisted: no
    /// magic, bits set with the `%` probe reduction.
    fn legacy_stream(keys: &[Vec<u8>], nbits: usize, hashes: u32) -> Vec<u8> {
        use crate::hash::{hash_pair, probe_legacy};
        let mut bits = crate::bits::BitVec::new(nbits);
        for k in keys {
            let pair = hash_pair(k);
            for i in 0..hashes {
                bits.set(probe_legacy(pair, i, nbits));
            }
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(&hashes.to_le_bytes());
        buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
        bits.encode(&mut buf);
        buf
    }

    #[test]
    fn legacy_format_decodes_with_legacy_probe_scheme() {
        let present = keys(500, 7);
        let buf = legacy_stream(&present, 5000, 7);
        let (f, used) = BloomFilter::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(f.probe_scheme(), ProbeScheme::Legacy);
        assert_eq!(f.inserted(), 500);
        for k in &present {
            assert!(f.contains(k), "legacy bits must stay findable");
        }
    }

    #[test]
    fn legacy_filter_reencodes_byte_faithfully() {
        let buf = legacy_stream(&keys(100, 2), 1000, 5);
        let (f, _) = BloomFilter::decode(&buf).unwrap();
        let mut out = Vec::new();
        f.encode(&mut out);
        assert_eq!(out, buf, "decode→encode of a legacy filter is identity");
    }

    #[test]
    fn filter_enum_decodes_every_generation() {
        // Legacy flat.
        let legacy = legacy_stream(&keys(50, 1), 500, 5);
        let (f, used) = Filter::decode(&legacy).unwrap();
        assert_eq!(used, legacy.len());
        assert_eq!(f.variant(), FilterVariant::Standard);
        // Current flat.
        let mut flat = Vec::new();
        BloomFilter::with_bits_per_entry(50, 10.0).encode(&mut flat);
        assert!(matches!(
            Filter::decode(&flat).unwrap().0,
            Filter::Standard(_)
        ));
        // Blocked.
        let mut blocked = Vec::new();
        BlockedBloomFilter::with_bits_per_entry(50, 10.0).encode(&mut blocked);
        let (f, used) = Filter::decode(&blocked).unwrap();
        assert_eq!(used, blocked.len());
        assert_eq!(f.variant(), FilterVariant::Blocked);
    }

    #[test]
    fn filter_enum_roundtrip_both_variants() {
        for variant in [FilterVariant::Standard, FilterVariant::Blocked] {
            let mut f = Filter::with_bits_per_entry(variant, 300, 10.0);
            for k in keys(300, 9) {
                f.insert(&k);
            }
            let mut buf = Vec::new();
            f.encode(&mut buf);
            let (g, used) = Filter::decode(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(g.variant(), variant);
            assert_eq!(g.inserted(), 300);
            for k in keys(300, 9) {
                assert!(g.contains(&k), "{variant:?} false negative after roundtrip");
            }
            assert!(g.theoretical_fpr() > 0.0 && g.theoretical_fpr() < 0.1);
        }
    }

    #[test]
    fn filter_variant_names_roundtrip() {
        for v in [FilterVariant::Standard, FilterVariant::Blocked] {
            assert_eq!(FilterVariant::parse(v.name()), Some(v));
        }
        assert_eq!(FilterVariant::parse("bogus"), None);
        assert_eq!(FilterVariant::default(), FilterVariant::Standard);
    }

    #[test]
    fn hashed_and_keyed_paths_are_bit_identical() {
        use crate::hash::hash_pair;
        let mut a = BloomFilter::with_bits_per_entry(1000, 10.0);
        let mut b = BloomFilter::with_bits_per_entry(1000, 10.0);
        for k in keys(1000, 4) {
            a.insert(&k);
            b.insert_hashed(hash_pair(&k));
        }
        for k in keys(2000, 5) {
            assert_eq!(a.contains(&k), b.contains_hashed(hash_pair(&k)));
        }
    }
}
