//! The Bloom filter proper.

use crate::bits::BitVec;
use crate::hash::{hash_pair, probe};
use crate::math;

/// A Bloom filter over byte-string keys.
///
/// Construction fixes the number of bits and hash functions; see
/// [`BloomFilterBuilder`] for choosing them from a memory budget or a target
/// false positive rate, as Monkey's per-level allocation does.
///
/// A filter built with zero bits is a valid degenerate filter that reports
/// *maybe* for every key (false positive rate 1) — this is how Monkey models
/// "unfiltered" deep levels, where the optimal FPR converges to 1 and the
/// filter ceases to exist (paper §4.1).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitVec,
    hashes: u32,
    entries: u64,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_entries` keys at `bits_per_entry`
    /// bits each, with the optimal hash count for that budget.
    ///
    /// `bits_per_entry <= 0` yields the degenerate always-positive filter.
    pub fn with_bits_per_entry(expected_entries: u64, bits_per_entry: f64) -> Self {
        BloomFilterBuilder::new(expected_entries)
            .bits_per_entry(bits_per_entry)
            .build()
    }

    /// Creates a filter sized for `expected_entries` keys at the target
    /// false positive rate `fpr` (Equation 2 rearranged).
    pub fn with_fpr(expected_entries: u64, fpr: f64) -> Self {
        BloomFilterBuilder::new(expected_entries).fpr(fpr).build()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        self.entries += 1;
        if self.bits.is_empty() {
            return;
        }
        let pair = hash_pair(key);
        for i in 0..self.hashes {
            let pos = probe(pair, i, self.bits.len());
            self.bits.set(pos);
        }
    }

    /// Tests a key. `false` means the key is definitely absent; `true` means
    /// it may be present.
    pub fn contains(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true; // degenerate filter: always a (possible) positive
        }
        let pair = hash_pair(key);
        (0..self.hashes).all(|i| self.bits.get(probe(pair, i, self.bits.len())))
    }

    /// Number of bits in the filter's bit array.
    pub fn nbits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn hash_count(&self) -> u32 {
        self.hashes
    }

    /// Number of keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.entries
    }

    /// Main-memory footprint of the filter in bits (bit array, rounded up to
    /// whole words). This is what counts against `M_filters` in the model.
    pub fn memory_bits(&self) -> usize {
        self.bits.allocated_bits()
    }

    /// The false positive rate predicted by Equation 2 for this filter's
    /// actual bits and inserted entries.
    pub fn theoretical_fpr(&self) -> f64 {
        math::false_positive_rate(self.bits.len() as f64, self.entries as f64)
    }

    /// Serializes the filter: hash count, entry count, then the bit vector.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.hashes.to_le_bytes());
        out.extend_from_slice(&self.entries.to_le_bytes());
        self.bits.encode(out);
    }

    /// Deserializes a filter produced by [`encode`](Self::encode). Returns
    /// the filter and bytes consumed, or `None` on truncated input.
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        if buf.len() < 12 {
            return None;
        }
        let hashes = u32::from_le_bytes(buf[..4].try_into().unwrap());
        let entries = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let (bits, used) = BitVec::decode(&buf[12..])?;
        Some((Self { bits, hashes, entries }, 12 + used))
    }
}

/// Builder fixing a filter's geometry from a memory budget or FPR target.
#[derive(Debug, Clone)]
pub struct BloomFilterBuilder {
    expected_entries: u64,
    total_bits: usize,
    hashes: Option<u32>,
}

impl BloomFilterBuilder {
    /// Starts a builder for a filter covering `expected_entries` keys.
    /// Without further configuration, builds with the LevelDB-default
    /// 10 bits per entry.
    pub fn new(expected_entries: u64) -> Self {
        Self {
            expected_entries,
            total_bits: (expected_entries as usize).saturating_mul(10),
            hashes: None,
        }
    }

    /// Allocates `bpe` bits per expected entry. Non-positive budgets yield
    /// the degenerate always-positive filter.
    pub fn bits_per_entry(mut self, bpe: f64) -> Self {
        let bits = (bpe * self.expected_entries as f64).round();
        self.total_bits = if bits.is_finite() && bits > 0.0 { bits as usize } else { 0 };
        self
    }

    /// Allocates an absolute number of bits.
    pub fn total_bits(mut self, bits: usize) -> Self {
        self.total_bits = bits;
        self
    }

    /// Sizes the filter for a target false positive rate via Equation 2.
    /// An `fpr >= 1` yields the degenerate filter.
    pub fn fpr(mut self, fpr: f64) -> Self {
        let bits = math::bits_for_fpr(self.expected_entries as f64, fpr);
        self.total_bits = bits.round() as usize;
        self
    }

    /// Overrides the hash count (otherwise the Eq.-2-optimal count is used).
    pub fn hash_count(mut self, k: u32) -> Self {
        self.hashes = Some(k.max(1));
        self
    }

    /// Builds the filter.
    pub fn build(self) -> BloomFilter {
        let hashes = if self.total_bits == 0 || self.expected_entries == 0 {
            1
        } else {
            self.hashes.unwrap_or_else(|| {
                math::optimal_hash_count(self.total_bits as f64 / self.expected_entries as f64)
            })
        };
        BloomFilter {
            bits: BitVec::new(self.total_bits),
            hashes,
            entries: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64, tag: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| {
            let mut k = vec![tag];
            k.extend_from_slice(&i.to_be_bytes());
            k
        }).collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(5_000, 0);
        let mut f = BloomFilter::with_bits_per_entry(5_000, 8.0);
        for k in &present {
            f.insert(k);
        }
        for k in &present {
            assert!(f.contains(k), "false negative");
        }
    }

    #[test]
    fn empirical_fpr_tracks_equation_two() {
        let n = 20_000u64;
        for &bpe in &[4.0, 8.0, 12.0] {
            let mut f = BloomFilter::with_bits_per_entry(n, bpe);
            for k in keys(n, 0) {
                f.insert(&k);
            }
            let probes = 50_000u64;
            let fp = keys(probes, 1).iter().filter(|k| f.contains(k)).count();
            let measured = fp as f64 / probes as f64;
            let predicted = math::false_positive_rate(bpe * n as f64, n as f64);
            // Equation 2 is asymptotic; allow 2.5x slack either way plus an
            // absolute floor for tiny rates.
            assert!(
                measured < predicted * 2.5 + 1e-3,
                "bpe={bpe}: measured {measured} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn degenerate_zero_bit_filter_always_positive() {
        let mut f = BloomFilter::with_bits_per_entry(100, 0.0);
        assert_eq!(f.nbits(), 0);
        assert!(f.contains(b"anything"));
        f.insert(b"x");
        assert!(f.contains(b"y"));
        assert_eq!(f.theoretical_fpr(), 1.0);
    }

    #[test]
    fn fpr_constructor_matches_math() {
        let f = BloomFilter::with_fpr(1000, 0.01);
        let want = math::bits_for_fpr(1000.0, 0.01).round() as usize;
        assert_eq!(f.nbits(), want);
    }

    #[test]
    fn fpr_of_one_builds_degenerate_filter() {
        let f = BloomFilter::with_fpr(1000, 1.0);
        assert_eq!(f.nbits(), 0);
        assert!(f.contains(b"anything"));
    }

    #[test]
    fn builder_hash_count_override() {
        let f = BloomFilterBuilder::new(10).bits_per_entry(10.0).hash_count(3).build();
        assert_eq!(f.hash_count(), 3);
    }

    #[test]
    fn builder_default_is_ten_bits_per_entry() {
        let f = BloomFilterBuilder::new(100).build();
        assert_eq!(f.nbits(), 1000);
        assert_eq!(f.hash_count(), 7);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_behaviour() {
        let mut f = BloomFilter::with_bits_per_entry(500, 10.0);
        for k in keys(500, 3) {
            f.insert(&k);
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = BloomFilter::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(g.nbits(), f.nbits());
        assert_eq!(g.hash_count(), f.hash_count());
        assert_eq!(g.inserted(), 500);
        for k in keys(500, 3) {
            assert!(g.contains(&k));
        }
    }

    #[test]
    fn decode_truncated_is_none() {
        let mut f = BloomFilter::with_bits_per_entry(10, 10.0);
        f.insert(b"k");
        let mut buf = Vec::new();
        f.encode(&mut buf);
        for cut in [0, 5, 11, buf.len() - 1] {
            assert!(BloomFilter::decode(&buf[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn memory_bits_counts_whole_words() {
        let f = BloomFilterBuilder::new(1).total_bits(65).build();
        assert_eq!(f.memory_bits(), 128);
    }
}
