//! Hashing for the Bloom filter.
//!
//! We implement a 64-bit hash following the XXH64 construction (same primes,
//! rounds, and avalanche; byte-compatibility with canonical xxHash binaries is
//! not a goal — filters never leave this store and the scheme is fixed by the
//! on-disk format below). We derive the `k` probe positions of the filter with the
//! Kirsch–Mitzenmacher double-hashing scheme: two independent 64-bit hashes
//! `h1`, `h2` yield probe `i` as `h1 + i * h2`. This preserves the
//! false-positive behaviour of `k` independent hash functions while hashing
//! the key only twice, which matters because filter probes sit on the point
//! lookup hot path of the store.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D4F4E5425;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(data: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(data[off..off + 8].try_into().unwrap())
}

#[inline]
fn read_u32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().unwrap())
}

/// Computes the XXH64 hash of `data` with the given `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut off = 0;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while off + 32 <= len {
            v1 = round(v1, read_u64(data, off));
            v2 = round(v2, read_u64(data, off + 8));
            v3 = round(v3, read_u64(data, off + 16));
            v4 = round(v4, read_u64(data, off + 24));
            off += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while off + 8 <= len {
        h ^= round(0, read_u64(data, off));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        off += 8;
    }
    if off + 4 <= len {
        h ^= (read_u32(data, off) as u64).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        off += 4;
    }
    while off < len {
        h ^= (data[off] as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        off += 1;
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// The pair of base hashes used for double hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPair {
    /// First base hash (probe origin).
    pub h1: u64,
    /// Second base hash (probe stride).
    pub h2: u64,
}

/// Seeds chosen arbitrarily but fixed: filters are persisted, so the hash
/// scheme is part of the on-disk format and must never change.
const SEED1: u64 = 0x5149_4F4D_4E4B_4559; // "QIOMNKEY"
const SEED2: u64 = 0x4461_7961_6E31_3746; // "Dayan17F"

/// Computes the two base hashes of a key.
#[inline]
pub fn hash_pair(key: &[u8]) -> HashPair {
    HashPair {
        h1: xxh64(key, SEED1),
        h2: xxh64(key, SEED2) | 1, // odd stride avoids degenerate cycles
    }
}

/// Maps a 64-bit hash onto `[0, n)` with Lemire's multiply-shift fast-range
/// reduction: `(h * n) >> 64`. One widening multiply instead of a 64-bit
/// division; the result is selected by the *high* bits of `h` rather than
/// `h mod n`, which is equally uniform for a well-mixed hash.
#[inline]
pub fn fast_range(h: u64, n: u64) -> u64 {
    (((h as u128) * (n as u128)) >> 64) as u64
}

/// Returns the bit position of probe `i` within a filter of `nbits` bits.
///
/// Uses the fast-range reduction; this is the scheme of the current filter
/// format. Filters decoded from the pre-bump format keep [`probe_legacy`] so
/// their persisted bits remain findable.
#[inline]
pub fn probe(pair: HashPair, i: u32, nbits: usize) -> usize {
    debug_assert!(nbits > 0);
    fast_range(
        pair.h1.wrapping_add((i as u64).wrapping_mul(pair.h2)),
        nbits as u64,
    ) as usize
}

/// The original probe reduction (64-bit `%`). Part of the legacy on-disk
/// filter format: a filter encoded without a format magic was built with
/// this scheme and must keep probing with it.
#[inline]
pub fn probe_legacy(pair: HashPair, i: u32, nbits: usize) -> usize {
    debug_assert!(nbits > 0);
    (pair.h1.wrapping_add((i as u64).wrapping_mul(pair.h2)) % nbits as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    // The hash is part of the persistent format: these pinned values detect
    // accidental changes to the scheme (vectors produced by this
    // implementation, asserted stable forever).
    #[test]
    fn xxh64_pinned_vectors() {
        assert_eq!(xxh64(b"", 0), 0x1D7DF4AA5C92B45B);
        assert_eq!(xxh64(b"", 7), xxh64(b"", 7));
        let long: Vec<u8> = (0..100u8).collect();
        assert_eq!(xxh64(&long, 0), xxh64(&long, 0));
        assert_ne!(xxh64(&long, 0), xxh64(&long[..99], 0));
    }

    #[test]
    fn xxh64_avalanche_quality() {
        // Flipping any single input bit should flip ~half the output bits.
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let h0 = xxh64(&base, 0);
        let mut total = 0u32;
        let mut cases = 0u32;
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.clone();
                m[byte] ^= 1 << bit;
                total += (xxh64(&m, 0) ^ h0).count_ones();
                cases += 1;
            }
        }
        let avg = total as f64 / cases as f64;
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }

    #[test]
    fn xxh64_low_bits_unbiased() {
        // Bucket 64k sequential keys into 16 buckets by low bits; each bucket
        // should get roughly 1/16 of the keys.
        let mut buckets = [0u32; 16];
        for i in 0..65_536u32 {
            buckets[(xxh64(&i.to_le_bytes(), 0) & 15) as usize] += 1;
        }
        for (b, &count) in buckets.iter().enumerate() {
            assert!(
                (3_600..4_600).contains(&count),
                "bucket {b} has {count} of 65536"
            );
        }
    }

    #[test]
    fn xxh64_seed_changes_hash() {
        assert_ne!(xxh64(b"monkey", 0), xxh64(b"monkey", 1));
    }

    #[test]
    fn xxh64_covers_all_tail_paths() {
        // Lengths exercising the 32-byte block loop, the 8-byte, 4-byte and
        // 1-byte tails in every combination.
        let data: Vec<u8> = (0u8..=255).collect();
        let mut seen = std::collections::HashSet::new();
        for len in [
            0, 1, 3, 4, 5, 7, 8, 9, 12, 15, 16, 31, 32, 33, 40, 44, 45, 63, 64, 100, 256,
        ] {
            assert!(
                seen.insert(xxh64(&data[..len], 7)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn hash_pair_stride_is_odd() {
        for key in [b"a".as_slice(), b"bb", b"ccc", b""] {
            assert_eq!(hash_pair(key).h2 & 1, 1);
        }
    }

    #[test]
    fn probe_within_bounds_and_spread() {
        let pair = hash_pair(b"some key");
        let nbits = 1000;
        let mut positions = std::collections::HashSet::new();
        for i in 0..20 {
            let p = probe(pair, i, nbits);
            assert!(p < nbits);
            positions.insert(p);
        }
        // Odd stride over a non-power-of-two modulus: expect most probes distinct.
        assert!(positions.len() >= 15);
    }

    #[test]
    fn probe_deterministic() {
        let a = hash_pair(b"k1");
        let b = hash_pair(b"k1");
        for i in 0..8 {
            assert_eq!(probe(a, i, 4096), probe(b, i, 4096));
        }
    }

    #[test]
    fn fast_range_stays_in_bounds_and_covers() {
        // Bounds for adversarial inputs, coverage for a sweep of hashes.
        assert_eq!(fast_range(0, 17), 0);
        assert_eq!(fast_range(u64::MAX, 17), 16);
        let n = 37u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let r = fast_range(xxh64(&i.to_le_bytes(), 0), n);
            assert!(r < n);
            seen.insert(r);
        }
        assert_eq!(seen.len() as u64, n, "every bucket reachable");
    }

    #[test]
    fn fast_range_is_proportional() {
        // The reduction maps the hash space linearly: a hash near the top of
        // the u64 range lands near n, one near the bottom lands near 0.
        let n = 1_000u64;
        assert!(fast_range(u64::MAX / 2, n).abs_diff(n / 2) <= 1);
        assert!(fast_range(u64::MAX / 4, n).abs_diff(n / 4) <= 1);
    }

    #[test]
    fn probe_legacy_is_the_modulus_reduction() {
        let pair = hash_pair(b"pinned");
        for i in 0..8 {
            let expect = (pair.h1.wrapping_add((i as u64).wrapping_mul(pair.h2)) % 1000) as usize;
            assert_eq!(probe_legacy(pair, i, 1000), expect);
        }
    }

    #[test]
    fn probe_and_legacy_probe_disagree_in_general() {
        // The two reductions are different maps; if they ever coincided for
        // all inputs the legacy decode path would be untested dead code.
        let nbits = 1013; // not a power of two
        let differs = (0..100u32).any(|i| {
            let pair = hash_pair(&i.to_le_bytes());
            probe(pair, 0, nbits) != probe_legacy(pair, 0, nbits)
        });
        assert!(differs);
    }

    #[test]
    fn probe_legacy_within_bounds_and_spread() {
        let pair = hash_pair(b"some key");
        let nbits = 1000;
        let mut positions = std::collections::HashSet::new();
        for i in 0..20 {
            let p = probe_legacy(pair, i, nbits);
            assert!(p < nbits);
            positions.insert(p);
        }
        assert!(positions.len() >= 15);
    }
}
