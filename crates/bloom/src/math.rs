//! The Bloom filter accuracy model used throughout the Monkey paper.
//!
//! Equation 2 of the paper relates a filter's false positive rate to its
//! memory budget, assuming the optimal number of hash functions:
//!
//! ```text
//! FPR = e^(-(bits/entries) * ln(2)^2)        (Eq. 2)
//! bits = -entries * ln(FPR) / ln(2)^2        (Eq. 2 rearranged)
//! k    = (bits/entries) * ln(2)
//! ```
//!
//! These closed forms are what the `monkey-model` crate optimizes over; this
//! module is the single source of truth for them so the analytical model and
//! the concrete filters in [`crate::BloomFilter`] can never drift apart.

/// `ln(2)^2`, the constant in Equation 2.
pub const LN2_SQUARED: f64 = core::f64::consts::LN_2 * core::f64::consts::LN_2;

/// False positive rate of a filter with `bits` bits over `entries` entries
/// (Equation 2). Both arguments are real-valued because the model treats
/// them continuously.
///
/// Degenerate cases: zero entries never produce false positives (rate 0);
/// zero bits always do (rate 1).
#[inline]
pub fn false_positive_rate(bits: f64, entries: f64) -> f64 {
    if entries <= 0.0 {
        return 0.0;
    }
    if bits <= 0.0 {
        return 1.0;
    }
    (-(bits / entries) * LN2_SQUARED).exp()
}

/// Bits required for a target false positive rate over `entries` entries
/// (Equation 2 rearranged). An `fpr >= 1` needs no filter at all (0 bits).
///
/// # Panics
/// Panics if `fpr <= 0` (a zero false-positive rate needs infinite memory).
#[inline]
pub fn bits_for_fpr(entries: f64, fpr: f64) -> f64 {
    assert!(fpr > 0.0, "false positive rate must be positive, got {fpr}");
    if fpr >= 1.0 || entries <= 0.0 {
        return 0.0;
    }
    -entries * fpr.ln() / LN2_SQUARED
}

/// Optimal number of hash functions for a given bits-per-entry budget:
/// `k = (bits/entries) * ln 2`, rounded to the nearest integer and clamped
/// to at least 1.
#[inline]
pub fn optimal_hash_count(bits_per_entry: f64) -> u32 {
    let k = bits_per_entry * core::f64::consts::LN_2;
    (k.round() as i64).clamp(1, 64) as u32
}

/// Bits-per-entry for a target false positive rate.
#[inline]
pub fn bits_per_entry_for_fpr(fpr: f64) -> f64 {
    bits_for_fpr(1.0, fpr)
}

/// Bits in one block of the cache-line-blocked filter variant: one 64-byte
/// cache line.
pub const BLOCK_BITS: usize = 512;

/// False positive rate of a **blocked** Bloom filter with `bits` total bits
/// over `entries` entries, probing `hashes` bits per key inside a single
/// [`BLOCK_BITS`]-bit block.
///
/// Blocking trades accuracy for locality: keys are first mapped to a block,
/// so block loads fluctuate around the mean `λ = entries / blocks`, and
/// overloaded blocks dominate the false positive rate. Equation 2 does not
/// model this; the honest model is a Poisson mixture over the block load
/// (Putze, Sanders, Singler 2007):
///
/// ```text
/// FPR = Σ_j  Pois(j; λ) · (1 − (1 − 1/512)^(j·k))^k
/// ```
///
/// where `(1 − (1 − 1/512)^(j·k))` is the expected fill of a block holding
/// `j` keys. The Poisson weights are accumulated in log space so deep
/// Monkey levels (tiny bits-per-entry, huge `λ`) do not underflow.
///
/// Degenerate cases mirror [`false_positive_rate`]: zero entries → 0,
/// zero bits → 1.
pub fn blocked_false_positive_rate(bits: f64, entries: f64, hashes: u32) -> f64 {
    if entries <= 0.0 {
        return 0.0;
    }
    if bits <= 0.0 || hashes == 0 {
        return 1.0;
    }
    let blocks = (bits / BLOCK_BITS as f64).max(1.0);
    let lambda = entries / blocks;
    let k = hashes as f64;
    let ln_bit_clear = (1.0 - 1.0 / BLOCK_BITS as f64).ln();
    // P(j = 0) contributes nothing (an empty block never false-positives).
    let mut ln_pj = -lambda; // ln Pois(0; λ)
    let mut sum = 0.0;
    let jmax = (lambda + 12.0 * lambda.sqrt() + 64.0).ceil() as u64;
    for j in 1..=jmax {
        ln_pj += (lambda / j as f64).ln();
        let fill = 1.0 - (j as f64 * k * ln_bit_clear).exp();
        sum += (ln_pj + k * fill.ln()).exp();
    }
    sum.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_bits_per_entry_is_about_one_percent() {
        // The paper (§2): "All implementations use 10 bits per entry...
        // The corresponding false positive rate is ~1%."
        let fpr = false_positive_rate(10.0, 1.0);
        assert!((0.008..0.0101).contains(&fpr), "got {fpr}");
    }

    #[test]
    fn fpr_and_bits_are_inverses() {
        for &bpe in &[0.5, 1.0, 2.0, 5.0, 10.0, 16.0] {
            let entries = 12345.0;
            let fpr = false_positive_rate(bpe * entries, entries);
            let bits = bits_for_fpr(entries, fpr);
            assert!(
                (bits - bpe * entries).abs() / (bpe * entries) < 1e-12,
                "bpe={bpe}: {bits} vs {}",
                bpe * entries
            );
        }
    }

    #[test]
    fn zero_bits_means_fpr_one() {
        assert_eq!(false_positive_rate(0.0, 100.0), 1.0);
        assert_eq!(false_positive_rate(-5.0, 100.0), 1.0);
    }

    #[test]
    fn zero_entries_means_fpr_zero() {
        assert_eq!(false_positive_rate(100.0, 0.0), 0.0);
    }

    #[test]
    fn fpr_one_needs_no_bits() {
        assert_eq!(bits_for_fpr(1000.0, 1.0), 0.0);
        assert_eq!(bits_for_fpr(1000.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn fpr_zero_panics() {
        bits_for_fpr(1000.0, 0.0);
    }

    #[test]
    fn fpr_monotone_in_bits() {
        let mut prev = 1.0;
        for bits in 1..100 {
            let fpr = false_positive_rate(bits as f64 * 100.0, 100.0);
            assert!(fpr < prev);
            prev = fpr;
        }
    }

    #[test]
    fn optimal_hash_count_matches_theory() {
        // k = bpe * ln2; 10 bpe -> ~6.93 -> 7 hashes.
        assert_eq!(optimal_hash_count(10.0), 7);
        assert_eq!(optimal_hash_count(5.0), 3);
        assert_eq!(optimal_hash_count(1.0), 1);
        // Tiny budgets still use at least one hash.
        assert_eq!(optimal_hash_count(0.1), 1);
    }

    #[test]
    fn bits_per_entry_for_one_percent() {
        let bpe = bits_per_entry_for_fpr(0.01);
        assert!((9.5..9.7).contains(&bpe), "got {bpe}");
    }

    #[test]
    fn blocked_fpr_degenerate_cases_match_flat_model() {
        assert_eq!(blocked_false_positive_rate(1024.0, 0.0, 7), 0.0);
        assert_eq!(blocked_false_positive_rate(0.0, 100.0, 7), 1.0);
        assert_eq!(blocked_false_positive_rate(-1.0, 100.0, 7), 1.0);
        assert_eq!(blocked_false_positive_rate(1024.0, 100.0, 0), 1.0);
    }

    #[test]
    fn blocked_fpr_is_worse_than_flat_at_equal_budget() {
        // Blocking never improves accuracy: load variance across blocks adds
        // a penalty over Equation 2 at every realistic budget.
        for &bpe in &[2.0, 5.0, 10.0, 16.0] {
            let entries = 100_000.0;
            let bits = bpe * entries;
            let k = optimal_hash_count(bpe);
            let blocked = blocked_false_positive_rate(bits, entries, k);
            let flat = false_positive_rate(bits, entries);
            assert!(
                blocked > flat,
                "bpe={bpe}: blocked {blocked} vs flat {flat}"
            );
            // ...but stays within a small constant factor at common budgets.
            assert!(
                blocked < flat * 10.0 + 1e-6,
                "bpe={bpe}: blocked {blocked} vs flat {flat}"
            );
        }
    }

    #[test]
    fn blocked_fpr_monotone_in_bits() {
        let entries = 10_000.0;
        let mut prev = 1.0;
        for bpe in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let fpr = blocked_false_positive_rate(bpe * entries, entries, optimal_hash_count(bpe));
            assert!(fpr < prev, "bpe={bpe}: {fpr} !< {prev}");
            prev = fpr;
        }
    }

    #[test]
    fn blocked_fpr_survives_deep_level_budgets() {
        // Monkey's deep levels get tiny budgets; λ = entries/blocks is then
        // in the hundreds and the naive Poisson loop underflows. The
        // log-space accumulation must return ~1, not 0.
        let fpr = blocked_false_positive_rate(512.0, 100_000.0, 1);
        assert!(fpr > 0.99, "got {fpr}");
        let fpr = blocked_false_positive_rate(0.1875 * 1e6, 1e6, 1);
        assert!((0.5..=1.0).contains(&fpr), "got {fpr}");
    }
}
