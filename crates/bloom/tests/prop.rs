//! Property-based tests for the Bloom filter crate.

use monkey_bloom::{math, BitVec, BloomFilter, BloomFilterBuilder};
use proptest::prelude::*;

proptest! {
    /// A Bloom filter never produces a false negative, for any key set and
    /// any (positive) memory budget.
    #[test]
    fn no_false_negatives(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..200),
        bpe in 0.5f64..20.0,
    ) {
        let mut f = BloomFilter::with_bits_per_entry(keys.len() as u64, bpe);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Filter serialization round-trips exactly: same geometry, same answers.
    #[test]
    fn filter_encode_decode_roundtrip(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..100),
        bpe in 0.0f64..16.0,
    ) {
        let mut f = BloomFilter::with_bits_per_entry(keys.len().max(1) as u64, bpe);
        for k in &keys {
            f.insert(k);
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = BloomFilter::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(g.nbits(), f.nbits());
        prop_assert_eq!(g.hash_count(), f.hash_count());
        for k in &keys {
            prop_assert!(g.contains(k));
        }
    }

    /// BitVec set/get agree with a model `Vec<bool>`.
    #[test]
    fn bitvec_matches_model(len in 1usize..512, idxs in proptest::collection::vec(any::<usize>(), 0..100)) {
        let mut bv = BitVec::new(len);
        let mut model = vec![false; len];
        for &i in &idxs {
            let i = i % len;
            let was = bv.set(i);
            prop_assert_eq!(was, model[i]);
            model[i] = true;
        }
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(bv.get(i), want);
        }
        prop_assert_eq!(bv.count_ones(), model.iter().filter(|&&b| b).count());
    }

    /// BitVec serialization round-trips for arbitrary lengths.
    #[test]
    fn bitvec_encode_decode(len in 0usize..300, idxs in proptest::collection::vec(any::<usize>(), 0..64)) {
        let mut bv = BitVec::new(len);
        for &i in &idxs {
            if len > 0 {
                bv.set(i % len);
            }
        }
        let mut buf = Vec::new();
        bv.encode(&mut buf);
        let (back, used) = BitVec::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, bv);
    }

    /// Equation 2 and its inverse stay consistent across the whole range the
    /// model uses.
    #[test]
    fn eq2_inverse_consistency(entries in 1.0f64..1e9, fpr in 1e-9f64..1.0) {
        let bits = math::bits_for_fpr(entries, fpr);
        let back = math::false_positive_rate(bits, entries);
        prop_assert!((back - fpr).abs() / fpr < 1e-9, "fpr {} -> bits {} -> {}", fpr, bits, back);
    }

    /// More memory never increases the theoretical FPR.
    #[test]
    fn fpr_monotone(entries in 1.0f64..1e6, b1 in 0.0f64..1e7, b2 in 0.0f64..1e7) {
        let (lo, hi) = if b1 < b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(math::false_positive_rate(hi, entries) <= math::false_positive_rate(lo, entries));
    }

    /// Builder geometry: requested total bits are honored exactly.
    #[test]
    fn builder_total_bits(n in 1u64..1000, bits in 0usize..10_000) {
        let f = BloomFilterBuilder::new(n).total_bits(bits).build();
        prop_assert_eq!(f.nbits(), bits);
    }
}
