//! Property-based tests for the Bloom filter crate.

use monkey_bloom::{hash_pair, math, BitVec, BlockedBloomFilter, BloomFilter, BloomFilterBuilder};
use proptest::prelude::*;

proptest! {
    /// A Bloom filter never produces a false negative, for any key set and
    /// any (positive) memory budget.
    #[test]
    fn no_false_negatives(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..200),
        bpe in 0.5f64..20.0,
    ) {
        let mut f = BloomFilter::with_bits_per_entry(keys.len() as u64, bpe);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Filter serialization round-trips exactly: same geometry, same answers.
    #[test]
    fn filter_encode_decode_roundtrip(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..100),
        bpe in 0.0f64..16.0,
    ) {
        let mut f = BloomFilter::with_bits_per_entry(keys.len().max(1) as u64, bpe);
        for k in &keys {
            f.insert(k);
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = BloomFilter::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(g.nbits(), f.nbits());
        prop_assert_eq!(g.hash_count(), f.hash_count());
        for k in &keys {
            prop_assert!(g.contains(k));
        }
    }

    /// BitVec set/get agree with a model `Vec<bool>`.
    #[test]
    fn bitvec_matches_model(len in 1usize..512, idxs in proptest::collection::vec(any::<usize>(), 0..100)) {
        let mut bv = BitVec::new(len);
        let mut model = vec![false; len];
        for &i in &idxs {
            let i = i % len;
            let was = bv.set(i);
            prop_assert_eq!(was, model[i]);
            model[i] = true;
        }
        for (i, &want) in model.iter().enumerate() {
            prop_assert_eq!(bv.get(i), want);
        }
        prop_assert_eq!(bv.count_ones(), model.iter().filter(|&&b| b).count());
    }

    /// BitVec serialization round-trips for arbitrary lengths.
    #[test]
    fn bitvec_encode_decode(len in 0usize..300, idxs in proptest::collection::vec(any::<usize>(), 0..64)) {
        let mut bv = BitVec::new(len);
        for &i in &idxs {
            if len > 0 {
                bv.set(i % len);
            }
        }
        let mut buf = Vec::new();
        bv.encode(&mut buf);
        let (back, used) = BitVec::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, bv);
    }

    /// Equation 2 and its inverse stay consistent across the whole range the
    /// model uses.
    #[test]
    fn eq2_inverse_consistency(entries in 1.0f64..1e9, fpr in 1e-9f64..1.0) {
        let bits = math::bits_for_fpr(entries, fpr);
        let back = math::false_positive_rate(bits, entries);
        prop_assert!((back - fpr).abs() / fpr < 1e-9, "fpr {} -> bits {} -> {}", fpr, bits, back);
    }

    /// More memory never increases the theoretical FPR.
    #[test]
    fn fpr_monotone(entries in 1.0f64..1e6, b1 in 0.0f64..1e7, b2 in 0.0f64..1e7) {
        let (lo, hi) = if b1 < b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(math::false_positive_rate(hi, entries) <= math::false_positive_rate(lo, entries));
    }

    /// Builder geometry: requested total bits are honored exactly.
    #[test]
    fn builder_total_bits(n in 1u64..1000, bits in 0usize..10_000) {
        let f = BloomFilterBuilder::new(n).total_bits(bits).build();
        prop_assert_eq!(f.nbits(), bits);
    }

    /// The hashed-probe fast path is bit-identical to the keyed path on the
    /// standard filter: inserting/querying via a precomputed `HashPair`
    /// answers exactly like inserting/querying the key itself.
    #[test]
    fn hashed_path_bit_identical(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..150),
        probes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 0..150),
        bpe in 0.5f64..16.0,
    ) {
        let n = keys.len() as u64;
        let mut by_key = BloomFilter::with_bits_per_entry(n, bpe);
        let mut by_hash = BloomFilter::with_bits_per_entry(n, bpe);
        for k in &keys {
            by_key.insert(k);
            by_hash.insert_hashed(hash_pair(k));
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        by_key.encode(&mut a);
        by_hash.encode(&mut b);
        prop_assert_eq!(a, b, "identical bit patterns");
        for q in keys.iter().chain(probes.iter()) {
            let pair = hash_pair(q);
            prop_assert_eq!(by_key.contains(q), by_key.contains_hashed(pair));
            prop_assert_eq!(by_key.contains(q), by_hash.contains(q));
        }
    }

    /// Blocked filters, like standard ones, never produce a false negative.
    #[test]
    fn blocked_no_false_negatives(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..200),
        bpe in 0.5f64..20.0,
    ) {
        let mut f = BlockedBloomFilter::with_bits_per_entry(keys.len() as u64, bpe);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
            prop_assert!(f.contains_hashed(hash_pair(k)));
        }
    }

    /// Blocked-filter serialization round-trips exactly.
    #[test]
    fn blocked_encode_decode_roundtrip(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..100),
        bpe in 0.0f64..16.0,
    ) {
        let mut f = BlockedBloomFilter::with_bits_per_entry(keys.len().max(1) as u64, bpe);
        for k in &keys {
            f.insert(k);
        }
        let mut buf = Vec::new();
        f.encode(&mut buf);
        let (g, used) = BlockedBloomFilter::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(g.nbits(), f.nbits());
        prop_assert_eq!(g.hash_count(), f.hash_count());
        for k in &keys {
            prop_assert!(g.contains(k));
        }
    }
}

/// Measured blocked-filter FPR stays within tolerance of the corrected
/// (Poisson block-occupancy) model across the bits-per-entry range the
/// experiments use. Deterministic, not proptest: the tolerance needs a
/// fixed, large sample.
#[test]
fn blocked_fpr_tracks_corrected_model() {
    const N: u64 = 20_000;
    for bpe in [2.0f64, 5.0, 10.0] {
        let mut f = BlockedBloomFilter::with_bits_per_entry(N, bpe);
        for i in 0..N {
            f.insert(format!("member{i:08}").as_bytes());
        }
        let trials = 200_000u64;
        let mut fp = 0u64;
        for i in 0..trials {
            if f.contains(format!("absent{i:08}").as_bytes()) {
                fp += 1;
            }
        }
        let measured = fp as f64 / trials as f64;
        let model = f.theoretical_fpr();
        assert!(
            measured < model * 2.0 + 1e-4 && measured > model / 2.0 - 1e-4,
            "bpe {bpe}: measured {measured:.5} vs model {model:.5}"
        );
    }
}
