//! A hand-rolled HTTP/1.1 scrape endpoint.
//!
//! The repo's first wire-protocol code: a deliberately tiny server —
//! `std::net` only, no framework — good enough for Prometheus scrapers,
//! `curl`, and `monkey-top --connect`, and nothing more. The protocol
//! subset: `GET` requests, one response per connection
//! (`Connection: close`), correct `Content-Length`/`Content-Type`,
//! status lines for 200/400/404/405/503. Request lines are bounded
//! ([`MAX_REQUEST_BYTES`]): anything oversized or unparseable gets a
//! `400` and a closed socket, never a panic or a hang (reads carry a
//! timeout).
//!
//! Threading: one acceptor thread feeds a small fixed pool of workers
//! over a channel. Shutdown (on drop) sets a flag, dials the listener
//! once to unblock `accept`, closes the channel, and joins every thread
//! — so by the time `drop` returns no handler is running. The only
//! exception is a thread joining itself (a handler whose request drop
//! tears the server down), which is detached instead.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on the bytes read per request (request line + headers).
/// A `GET /metrics HTTP/1.1` with ordinary headers is a few hundred
/// bytes; anything larger than this is answered `400` and dropped.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Worker threads handling accepted connections. Scrapes are cheap and
/// rare; two workers keep a slow client from blocking a second scraper
/// without wasting threads on an embedded endpoint.
const WORKERS: usize = 2;

/// Per-connection read/write timeout, so a stalled peer can never pin a
/// worker (or a joining `drop`) forever.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// One response from a route handler.
pub struct HttpResponse {
    /// HTTP status code (200, 404, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body, written verbatim with an exact `Content-Length`.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &str, body: String) -> Self {
        Self {
            status: 200,
            content_type: content_type.to_string(),
            body,
        }
    }

    /// A `503 Service Unavailable` with a plain-text explanation.
    pub fn unavailable(body: &str) -> Self {
        Self {
            status: 503,
            content_type: "text/plain".to_string(),
            body: body.to_string(),
        }
    }
}

/// Route handler: maps a request path (query string stripped) to a
/// response, or `None` for 404.
pub type HttpHandler = Arc<dyn Fn(&str) -> Option<HttpResponse> + Send + Sync>;

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, resp: &HttpResponse) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    // The peer may already be gone; nothing useful to do about it.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(resp.body.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

fn error_response(status: u16) -> HttpResponse {
    HttpResponse {
        status,
        content_type: "text/plain".to_string(),
        body: format!("{} {}\n", status, reason(status)),
    }
}

/// Read the request head (bounded, with a timeout) and answer it. Every
/// exit path closes the connection.
fn handle_connection(mut stream: TcpStream, handler: &HttpHandler) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the blank line ending the request head. GETs carry no
    // body, so nothing after it matters.
    let complete = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break false,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    break false;
                }
            }
            Err(_) => break false, // timeout or reset: drop it
        }
    };
    if !complete {
        write_response(&mut stream, &error_response(400));
        return;
    }
    let line_end = buf
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(buf.len());
    let Ok(line) = std::str::from_utf8(&buf[..line_end]) else {
        write_response(&mut stream, &error_response(400));
        return;
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            write_response(&mut stream, &error_response(400));
            return;
        }
    };
    if !version.starts_with("HTTP/1.") || !target.starts_with('/') {
        write_response(&mut stream, &error_response(400));
        return;
    }
    if method != "GET" {
        write_response(&mut stream, &error_response(405));
        return;
    }
    let path = target.split('?').next().unwrap_or(target);
    let resp = handler(path).unwrap_or_else(|| error_response(404));
    write_response(&mut stream, &resp);
}

/// The embedded scrape server. Listens from `bind` until dropped.
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port)
    /// and start serving `handler`. Fails fast — port in use, bad
    /// address — rather than retrying.
    pub fn bind(addr: &str, handler: HttpHandler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(WORKERS * 8);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(WORKERS);
        for i in 0..WORKERS {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("monkey-obsd-{i}"))
                    .spawn(move || loop {
                        // Lock only to receive; handling runs unlocked so
                        // the other worker can pick up the next scrape.
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => return, // acceptor gone: shut down
                        };
                        handle_connection(stream, &handler);
                    })?,
            );
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("monkey-obsd-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            return; // drops tx; workers drain and exit
                        }
                        if let Ok(stream) = stream {
                            // A full queue means WORKERS*8 scrapes are
                            // already waiting; shed the connection rather
                            // than block accept.
                            let _ = tx.try_send(stream);
                        }
                    }
                })?
        };

        Ok(Self {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock `accept` with one throwaway connection. A wildcard bind
        // is dialled back via loopback.
        let mut dial = self.addr;
        if dial.ip().is_unspecified() {
            dial.set_ip(std::net::Ipv4Addr::LOCALHOST.into());
        }
        let _ = TcpStream::connect_timeout(&dial, Duration::from_millis(250));
        let this = std::thread::current().id();
        for handle in self
            .acceptor
            .take()
            .into_iter()
            .chain(self.workers.drain(..))
        {
            // A handler can drop the last owner of the server (and thus
            // the server itself) from inside a worker; that one thread
            // detaches instead of joining itself.
            if handle.thread().id() != this {
                let _ = handle.join();
            }
        }
    }
}

/// A minimal blocking HTTP/1.1 GET, for tests, benches, and the
/// `--connect` bins: returns `(status, body)`. Counterpart to
/// [`ObsServer`] — speaks exactly the subset the server emits.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let mut head_and_body = text.splitn(2, "\r\n\r\n");
    let head = head_and_body.next().unwrap_or("");
    let body = head_and_body.next().unwrap_or("").to_string();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_server() -> ObsServer {
        let handler: HttpHandler = Arc::new(|path| match path {
            "/metrics" => Some(HttpResponse::ok(
                "text/plain; version=0.0.4",
                "monkey_up 1\n".to_string(),
            )),
            "/healthz" => Some(HttpResponse::ok("text/plain", "ok\n".to_string())),
            _ => None,
        });
        ObsServer::bind("127.0.0.1:0", handler).expect("bind")
    }

    #[test]
    fn serves_routes_with_exact_bodies() {
        let server = demo_server();
        let addr = server.local_addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "monkey_up 1\n");
        let (status, body) = http_get(&addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");
        let (status, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(status, 404);
        // Query strings are stripped before routing.
        let (status, _) = http_get(&addr, "/healthz?verbose=1").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn content_length_and_type_are_exact() {
        let server = demo_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(raw.contains("Content-Length: 12\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("monkey_up 1\n"));
    }

    #[test]
    fn malformed_and_oversized_requests_get_400_and_a_closed_socket() {
        let server = demo_server();
        let send_raw = |bytes: &[u8]| -> String {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            stream.write_all(bytes).unwrap();
            let mut raw = String::new();
            // read_to_string returning proves the server closed the socket.
            stream.read_to_string(&mut raw).unwrap();
            raw
        };
        assert!(send_raw(b"GARBAGE\r\n\r\n").starts_with("HTTP/1.1 400 "));
        assert!(send_raw(b"GET /too many parts HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 400 "));
        assert!(send_raw(b"GET nope HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 400 "));
        assert!(send_raw(b"GET / SMTP/1.0\r\n\r\n").starts_with("HTTP/1.1 400 "));
        let oversized = vec![b'a'; MAX_REQUEST_BYTES + 1024];
        assert!(send_raw(&oversized).starts_with("HTTP/1.1 400 "));
        assert!(send_raw(b"POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405 "));
        // The server is still healthy afterwards.
        let (status, _) = http_get(&server.local_addr().to_string(), "/healthz").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn concurrent_scrapes_all_answered() {
        let server = demo_server();
        let addr = server.local_addr().to_string();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let addr = &addr;
                scope.spawn(move || {
                    for _ in 0..16 {
                        let (status, body) = http_get(addr, "/metrics").unwrap();
                        assert_eq!(status, 200);
                        assert_eq!(body, "monkey_up 1\n");
                    }
                });
            }
        });
    }

    #[test]
    fn port_in_use_fails_fast_and_drop_releases_it() {
        let server = demo_server();
        let addr = server.local_addr().to_string();
        let handler: HttpHandler = Arc::new(|_| None);
        let err = match ObsServer::bind(&addr, handler) {
            Err(e) => e,
            Ok(_) => panic!("port is taken"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        drop(server);
        // The port comes back once the acceptor has been joined. A
        // lingering TIME_WAIT from the shutdown dial can hold it briefly,
        // so allow a few retries.
        let mut rebound = None;
        for _ in 0..40 {
            let handler: HttpHandler = Arc::new(|_| None);
            match ObsServer::bind(&addr, handler) {
                Ok(s) => {
                    rebound = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        rebound.expect("rebind after drop");
    }
}
