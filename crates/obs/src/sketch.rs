//! Key-skew sketching: a count-min sketch plus a space-saving top-k.
//!
//! The workload characterizer wants to know *which keys are hot* and *how
//! skewed* access is without storing per-key state. Two classic streaming
//! summaries cover that in a few KiB:
//!
//! * [`CountMinSketch`] — a `depth × width` grid of counters; each key
//!   increments one counter per row (chosen by `depth` pairwise-independent
//!   hashes) and its estimate is the minimum over rows. Estimates never
//!   undercount, and overcount by at most `ε·N` (N = stream length) with
//!   probability `1 − δ` for `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
//! * [`SpaceSaving`] — the Metwally et al. top-k summary: `k` monitored
//!   (key, count, overestimate) slots; an unmonitored key evicts the
//!   current minimum and inherits its count as its overestimate bound.
//!   Any key with true frequency above `N/k` is guaranteed to be present.
//!
//! Counter updates in the sketch are relaxed atomics, so concurrent
//! observers never lock; the top-k mutates a small table under a `Mutex`
//! and is fed only 1-in-[`KEY_SAMPLE_PERIOD`] ops by the characterizer, so
//! the lock never sees hot-path traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a, the zero-dependency workhorse hash. Not cryptographic; fine
/// for sketch indexing where an adversarial key stream is out of scope.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates the two halves of the FNV hash so
/// the Kirsch–Mitzenmacher row hashes `h1 + i·h2` behave as independent.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A count-min sketch over byte-string keys with atomic counters.
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    observed: AtomicU64,
    rows: Vec<AtomicU64>,
}

impl CountMinSketch {
    /// Build with explicit dimensions. `width` is rounded up to a power of
    /// two (so row indexing is a mask); both dimensions have a floor of 1.
    pub fn new(width: usize, depth: usize) -> Self {
        let width = width.max(1).next_power_of_two();
        let depth = depth.max(1);
        Self {
            width,
            depth,
            observed: AtomicU64::new(0),
            rows: (0..width * depth).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Build from error targets: overestimate ≤ `epsilon·N` with
    /// probability `1 − delta` (ε, δ clamped into sane ranges).
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        let epsilon = epsilon.clamp(1e-6, 1.0);
        let delta = delta.clamp(1e-9, 0.5);
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::new(width, depth)
    }

    /// Counter grid width (per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The ε for which this sketch's overestimate bound is `ε·N`.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// Bytes of counter memory held by the sketch.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<AtomicU64>()
    }

    #[inline]
    fn row_index(&self, h1: u64, h2: u64, row: usize) -> usize {
        let h = h1.wrapping_add((row as u64).wrapping_mul(h2));
        row * self.width + (h as usize & (self.width - 1))
    }

    /// Count one occurrence of `key`. Lock-free: `depth` relaxed
    /// `fetch_add`s plus one for the stream length. Returns the updated
    /// estimate for `key` (the row minimum after this increment) so a
    /// caller can gate heavier work on it without re-hashing.
    #[inline]
    pub fn observe(&self, key: &[u8]) -> u64 {
        let h1 = fnv1a(key);
        let h2 = mix(h1) | 1; // odd, so strides cover the (pow2) table
        let mut est = u64::MAX;
        for row in 0..self.depth {
            let prev = self.rows[self.row_index(h1, h2, row)].fetch_add(1, Ordering::Relaxed);
            est = est.min(prev + 1);
        }
        self.observed.fetch_add(1, Ordering::Relaxed);
        est
    }

    /// Estimated occurrences of `key`: never below the true count; above
    /// it by at most `ε·N` with probability `1 − δ`.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        let h1 = fnv1a(key);
        let h2 = mix(h1) | 1;
        (0..self.depth)
            .map(|row| self.rows[self.row_index(h1, h2, row)].load(Ordering::Relaxed))
            .min()
            .unwrap_or(0)
    }

    /// Total observations folded into the sketch (the `N` in `ε·N`).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Zero every counter and the stream length.
    pub fn reset(&self) {
        for c in &self.rows {
            c.store(0, Ordering::Relaxed);
        }
        self.observed.store(0, Ordering::Relaxed);
    }
}

/// One monitored heavy-hitter: estimated count and the worst-case
/// overestimate inherited from the slot's previous occupant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotKey {
    /// The key bytes.
    pub key: Vec<u8>,
    /// Estimated occurrence count (may overcount by at most `error`).
    pub count: u64,
    /// Upper bound on the overcount: `count − error` is a guaranteed
    /// lower bound on the key's true frequency.
    pub error: u64,
}

/// Space-saving top-k summary (Metwally, Agrawal, El Abbadi 2005).
pub struct SpaceSaving {
    k: usize,
    /// Smallest monitored count while the table is full, 0 before — the
    /// lock-free admission threshold read by [`offer`](Self::offer).
    min_count: AtomicU64,
    inner: Mutex<Vec<HotKey>>,
}

impl SpaceSaving {
    /// Track up to `k` (min 1) heavy hitters.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            min_count: AtomicU64::new(0),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Number of monitored slots.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Count one occurrence of `key`, evicting the current minimum if the
    /// table is full and `key` is unmonitored.
    pub fn observe(&self, key: &[u8]) {
        let mut g = self.inner.lock().unwrap();
        if let Some(e) = g.iter_mut().find(|e| e.key == key) {
            e.count += 1;
        } else if g.len() < self.k {
            g.push(HotKey {
                key: key.to_vec(),
                count: 1,
                error: 0,
            });
        } else {
            // Evict the minimum; the newcomer inherits its count as error.
            let min = g.iter_mut().min_by_key(|e| e.count).expect("k >= 1 slots");
            min.error = min.count;
            min.count += 1;
            min.key.clear();
            min.key.extend_from_slice(key);
        }
        if g.len() == self.k {
            let min = g.iter().map(|e| e.count).min().expect("k >= 1 slots");
            self.min_count.store(min, Ordering::Relaxed);
        }
    }

    /// [`observe`](Self::observe), but only when an external frequency
    /// `estimate` (a count-min reading of the same stream) clears the
    /// smallest monitored count — one relaxed load, no lock, for the
    /// dominant case of a cold key hitting a full table. A genuinely hot
    /// key's estimate grows past any bar, so real heavy hitters still get
    /// admitted and keep counting; only keys the sketch agrees are cold
    /// skip the lock.
    #[inline]
    pub fn offer(&self, key: &[u8], estimate: u64) {
        if estimate <= self.min_count.load(Ordering::Relaxed) {
            return;
        }
        self.observe(key);
    }

    /// Monitored keys, most frequent first.
    pub fn top(&self) -> Vec<HotKey> {
        let mut v = self.inner.lock().unwrap().clone();
        v.sort_by_key(|e| std::cmp::Reverse(e.count));
        v
    }

    /// Forget everything.
    pub fn reset(&self) {
        self.inner.lock().unwrap().clear();
        self.min_count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cms_dimensions_and_memory() {
        let s = CountMinSketch::with_error(0.01, 0.01);
        assert!(s.width() >= (std::f64::consts::E / 0.01) as usize);
        assert!(s.width().is_power_of_two());
        assert!(s.depth() >= 4);
        assert_eq!(s.memory_bytes(), s.width() * s.depth() * 8);
        assert!(s.epsilon() <= 0.01);
    }

    #[test]
    fn cms_never_underestimates() {
        let s = CountMinSketch::new(64, 4);
        for i in 0..1000u32 {
            s.observe(&i.to_le_bytes());
            s.observe(b"hot");
        }
        assert!(s.estimate(b"hot") >= 1000);
        for i in 0..1000u32 {
            assert!(s.estimate(&i.to_le_bytes()) >= 1);
        }
        assert_eq!(s.observed(), 2000);
    }

    #[test]
    fn cms_reset() {
        let s = CountMinSketch::new(16, 2);
        s.observe(b"a");
        s.reset();
        assert_eq!(s.estimate(b"a"), 0);
        assert_eq!(s.observed(), 0);
    }

    #[test]
    fn space_saving_finds_heavy_hitter() {
        let t = SpaceSaving::new(4);
        for i in 0..200u32 {
            t.observe(b"hot");
            t.observe(&(i % 23).to_le_bytes()); // 23 distinct cold keys
        }
        let top = t.top();
        assert_eq!(top[0].key, b"hot".to_vec());
        // Space-saving guarantee: count - error never exceeds the true
        // frequency, and the count itself never falls below it.
        assert!(top[0].count >= 200);
        assert!(top[0].count - top[0].error <= 200);
    }

    #[test]
    fn space_saving_caps_at_k() {
        let t = SpaceSaving::new(2);
        for i in 0..10u32 {
            t.observe(&i.to_le_bytes());
        }
        assert_eq!(t.top().len(), 2);
        t.reset();
        assert!(t.top().is_empty());
    }
}
