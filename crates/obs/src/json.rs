//! Minimal hand-rolled JSON emission.
//!
//! The workspace is offline and deliberately serde-free, so report
//! snapshots are built with this tiny writer instead. It only *emits*
//! (no parsing) and covers exactly what the telemetry report needs:
//! objects, arrays, strings with escaping, integers, floats, bools.

/// Escape a string for inclusion in a JSON document (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number. Non-finite values (which JSON cannot
/// represent) degrade to 0.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Join pre-rendered JSON values into an array literal.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Incremental JSON object builder producing compact output.
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    /// Add a field whose value is already valid JSON.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&json_string(key));
        self.buf.push(':');
        self.buf.push_str(value);
        self
    }

    pub fn str(self, key: &str, value: &str) -> Self {
        let v = json_string(value);
        self.raw(key, &v)
    }

    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, &value.to_string())
    }

    pub fn usize(self, key: &str, value: usize) -> Self {
        self.raw(key, &value.to_string())
    }

    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = json_f64(value);
        self.raw(key, &v)
    }

    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn builds_objects_and_arrays() {
        let obj = JsonObject::new()
            .str("name", "x")
            .u64("n", 3)
            .f64("f", 0.25)
            .bool("ok", true)
            .raw("xs", &json_array(["1".into(), "2".into()]))
            .finish();
        assert_eq!(obj, r#"{"name":"x","n":3,"f":0.25,"ok":true,"xs":[1,2]}"#);
    }

    #[test]
    fn non_finite_floats_degrade() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
