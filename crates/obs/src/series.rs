//! Windowed time-series over cumulative telemetry counters.
//!
//! The engine's counters (op totals, bytes flushed, stall time, per-level
//! I/O) are lifetime-cumulative: useful for "how much", useless for "how
//! fast *right now*". [`WindowedSeries`] turns them into rates by keeping a
//! bounded ring of periodic [`TelemetrySnapshot`]s and differencing each
//! new snapshot against the previous one. Snapshots are produced either by
//! the engine's `monkey-obs-sampler` thread (see `DbOptions`) or by an
//! explicit `Db::observatory_tick()` — the latter makes every windowed
//! quantity deterministic in tests.
//!
//! Concurrency model: the op hot paths never touch this module — they bump
//! the same lock-free counters they always did. Only the sampler thread
//! (one writer) and report readers take the internal mutex, so "lock-free"
//! here means *free of locks on the operation path*, which is the property
//! the <2 % telemetry overhead budget actually needs.
//!
//! Delta math is guarded against two classic footguns:
//! * **Counter resets** (`Telemetry::reset()`, or a snapshot source that
//!   restarted): a current value below the previous one would underflow.
//!   We follow the Prometheus `rate()` convention — treat the current
//!   value as the delta, since the counter restarted from zero.
//! * **Zero-span windows** (two ticks in the same microsecond, or the very
//!   first snapshot): every rate degrades to `0.0`, never `NaN`/`inf`,
//!   never negative.

use std::sync::Mutex;

use crate::attribution::{LevelIoSnapshot, LEVEL_SLOTS};

/// Cumulative counter values captured at one instant, the unit the
/// windowed series differences. Plain data: the engine fills one from its
/// telemetry hub; tests fabricate them directly.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Microseconds since the telemetry origin at capture time.
    pub at_micros: u64,
    /// Lifetime point lookups (`get`).
    pub gets: u64,
    /// Lifetime updates (`put` + `delete`).
    pub puts: u64,
    /// Lifetime range lookups.
    pub ranges: u64,
    /// Lifetime bytes written by memtable flushes.
    pub bytes_flushed: u64,
    /// Lifetime entries rewritten by merge compactions (write-amp
    /// numerator; the denominator is the `puts` delta).
    pub entries_rewritten: u64,
    /// Lifetime count of writer stalls.
    pub stalls: u64,
    /// Lifetime microseconds writers spent stalled.
    pub stall_micros: u64,
    /// Per-level cumulative I/O (slot 0 = unattributed), one entry per
    /// attribution slot.
    pub level_io: Vec<LevelIoSnapshot>,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        Self {
            at_micros: 0,
            gets: 0,
            puts: 0,
            ranges: 0,
            bytes_flushed: 0,
            entries_rewritten: 0,
            stalls: 0,
            stall_micros: 0,
            level_io: vec![LevelIoSnapshot::default(); LEVEL_SLOTS],
        }
    }
}

/// Counter delta following the Prometheus `rate()` reset convention: if
/// the counter went backwards it must have restarted, so the current value
/// *is* the increase. Never underflows.
#[inline]
pub fn counter_delta(cur: u64, prev: u64) -> u64 {
    cur.checked_sub(prev).unwrap_or(cur)
}

/// Per-level I/O rates over one window, pages and bytes per second.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelIoRates {
    /// Page reads per second attributed to this level.
    pub reads_per_sec: f64,
    /// Page writes per second attributed to this level.
    pub writes_per_sec: f64,
    /// Bytes read per second attributed to this level.
    pub read_bytes_per_sec: f64,
    /// Bytes written per second attributed to this level.
    pub write_bytes_per_sec: f64,
}

impl LevelIoRates {
    /// True when every rate is zero (used to elide idle levels in output).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// Derived rates for one window — the difference of two adjacent
/// snapshots, normalised by the window span. All values are finite and
/// non-negative by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRates {
    /// Window start, microseconds since telemetry origin.
    pub start_micros: u64,
    /// Window end, microseconds since telemetry origin.
    pub end_micros: u64,
    /// Window span in seconds (0 collapses every rate to 0).
    pub span_secs: f64,
    /// Total user ops per second (gets + puts + ranges).
    pub ops_per_sec: f64,
    /// Point lookups per second.
    pub gets_per_sec: f64,
    /// Updates per second.
    pub puts_per_sec: f64,
    /// Range lookups per second.
    pub ranges_per_sec: f64,
    /// Flush throughput in bytes per second.
    pub bytes_flushed_per_sec: f64,
    /// Fraction of the window wall-clock that writers spent stalled.
    /// Can exceed 1.0 when several writers stall concurrently.
    pub stall_ratio: f64,
    /// Merge-rewritten entries per user update in this window (the
    /// windowed write amplification beyond the flush itself).
    pub write_amp: f64,
    /// Per-level I/O rates (slot 0 = unattributed).
    pub level_io: Vec<LevelIoRates>,
}

impl WindowRates {
    fn from_snapshots(prev: &TelemetrySnapshot, cur: &TelemetrySnapshot) -> Self {
        let span_micros = counter_delta(cur.at_micros, prev.at_micros);
        let span_secs = span_micros as f64 / 1e6;
        // One guarded division for everything rate-shaped: zero span (or a
        // clock that did not advance) yields 0, never inf/NaN.
        let per_sec = |delta: u64| {
            if span_secs > 0.0 {
                delta as f64 / span_secs
            } else {
                0.0
            }
        };
        let gets = counter_delta(cur.gets, prev.gets);
        let puts = counter_delta(cur.puts, prev.puts);
        let ranges = counter_delta(cur.ranges, prev.ranges);
        let rewritten = counter_delta(cur.entries_rewritten, prev.entries_rewritten);
        let stall_micros = counter_delta(cur.stall_micros, prev.stall_micros);
        let slots = cur.level_io.len().max(prev.level_io.len());
        let default_io = LevelIoSnapshot::default();
        let level_io = (0..slots)
            .map(|i| {
                let c = cur.level_io.get(i).unwrap_or(&default_io);
                let p = prev.level_io.get(i).unwrap_or(&default_io);
                LevelIoRates {
                    reads_per_sec: per_sec(counter_delta(c.reads, p.reads)),
                    writes_per_sec: per_sec(counter_delta(c.writes, p.writes)),
                    read_bytes_per_sec: per_sec(counter_delta(c.read_bytes, p.read_bytes)),
                    write_bytes_per_sec: per_sec(counter_delta(c.write_bytes, p.write_bytes)),
                }
            })
            .collect();
        WindowRates {
            start_micros: prev.at_micros,
            end_micros: cur.at_micros,
            span_secs,
            ops_per_sec: per_sec(gets + puts + ranges),
            gets_per_sec: per_sec(gets),
            puts_per_sec: per_sec(puts),
            ranges_per_sec: per_sec(ranges),
            bytes_flushed_per_sec: per_sec(counter_delta(cur.bytes_flushed, prev.bytes_flushed)),
            stall_ratio: if span_micros > 0 {
                stall_micros as f64 / span_micros as f64
            } else {
                0.0
            },
            write_amp: if puts > 0 {
                rewritten as f64 / puts as f64
            } else {
                0.0
            },
            level_io,
        }
    }
}

/// Exponentially weighted moving average with a fixed smoothing factor.
/// `None` until the first sample; thereafter `v ← α·x + (1−α)·v`.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is clamped into `(0, 1]`; 1 means "no smoothing".
    pub fn new(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            value: None,
        }
    }

    /// Fold one observation in and return the smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value, or `None` before any sample.
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

/// EWMA-smoothed headline rates, updated once per recorded window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SmoothedRates {
    /// Smoothed total ops per second.
    pub ops_per_sec: f64,
    /// Smoothed flush throughput, bytes per second.
    pub bytes_flushed_per_sec: f64,
    /// Smoothed stall ratio.
    pub stall_ratio: f64,
    /// Smoothed windowed write amplification.
    pub write_amp: f64,
}

/// Default EWMA smoothing factor: ~86 % of the weight sits in the last
/// ten windows.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.2;

struct SeriesInner {
    last_snapshot: Option<TelemetrySnapshot>,
    windows: Vec<WindowRates>,
    evicted: u64,
    ops: Ewma,
    flush_bytes: Ewma,
    stall: Ewma,
    write_amp: Ewma,
}

/// Bounded ring of per-window rates with EWMA smoothing.
///
/// `record` takes the next cumulative snapshot, appends the window it
/// closes, and evicts the oldest window beyond `retention`. The first
/// snapshot only establishes a baseline and produces no window.
pub struct WindowedSeries {
    retention: usize,
    inner: Mutex<SeriesInner>,
}

impl WindowedSeries {
    /// `retention` is the maximum number of windows kept (min 1);
    /// `alpha` the EWMA smoothing factor (see [`DEFAULT_EWMA_ALPHA`]).
    pub fn new(retention: usize, alpha: f64) -> Self {
        Self {
            retention: retention.max(1),
            inner: Mutex::new(SeriesInner {
                last_snapshot: None,
                windows: Vec::new(),
                evicted: 0,
                ops: Ewma::new(alpha),
                flush_bytes: Ewma::new(alpha),
                stall: Ewma::new(alpha),
                write_amp: Ewma::new(alpha),
            }),
        }
    }

    /// Maximum number of windows retained.
    pub fn retention(&self) -> usize {
        self.retention
    }

    /// Record the next cumulative snapshot. Returns the window it closed,
    /// or `None` for the baseline (first) snapshot.
    pub fn record(&self, snapshot: TelemetrySnapshot) -> Option<WindowRates> {
        let mut g = self.inner.lock().unwrap();
        let window = g
            .last_snapshot
            .as_ref()
            .map(|prev| WindowRates::from_snapshots(prev, &snapshot));
        g.last_snapshot = Some(snapshot);
        if let Some(w) = &window {
            g.ops.update(w.ops_per_sec);
            g.flush_bytes.update(w.bytes_flushed_per_sec);
            g.stall.update(w.stall_ratio);
            g.write_amp.update(w.write_amp);
            g.windows.push(w.clone());
            if g.windows.len() > self.retention {
                let excess = g.windows.len() - self.retention;
                g.windows.drain(..excess);
                g.evicted += excess as u64;
            }
        }
        window
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<WindowRates> {
        self.inner.lock().unwrap().windows.clone()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().windows.len()
    }

    /// True when no window has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Windows evicted from the ring since creation.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().unwrap().evicted
    }

    /// Total windows ever recorded (retained + evicted).
    pub fn recorded(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        g.windows.len() as u64 + g.evicted
    }

    /// EWMA-smoothed headline rates; `None` before the first window.
    pub fn smoothed(&self) -> Option<SmoothedRates> {
        let g = self.inner.lock().unwrap();
        Some(SmoothedRates {
            ops_per_sec: g.ops.get()?,
            bytes_flushed_per_sec: g.flush_bytes.get()?,
            stall_ratio: g.stall.get()?,
            write_amp: g.write_amp.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(at_micros: u64, gets: u64, puts: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            at_micros,
            gets,
            puts,
            ..TelemetrySnapshot::default()
        }
    }

    #[test]
    fn first_snapshot_is_baseline_only() {
        let s = WindowedSeries::new(8, DEFAULT_EWMA_ALPHA);
        assert!(s.record(snap(0, 0, 0)).is_none());
        assert!(s.is_empty());
        assert!(s.smoothed().is_none());
    }

    #[test]
    fn window_rates_are_deltas_over_span() {
        let s = WindowedSeries::new(8, DEFAULT_EWMA_ALPHA);
        s.record(snap(0, 0, 0));
        let w = s.record(snap(1_000_000, 500, 1500)).unwrap();
        assert_eq!(w.span_secs, 1.0);
        assert_eq!(w.gets_per_sec, 500.0);
        assert_eq!(w.puts_per_sec, 1500.0);
        assert_eq!(w.ops_per_sec, 2000.0);
        // Second window sees only the new increments.
        let w = s.record(snap(3_000_000, 700, 1500)).unwrap();
        assert_eq!(w.span_secs, 2.0);
        assert_eq!(w.gets_per_sec, 100.0);
        assert_eq!(w.puts_per_sec, 0.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stall_ratio_write_amp_and_flush_rate() {
        let s = WindowedSeries::new(8, DEFAULT_EWMA_ALPHA);
        s.record(TelemetrySnapshot::default());
        let cur = TelemetrySnapshot {
            at_micros: 2_000_000,
            puts: 1000,
            bytes_flushed: 4 << 20,
            entries_rewritten: 3000,
            stall_micros: 500_000,
            ..TelemetrySnapshot::default()
        };
        let w = s.record(cur).unwrap();
        assert_eq!(w.bytes_flushed_per_sec, (4 << 20) as f64 / 2.0);
        assert_eq!(w.stall_ratio, 0.25);
        assert_eq!(w.write_amp, 3.0);
    }

    #[test]
    fn counter_reset_never_goes_negative() {
        let s = WindowedSeries::new(8, DEFAULT_EWMA_ALPHA);
        s.record(snap(0, 1000, 1000));
        // Counters went *backwards* (a reset): Prometheus convention says
        // the current value is the delta.
        let w = s.record(snap(1_000_000, 40, 10)).unwrap();
        assert_eq!(w.gets_per_sec, 40.0);
        assert_eq!(w.puts_per_sec, 10.0);
        assert!(w.ops_per_sec >= 0.0);
    }

    #[test]
    fn zero_span_window_yields_zero_rates_not_nan() {
        let s = WindowedSeries::new(8, DEFAULT_EWMA_ALPHA);
        s.record(snap(5, 0, 0));
        let w = s.record(snap(5, 100, 100)).unwrap();
        assert_eq!(w.span_secs, 0.0);
        assert_eq!(w.ops_per_sec, 0.0);
        assert_eq!(w.stall_ratio, 0.0);
        assert!(w.level_io.iter().all(|l| l.is_zero()));
        // Everything must stay finite for the JSON renderer.
        assert!(w.ops_per_sec.is_finite() && w.write_amp.is_finite());
    }

    #[test]
    fn retention_evicts_oldest() {
        let s = WindowedSeries::new(3, DEFAULT_EWMA_ALPHA);
        for i in 0..=5u64 {
            s.record(snap(i * 1_000_000, i * 100, 0));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        assert_eq!(s.recorded(), 5);
        let ws = s.windows();
        // Oldest two windows (starting at 0s and 1s) were evicted.
        assert_eq!(ws[0].start_micros, 2_000_000);
        assert_eq!(ws[2].end_micros, 5_000_000);
    }

    #[test]
    fn ewma_smooths_towards_new_rate() {
        let s = WindowedSeries::new(8, 0.5);
        s.record(snap(0, 0, 0));
        s.record(snap(1_000_000, 1000, 0)); // 1000 ops/s
        s.record(snap(2_000_000, 1000, 0)); // 0 ops/s
        let sm = s.smoothed().unwrap();
        // 0.5·0 + 0.5·1000 = 500.
        assert_eq!(sm.ops_per_sec, 500.0);
        let w = s.windows();
        assert_eq!(w[0].ops_per_sec, 1000.0);
        assert_eq!(w[1].ops_per_sec, 0.0);
    }

    #[test]
    fn ewma_unit() {
        let mut e = Ewma::new(0.2);
        assert!(e.get().is_none());
        assert_eq!(e.update(10.0), 10.0);
        let v = e.update(0.0);
        assert!((v - 8.0).abs() < 1e-12);
        assert_eq!(e.get(), Some(v));
    }

    #[test]
    fn per_level_io_rates() {
        let s = WindowedSeries::new(4, DEFAULT_EWMA_ALPHA);
        s.record(TelemetrySnapshot::default());
        let mut cur = TelemetrySnapshot {
            at_micros: 1_000_000,
            ..TelemetrySnapshot::default()
        };
        cur.level_io[2] = LevelIoSnapshot {
            reads: 100,
            writes: 50,
            read_bytes: 100 * 4096,
            write_bytes: 50 * 4096,
            ..LevelIoSnapshot::default()
        };
        let w = s.record(cur).unwrap();
        assert!(w.level_io[1].is_zero());
        assert_eq!(w.level_io[2].reads_per_sec, 100.0);
        assert_eq!(w.level_io[2].write_bytes_per_sec, (50 * 4096) as f64);
    }
}
