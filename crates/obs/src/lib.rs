//! # monkey-obs — dependency-free telemetry for the Monkey engine
//!
//! Observability primitives shared by the storage and LSM layers:
//!
//! - [`ShardedCounter`]: lock-free monotonic counters striped across
//!   cache-line-padded shards.
//! - [`LatencyHistogram`]: concurrent log2-bucketed nanosecond histograms
//!   with `p50/p90/p99/p99.9/max` snapshots.
//! - [`EventRing`]: a fixed-capacity ring of structured engine events
//!   (flush, cascade, stall, WAL group commit, background error) with
//!   monotonic timestamps, drainable as a timeline.
//! - [`IoAttribution`]: run-id → level tagging so page reads/writes in the
//!   storage layer can be attributed to tree levels.
//! - [`IoLatency`]: sampled per-backend-op latency histograms (read,
//!   sequential read, write, sync) with per-level attribution and a
//!   page-cache-vs-device split inferred from bimodality ([`mode_split`]).
//! - [`ObsServer`]: a hand-rolled HTTP/1.1 scrape endpoint serving the
//!   report renderings to Prometheus scrapers and `monkey-top --connect`.
//! - [`Telemetry`]: the aggregate hub the engine holds as
//!   `Option<Arc<Telemetry>>` — `None` when `DbOptions::telemetry` is off,
//!   so the disabled cost is one branch per op.
//! - [`TelemetryReport`]: the assembled snapshot with Prometheus text,
//!   JSON, human, and Chrome trace-event renderings, plus the FPR
//!   model-drift bound ([`drift_flag`]).
//! - The workload observatory: [`WindowedSeries`] (ring of periodic
//!   [`TelemetrySnapshot`] deltas with EWMA smoothing),
//!   [`WorkloadCharacterizer`] (online `(r, v, q, w)` classification and
//!   key-skew sketching via [`CountMinSketch`]/[`SpaceSaving`]), and
//!   [`TuningAdvice`] (the closed-loop tuning report).
//! - The causal tracing layer: [`Tracer`] hands out sampled [`Span`]s
//!   with ids, parent links, and causal references, and the
//!   [`FlightRecorder`] persists spans and events into a bounded on-disk
//!   ring of checksum-framed segments for post-crash forensics.
//!
//! The crate is intentionally std-only: it sits below every other crate
//! in the workspace so instrumentation can be threaded through any layer
//! without dependency cycles.

mod advisor;
mod attribution;
mod counter;
mod events;
mod hist;
mod iolat;
mod json;
mod report;
mod series;
mod serve;
mod sketch;
mod telemetry;
mod trace;

pub use advisor::{
    DesignPoint, MeasuredWorkload, TuningAdvice, WorkloadCharacterizer, DEFAULT_HOT_KEYS,
    DEFAULT_MIN_ADVICE_SAMPLES, DEFAULT_MIN_ADVICE_WINDOWS, KEY_SAMPLE_PERIOD,
};
pub use attribution::{IoAttribution, LevelIoSnapshot, LEVEL_SLOTS, MAX_LEVELS};
pub use counter::ShardedCounter;
pub use events::{Event, EventKind, EventRing};
pub use hist::{HistogramSnapshot, LatencyHistogram, HIST_BUCKETS};
pub use iolat::{mode_split, IoLatency, IoOp, ModeSplit, IO_OPS, IO_SAMPLE_PERIOD};
pub use json::{json_array, json_f64, json_string, JsonObject};
pub use report::{
    drift_flag, DriftFlag, IoBackendReport, IoLatencyReport, IoLevelLatencyReport, LevelReport,
    OpLatencyReport, ShardBreakdown, TelemetryReport, DRIFT_EPSILON, DRIFT_MIN_PROBES, DRIFT_Z,
};
pub use series::{
    counter_delta, Ewma, LevelIoRates, SmoothedRates, TelemetrySnapshot, WindowRates,
    WindowedSeries, DEFAULT_EWMA_ALPHA,
};
pub use serve::{http_get, HttpHandler, HttpResponse, ObsServer, MAX_REQUEST_BYTES};
pub use sketch::{fnv1a, CountMinSketch, HotKey, SpaceSaving};
pub use telemetry::{LevelLookupSnapshot, OpKind, Telemetry, OP_KINDS, SAMPLE_PERIOD};
pub use trace::{
    decode_segment, ActiveSpan, DecodedFlight, FlightRecorder, RecorderRecord, Span, SpanKind,
    Tracer, DEFAULT_RECORDER_MAX_SEGMENTS, DEFAULT_RECORDER_SEGMENT_BYTES, DEFAULT_SPAN_CAPACITY,
    DEFAULT_TRACE_SAMPLE_PERIOD,
};
