//! # monkey-obs — dependency-free telemetry for the Monkey engine
//!
//! Observability primitives shared by the storage and LSM layers:
//!
//! - [`ShardedCounter`]: lock-free monotonic counters striped across
//!   cache-line-padded shards.
//! - [`LatencyHistogram`]: concurrent log2-bucketed nanosecond histograms
//!   with `p50/p90/p99/p99.9/max` snapshots.
//! - [`EventRing`]: a fixed-capacity ring of structured engine events
//!   (flush, cascade, stall, WAL group commit, background error) with
//!   monotonic timestamps, drainable as a timeline.
//! - [`IoAttribution`]: run-id → level tagging so page reads/writes in the
//!   storage layer can be attributed to tree levels.
//! - [`Telemetry`]: the aggregate hub the engine holds as
//!   `Option<Arc<Telemetry>>` — `None` when `DbOptions::telemetry` is off,
//!   so the disabled cost is one branch per op.
//! - [`TelemetryReport`]: the assembled snapshot with Prometheus text,
//!   JSON, and human renderings, plus the FPR model-drift bound
//!   ([`drift_flag`]).
//!
//! The crate is intentionally std-only: it sits below every other crate
//! in the workspace so instrumentation can be threaded through any layer
//! without dependency cycles.

mod attribution;
mod counter;
mod events;
mod hist;
mod json;
mod report;
mod telemetry;

pub use attribution::{IoAttribution, LevelIoSnapshot, LEVEL_SLOTS, MAX_LEVELS};
pub use counter::ShardedCounter;
pub use events::{Event, EventKind, EventRing};
pub use hist::{HistogramSnapshot, LatencyHistogram, HIST_BUCKETS};
pub use json::{json_array, json_f64, json_string, JsonObject};
pub use report::{
    drift_flag, DriftFlag, LevelReport, OpLatencyReport, TelemetryReport, DRIFT_EPSILON,
    DRIFT_MIN_PROBES, DRIFT_Z,
};
pub use telemetry::{LevelLookupSnapshot, OpKind, Telemetry, OP_KINDS, SAMPLE_PERIOD};
