//! Log2-bucketed latency histograms.
//!
//! Durations in nanoseconds are hashed into one of 64 power-of-two buckets:
//! bucket 0 holds the value 0, bucket `b >= 1` holds `[2^(b-1), 2^b)`.
//! Recording is one relaxed `fetch_add` on the bucket plus two more for the
//! running sum and max — no locks, no allocation, safe to call from any
//! thread. The price is resolution: a quantile read from bucket `b` is only
//! known to within a factor of two, so snapshots report the geometric
//! midpoint of the bucket (clamped to the observed max), which keeps
//! `p99/p99.9` honest to well under the bucket width for LSM-scale
//! latencies (hundreds of ns to hundreds of ms).

use std::sync::atomic::{AtomicU64, Ordering};

/// 64 buckets cover 0..2^63 ns — about 292 years — so overflow clamping
/// into the last bucket is theoretical.
pub const HIST_BUCKETS: usize = 64;

/// A concurrent log2 histogram of nanosecond durations.
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a nanosecond value: `0 -> 0`, otherwise
    /// `floor(log2(n)) + 1`.
    #[inline]
    pub fn bucket_of(nanos: u64) -> usize {
        if nanos == 0 {
            0
        } else {
            (64 - nanos.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one observation. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Copy the current bucket counts out. Not atomic as a whole (buckets
    /// are read one at a time), which is fine for monitoring.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile readers.
#[derive(Clone)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one: bucket-wise and counter sums,
    /// max of maxes. Used to aggregate per-shard histograms into one
    /// engine-wide latency distribution — log2 buckets merge exactly.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn empty() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Mean in nanoseconds, 0 if empty.
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate value at quantile `q` in `[0, 1]`, in nanoseconds.
    ///
    /// Walks the cumulative bucket counts and returns the geometric
    /// midpoint of the bucket containing the `q`-th observation, clamped
    /// to the recorded max so the top quantiles never overshoot reality.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = match b {
                    0 => 0u64,
                    // Geometric midpoint of [2^(b-1), 2^b): 2^(b-1) * sqrt(2).
                    _ => {
                        let lo = 1u64 << (b - 1);
                        ((lo as f64) * std::f64::consts::SQRT_2) as u64
                    }
                };
                return mid.min(self.max);
            }
        }
        self.max
    }

    pub fn p50_nanos(&self) -> u64 {
        self.quantile_nanos(0.50)
    }
    pub fn p90_nanos(&self) -> u64 {
        self.quantile_nanos(0.90)
    }
    pub fn p99_nanos(&self) -> u64 {
        self.quantile_nanos(0.99)
    }
    pub fn p999_nanos(&self) -> u64 {
        self.quantile_nanos(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_track_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast ops (~1us), 10 slow ops (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        // p50 lands in the ~1us bucket (within a factor of two).
        let p50 = s.p50_nanos();
        assert!((512..=2048).contains(&p50), "p50={p50}");
        // p99 lands in the ~1ms bucket.
        let p99 = s.p99_nanos();
        assert!((524_288..=1_048_576).contains(&p99), "p99={p99}");
        // Mean is exact: (90*1e3 + 10*1e6) / 100.
        assert!((s.mean_nanos() - 100_900.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_clamps_to_max() {
        let h = LatencyHistogram::new();
        h.record(1_500);
        let s = h.snapshot();
        assert_eq!(s.p999_nanos(), 1_448); // midpoint of [1024,2048)
        assert!(s.p999_nanos() <= s.max);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.p50_nanos(), 0);
        assert_eq!(s.mean_nanos(), 0.0);
    }
}
