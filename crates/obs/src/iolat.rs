//! Backend I/O latency: per-op, per-level log2 histograms with sampled
//! timing and a page-cache-vs-device mode split.
//!
//! `IoStats` counts pages; this module times them. The storage layer
//! attaches an [`IoLatency`] to its `Disk` (the same first-set-wins
//! `OnceLock` pattern as [`crate::IoAttribution`]) and brackets each
//! backend call — `read_page`, `read_page_sequential`, `write_page`,
//! `seal`/sync — with [`IoLatency::op_start`]/[`IoLatency::record`].
//! Timing is sampled 1-in-[`IO_SAMPLE_PERIOD`] for the page ops (the
//! same thread-local tick scheme as op latency, so the put path keeps
//! its <2% telemetry budget); syncs are rare and always timed.
//!
//! Buffered backends hide a second distribution inside every histogram:
//! a read served by the OS page cache completes in microseconds while a
//! read that misses to the device takes orders of magnitude longer. The
//! log2 buckets keep both modes visible, and [`mode_split`] infers the
//! boundary between them from the histogram's bimodality — reporting
//! the fast-mode occupancy (`monkey_io_cache_mode_ratio`) and the
//! threshold, which is the baseline ROADMAP item 3 (O_DIRECT/io_uring)
//! needs to prove it actually reaches the device.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::attribution::LEVEL_SLOTS;
use crate::hist::{HistogramSnapshot, LatencyHistogram};

/// Backend operations with dedicated latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A seek-then-read page fetch (point lookups, scan starts).
    ReadPage = 0,
    /// A read at the current file position (scan continuation).
    ReadPageSequential = 1,
    /// One page appended to a run under construction.
    WritePage = 2,
    /// A run seal: durability barrier (`fsync` on file backends).
    Sync = 3,
}

/// All backend op kinds, in histogram index order.
pub const IO_OPS: [IoOp; 4] = [
    IoOp::ReadPage,
    IoOp::ReadPageSequential,
    IoOp::WritePage,
    IoOp::Sync,
];

impl IoOp {
    /// Label used in report rows and the `op=` Prometheus label.
    pub fn name(self) -> &'static str {
        match self {
            IoOp::ReadPage => "read_page",
            IoOp::ReadPageSequential => "read_page_sequential",
            IoOp::WritePage => "write_page",
            IoOp::Sync => "sync",
        }
    }

    /// Page ops are duration-sampled; syncs are rare and always timed.
    #[inline]
    fn sampled(self) -> bool {
        !matches!(self, IoOp::Sync)
    }
}

/// One in this many page reads/writes has its duration recorded. Power
/// of two; the modulo compiles to a mask.
pub const IO_SAMPLE_PERIOD: u64 = 32;

thread_local! {
    static IO_SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Per-(op, level) backend latency histograms plus exact op counters.
///
/// Level slots mirror [`crate::IoAttribution`]: slot 0 collects I/O on
/// untagged runs, slots `1..` are tree levels. The whole table is ~70 KiB
/// of atomics — flat arrays, no locks, recordable from any thread.
pub struct IoLatency {
    ops: [AtomicU64; IO_OPS.len()],
    hists: [[LatencyHistogram; LEVEL_SLOTS]; IO_OPS.len()],
}

impl Default for IoLatency {
    fn default() -> Self {
        Self::new()
    }
}

impl IoLatency {
    pub fn new() -> Self {
        Self {
            ops: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::new())),
        }
    }

    /// Count one backend op and decide whether to time it. Returns the
    /// start instant only when this call was chosen for duration
    /// sampling; pass it to [`IoLatency::record`] with the op's level.
    #[inline]
    pub fn op_start(&self, op: IoOp) -> Option<Instant> {
        self.ops[op as usize].fetch_add(1, Ordering::Relaxed);
        if op.sampled() {
            let chosen = IO_SAMPLE_TICK.with(|t| {
                let v = t.get();
                t.set(v.wrapping_add(1));
                v % IO_SAMPLE_PERIOD == 0
            });
            if !chosen {
                return None;
            }
        }
        Some(Instant::now())
    }

    /// Record the sampled duration started by [`IoLatency::op_start`]
    /// against `level` (0 = unattributed; deep levels clamp).
    #[inline]
    pub fn record(&self, op: IoOp, level: usize, started: Instant) {
        let slot = level.min(LEVEL_SLOTS - 1);
        self.hists[op as usize][slot].record(started.elapsed().as_nanos() as u64);
    }

    /// Exact number of backend calls of `op` (every call, not just
    /// sampled ones).
    pub fn op_count(&self, op: IoOp) -> u64 {
        self.ops[op as usize].load(Ordering::Relaxed)
    }

    /// Snapshot `op`'s per-level histograms; index 0 is the unattributed
    /// slot.
    pub fn snapshot(&self, op: IoOp) -> Vec<HistogramSnapshot> {
        self.hists[op as usize]
            .iter()
            .map(|h| h.snapshot())
            .collect()
    }

    /// Zero every histogram and counter.
    pub fn reset(&self) {
        for c in &self.ops {
            c.store(0, Ordering::Relaxed);
        }
        for per_level in &self.hists {
            for h in per_level {
                h.reset();
            }
        }
    }
}

/// The inferred page-cache-vs-device split of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeSplit {
    /// Fraction of samples in the fast mode (at or below the threshold).
    /// 1.0 when the distribution is unimodal — a single mode is read as
    /// "everything completes at the same tier", which for buffered
    /// backends means the page cache.
    pub fast_fraction: f64,
    /// Upper edge (nanoseconds) of the valley bucket separating the two
    /// modes; 0 when no credible second mode was found.
    pub threshold_nanos: u64,
}

impl ModeSplit {
    fn unimodal() -> Self {
        Self {
            fast_fraction: 1.0,
            threshold_nanos: 0,
        }
    }
}

/// Infer a fast/slow mode split from a log2 histogram's bimodality.
///
/// The two modes of a buffered backend sit orders of magnitude apart, so
/// in log2 buckets they show up as two peaks with a valley between them.
/// The heuristic: take the global peak, then look for a second peak at
/// least two buckets away (≥4× latency difference) whose separating
/// valley dips below half of both peaks. The threshold is the upper edge
/// of the valley's emptiest bucket. No credible second peak — too close,
/// too small (<1% of samples), or no valley — reads as unimodal.
pub fn mode_split(h: &HistogramSnapshot) -> ModeSplit {
    if h.count == 0 {
        return ModeSplit::unimodal();
    }
    let buckets = &h.buckets;
    let p1 = (0..buckets.len()).max_by_key(|&i| buckets[i]).unwrap_or(0);
    let min_peak = (h.count / 100).max(1);
    let mut best: Option<(usize, u64)> = None; // (second peak index, height)
    for (j, &height) in buckets.iter().enumerate() {
        if j.abs_diff(p1) < 2 || height < min_peak {
            continue;
        }
        let (lo, hi) = (p1.min(j), p1.max(j));
        let valley = buckets[lo + 1..hi]
            .iter()
            .copied()
            .min()
            .unwrap_or(u64::MAX);
        if valley < height / 2 && valley < buckets[p1] / 2 {
            match best {
                Some((_, h2)) if h2 >= height => {}
                _ => best = Some((j, height)),
            }
        }
    }
    let Some((p2, _)) = best else {
        return ModeSplit::unimodal();
    };
    let (lo, hi) = (p1.min(p2), p1.max(p2));
    let valley = (lo + 1..hi)
        .min_by_key(|&i| buckets[i])
        .expect("peaks are >= 2 buckets apart");
    // Bucket `b >= 1` covers `[2^(b-1), 2^b)`; its upper edge is `2^b`.
    let threshold_nanos = 1u64 << valley.min(62);
    let below: u64 = buckets[..=valley].iter().sum();
    ModeSplit {
        fast_fraction: below as f64 / h.count as f64,
        threshold_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_ops_count_exactly_but_time_sparsely() {
        let lat = IoLatency::new();
        for _ in 0..(IO_SAMPLE_PERIOD * 4) {
            if let Some(s) = lat.op_start(IoOp::ReadPage) {
                lat.record(IoOp::ReadPage, 1, s);
            }
        }
        assert_eq!(lat.op_count(IoOp::ReadPage), IO_SAMPLE_PERIOD * 4);
        let sampled: u64 = lat.snapshot(IoOp::ReadPage).iter().map(|h| h.count).sum();
        assert!(sampled >= 4, "sampled={sampled}");
        assert!(sampled <= IO_SAMPLE_PERIOD * 4 / 8);
    }

    #[test]
    fn syncs_always_timed_and_levels_attributed() {
        let lat = IoLatency::new();
        for _ in 0..10 {
            let s = lat.op_start(IoOp::Sync).expect("syncs are always timed");
            lat.record(IoOp::Sync, 3, s);
        }
        let per_level = lat.snapshot(IoOp::Sync);
        assert_eq!(per_level[3].count, 10);
        assert_eq!(per_level[0].count, 0);
        assert_eq!(lat.op_count(IoOp::Sync), 10);
        lat.reset();
        assert_eq!(lat.op_count(IoOp::Sync), 0);
        assert_eq!(lat.snapshot(IoOp::Sync)[3].count, 0);
    }

    #[test]
    fn deep_levels_clamp_into_last_slot() {
        let lat = IoLatency::new();
        let s = lat.op_start(IoOp::Sync).unwrap();
        lat.record(IoOp::Sync, 500, s);
        assert_eq!(lat.snapshot(IoOp::Sync)[LEVEL_SLOTS - 1].count, 1);
    }

    #[test]
    fn bimodal_split_finds_the_valley() {
        let h = LatencyHistogram::new();
        // Fast mode around 2us (bucket 12), slow mode around 2ms (bucket 22).
        for _ in 0..700 {
            h.record(2_048);
        }
        for _ in 0..300 {
            h.record(2_097_152);
        }
        let split = mode_split(&h.snapshot());
        assert!(
            (split.fast_fraction - 0.7).abs() < 1e-9,
            "fast={}",
            split.fast_fraction
        );
        // The valley sits strictly between the two modes.
        assert!(split.threshold_nanos > 2_048);
        assert!(split.threshold_nanos <= 2_097_152);
    }

    #[test]
    fn unimodal_distributions_read_as_all_fast() {
        let h = LatencyHistogram::new();
        for i in 0..100u64 {
            h.record(1_000 + i); // one bucket, plus neighbours
        }
        let split = mode_split(&h.snapshot());
        assert_eq!(split.fast_fraction, 1.0);
        assert_eq!(split.threshold_nanos, 0);
        assert_eq!(
            mode_split(&HistogramSnapshot::empty()),
            ModeSplit::unimodal()
        );
    }

    #[test]
    fn tiny_outlier_clusters_do_not_register_as_a_mode() {
        let h = LatencyHistogram::new();
        for _ in 0..10_000 {
            h.record(2_048);
        }
        h.record(2_097_152); // a lone slow sample: noise, not a mode
        let split = mode_split(&h.snapshot());
        assert_eq!(split.fast_fraction, 1.0);
    }
}
