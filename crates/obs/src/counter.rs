//! Lock-free sharded counters.
//!
//! A single `AtomicU64` is fine for rare events, but a counter bumped on
//! every `put`/`get` from many threads turns into a cache-line ping-pong
//! hot spot. [`ShardedCounter`] spreads increments across a small,
//! cache-line-padded shard array indexed by a per-thread id, so writers on
//! different cores touch different lines. Reads sum the shards and are
//! therefore only eventually consistent — exactly the right trade for
//! monitoring counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards. Power of two so the thread id can be masked in.
const SHARDS: usize = 16;

/// One counter shard, padded to a cache line so neighbouring shards never
/// share one.
#[repr(align(64))]
struct Shard(AtomicU64);

/// Monotonic per-thread id used to pick a shard. Threads get ids in
/// creation order; with 16 shards, collisions only cost a little extra
/// contention, never correctness.
static NEXT_THREAD_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_ID: usize = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn shard_index() -> usize {
    THREAD_ID.with(|id| *id) & (SHARDS - 1)
}

/// A monotonic counter striped across cache-line-padded atomic shards.
pub struct ShardedCounter {
    shards: [Shard; SHARDS],
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounter {
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))),
        }
    }

    /// Add `n` to the calling thread's shard. One relaxed `fetch_add`, no
    /// allocation, no locks.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all shards. Eventually consistent: concurrent `add`s may or
    /// may not be included, but the value never goes backwards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset every shard to zero. Racy against concurrent writers (their
    /// in-flight adds may survive); intended for test setup, not as a
    /// synchronisation point.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_single_thread() {
        let c = ShardedCounter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counts_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
