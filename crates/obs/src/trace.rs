//! Causal span tracing and the on-disk flight recorder.
//!
//! A [`Tracer`] hands out sampled per-operation **spans**: ids with parent
//! links and a small fixed vector of causal references (`links`), so
//! background work can be attributed to the foreground operations that
//! caused it — a `put` records the WAL group-commit batch that carried it
//! and the memtable generation it landed in, a flush records the
//! generation it drained, and a cascade records the lineage of its merge
//! input runs plus how many partitions/threads the merge engine used.
//!
//! Hot-path cost model mirrors the telemetry hub: the engine holds an
//! `Option<Arc<Tracer>>` (`None` when `DbOptions::tracing` is off, one
//! branch per op), and high-frequency ops only start a span one call in
//! `sample_period` via a thread-local tick. Rare background spans (flush,
//! cascade, stall, WAL batch) are recorded whenever tracing is on.
//!
//! Finished spans land in a bounded in-memory ring (evictions are counted,
//! never blocking) and — when the store is directory-backed — in the
//! **flight recorder**: a size-capped ring of `obs-NNNNNN.log` segments of
//! checksum-framed records, written with plain buffered appends (no
//! fsync), so the last seconds before a crash survive process death and
//! can be decoded offline ([`FlightRecorder::decode_dir`]) and correlated
//! against WAL/manifest state.
//!
//! Record framing (all integers little-endian):
//!
//! ```text
//! [u64 fnv1a(payload)][u32 payload_len][payload]
//! payload = [u8 tag = 1 (span)][u8 kind][u32 shard][u64 id][u64 parent]
//!           [u64 start_micros][u64 duration_micros][u16 n][n × u64 links]
//! payload = [u8 tag = 2 (event)][u8 kind][u32 shard][u64 seq][u64 ts]
//!           [kind-specific u64 fields; background_error carries
//!            u32 len + utf-8 bytes]
//! ```
//!
//! Decoding stops at the first bad checksum or short frame in a segment
//! (exactly the WAL's torn-tail rule), so a record half-written at the
//! moment of the crash is dropped rather than misread.

use crate::events::{Event, EventKind};
use crate::sketch::fnv1a;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One in this many high-frequency ops (`put`/`get`) starts a span when
/// tracing is on. Power of two so the modulo is a mask.
pub const DEFAULT_TRACE_SAMPLE_PERIOD: u64 = 32;

/// Default capacity of the in-memory finished-span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Default per-segment byte cap for the flight recorder.
pub const DEFAULT_RECORDER_SEGMENT_BYTES: u64 = 64 << 10;

/// Default number of flight-recorder segments retained per shard.
pub const DEFAULT_RECORDER_MAX_SEGMENTS: usize = 8;

thread_local! {
    static TRACE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// What a span measured. The `links` layout is fixed per kind (see each
/// variant); extra trailing links are allowed so decoders must index, not
/// match on length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A `put`. `links = [wal_batch, memtable_generation]` — the WAL
    /// group-commit batch (0 when the store has no WAL) that made it
    /// durable and the memtable generation that absorbed it.
    Put,
    /// A `get`. `links = []`.
    Get,
    /// One WAL group-commit batch. `links = [wal_batch, records]`.
    WalCommit,
    /// A memtable flush. `links = [generation, entries,
    /// wal_segment_plus_one]` (0 = no WAL segment sealed under it).
    Flush,
    /// A merge cascade. `parent` is the flush span that triggered it;
    /// `links = [generation, merges, max_partitions, max_threads,
    /// input_run_ids...]`.
    Cascade,
    /// A writer stalled on backpressure. `parent` is the sampled put that
    /// hit the stall (0 when unsampled); `links = [queue_depth]`.
    Stall,
}

impl SpanKind {
    /// Stable snake_case name used by renderers and the decoder.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Put => "put",
            SpanKind::Get => "get",
            SpanKind::WalCommit => "wal_commit",
            SpanKind::Flush => "flush",
            SpanKind::Cascade => "cascade",
            SpanKind::Stall => "stall",
        }
    }

    fn tag(self) -> u8 {
        match self {
            SpanKind::Put => 1,
            SpanKind::Get => 2,
            SpanKind::WalCommit => 3,
            SpanKind::Flush => 4,
            SpanKind::Cascade => 5,
            SpanKind::Stall => 6,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            1 => SpanKind::Put,
            2 => SpanKind::Get,
            3 => SpanKind::WalCommit,
            4 => SpanKind::Flush,
            5 => SpanKind::Cascade,
            6 => SpanKind::Stall,
            _ => return None,
        })
    }
}

/// A finished span: an id, an optional parent (0 = root), the shard that
/// recorded it, timing relative to the tracer's origin, and the causal
/// links whose layout [`SpanKind`] documents.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Unique (per tracer) id, starting at 1. 0 never names a span.
    pub id: u64,
    /// Parent span id; 0 = no parent.
    pub parent: u64,
    /// Shard that recorded the span.
    pub shard: u32,
    /// What was measured.
    pub kind: SpanKind,
    /// Start, microseconds since the tracer's origin.
    pub start_micros: u64,
    /// Wall-clock duration in microseconds.
    pub duration_micros: u64,
    /// Kind-specific causal references (see [`SpanKind`]).
    pub links: Vec<u64>,
}

/// A started-but-unfinished span handed to the caller; pass it back to
/// [`Tracer::finish`] with the parent and links once the work completes.
#[derive(Debug)]
pub struct ActiveSpan {
    /// The id the finished span will carry (usable as a parent for child
    /// spans started before this one finishes).
    pub id: u64,
    kind: SpanKind,
    start: Instant,
    start_micros: u64,
}

struct SpanRing {
    buf: VecDeque<Span>,
    capacity: usize,
}

/// Per-shard span source: sampling, id allocation, the finished-span
/// ring, and the optional on-disk [`FlightRecorder`].
pub struct Tracer {
    shard: u32,
    sample_period: u64,
    origin: Instant,
    next_id: AtomicU64,
    started: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<SpanRing>,
    recorder: Option<FlightRecorder>,
}

impl Tracer {
    /// A tracer for `shard`, sampling one high-frequency op in
    /// `sample_period` (clamped to ≥ 1), spilling spans and events into
    /// `recorder` when one is given.
    pub fn new(shard: u32, sample_period: u64, recorder: Option<FlightRecorder>) -> Self {
        Self {
            shard,
            sample_period: sample_period.max(1),
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
            started: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(SpanRing {
                buf: VecDeque::with_capacity(DEFAULT_SPAN_CAPACITY),
                capacity: DEFAULT_SPAN_CAPACITY,
            }),
            recorder,
        }
    }

    /// The shard this tracer stamps into its spans.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Microseconds since this tracer was created. Monotonic.
    pub fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Advance the thread-local sampling tick; true when this call is the
    /// one in `sample_period` that should be traced.
    #[inline]
    pub fn sample(&self) -> bool {
        TRACE_TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v % self.sample_period == 0
        })
    }

    /// Start a span unconditionally (background work: flush, cascade,
    /// stall, WAL batch).
    pub fn start(&self, kind: SpanKind) -> ActiveSpan {
        self.started.fetch_add(1, Ordering::Relaxed);
        ActiveSpan {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            kind,
            start: Instant::now(),
            start_micros: self.now_micros(),
        }
    }

    /// Start a span only when the sampler picks this call (hot paths).
    #[inline]
    pub fn maybe_start(&self, kind: SpanKind) -> Option<ActiveSpan> {
        if self.sample() {
            Some(self.start(kind))
        } else {
            None
        }
    }

    /// Finish `active`: stamp duration, attach `parent` and `links`, spill
    /// to the flight recorder, and push into the ring (evicting — and
    /// counting — the oldest when full).
    pub fn finish(&self, active: ActiveSpan, parent: u64, links: Vec<u64>) {
        let span = Span {
            id: active.id,
            parent,
            shard: self.shard,
            kind: active.kind,
            start_micros: active.start_micros,
            duration_micros: active.start.elapsed().as_micros() as u64,
            links,
        };
        if let Some(r) = &self.recorder {
            r.append_span(&span);
        }
        let mut g = self.ring.lock().unwrap();
        if g.buf.len() == g.capacity {
            g.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        g.buf.push_back(span);
    }

    /// Spill a structured event into the flight recorder (no-op without
    /// one). The telemetry hub calls this from `event()` so the on-disk
    /// timeline interleaves events with spans.
    pub fn spill_event(&self, event: &Event) {
        if let Some(r) = &self.recorder {
            r.append_event(event);
        }
    }

    /// Spans started since creation (`monkey_trace_spans_total`).
    pub fn spans_started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Finished spans evicted from the ring before any drain saw them.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Bytes this process has appended to the flight recorder
    /// (`monkey_recorder_bytes`); 0 without a recorder.
    pub fn recorder_bytes(&self) -> u64 {
        self.recorder.as_ref().map_or(0, |r| r.bytes_written())
    }

    /// Recorder appends that failed (disk full, permissions); the engine
    /// never surfaces these as errors.
    pub fn recorder_errors(&self) -> u64 {
        self.recorder.as_ref().map_or(0, |r| r.write_errors())
    }

    /// The attached flight recorder, if the store is directory-backed.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Remove and return the buffered spans, oldest first.
    pub fn drain_spans(&self) -> Vec<Span> {
        self.ring.lock().unwrap().buf.drain(..).collect()
    }

    /// Copy the buffered spans without consuming them.
    pub fn peek_spans(&self) -> Vec<Span> {
        self.ring.lock().unwrap().buf.iter().cloned().collect()
    }
}

const REC_SPAN: u8 = 1;
const REC_EVENT: u8 = 2;

const EV_FLUSH_START: u8 = 1;
const EV_FLUSH_END: u8 = 2;
const EV_CASCADE_INSTALL: u8 = 3;
const EV_STALL_BEGIN: u8 = 4;
const EV_STALL_END: u8 = 5;
const EV_WAL_GROUP_COMMIT: u8 = 6;
const EV_BACKGROUND_ERROR: u8 = 7;
const EV_IO_BACKEND_FALLBACK: u8 = 8;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u16(&mut self) -> Option<u16> {
        let b = self.buf.get(self.pos..self.pos + 2)?;
        self.pos += 2;
        Some(u16::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let b = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(b)
    }
}

fn encode_span(span: &Span) -> Vec<u8> {
    let mut p = Vec::with_capacity(40 + span.links.len() * 8);
    p.push(REC_SPAN);
    p.push(span.kind.tag());
    put_u32(&mut p, span.shard);
    put_u64(&mut p, span.id);
    put_u64(&mut p, span.parent);
    put_u64(&mut p, span.start_micros);
    put_u64(&mut p, span.duration_micros);
    p.extend_from_slice(&(span.links.len() as u16).to_le_bytes());
    for &l in &span.links {
        put_u64(&mut p, l);
    }
    p
}

fn encode_event(event: &Event) -> Vec<u8> {
    let mut p = Vec::with_capacity(40);
    p.push(REC_EVENT);
    let tag = match &event.kind {
        EventKind::FlushStart { .. } => EV_FLUSH_START,
        EventKind::FlushEnd { .. } => EV_FLUSH_END,
        EventKind::CascadeInstall { .. } => EV_CASCADE_INSTALL,
        EventKind::StallBegin { .. } => EV_STALL_BEGIN,
        EventKind::StallEnd { .. } => EV_STALL_END,
        EventKind::WalGroupCommit { .. } => EV_WAL_GROUP_COMMIT,
        EventKind::BackgroundError { .. } => EV_BACKGROUND_ERROR,
        EventKind::IoBackendFallback { .. } => EV_IO_BACKEND_FALLBACK,
    };
    p.push(tag);
    put_u32(&mut p, event.shard);
    put_u64(&mut p, event.seq);
    put_u64(&mut p, event.ts_micros);
    match &event.kind {
        EventKind::FlushStart { entries, bytes } => {
            put_u64(&mut p, *entries);
            put_u64(&mut p, *bytes);
        }
        EventKind::FlushEnd { duration_micros } => put_u64(&mut p, *duration_micros),
        EventKind::CascadeInstall {
            merges,
            deepest_level,
        } => {
            put_u64(&mut p, *merges);
            put_u64(&mut p, *deepest_level);
        }
        EventKind::StallBegin { queue_depth } => put_u64(&mut p, *queue_depth),
        EventKind::StallEnd { waited_micros } => put_u64(&mut p, *waited_micros),
        EventKind::WalGroupCommit { records } => put_u64(&mut p, *records),
        EventKind::BackgroundError { message } => {
            put_u32(&mut p, message.len() as u32);
            p.extend_from_slice(message.as_bytes());
        }
        EventKind::IoBackendFallback { reason } => {
            put_u32(&mut p, reason.len() as u32);
            p.extend_from_slice(reason.as_bytes());
        }
    }
    p
}

fn decode_payload(payload: &[u8]) -> Option<RecorderRecord> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    match r.u8()? {
        REC_SPAN => {
            let kind = SpanKind::from_tag(r.u8()?)?;
            let shard = r.u32()?;
            let id = r.u64()?;
            let parent = r.u64()?;
            let start_micros = r.u64()?;
            let duration_micros = r.u64()?;
            let n = r.u16()? as usize;
            let mut links = Vec::with_capacity(n);
            for _ in 0..n {
                links.push(r.u64()?);
            }
            Some(RecorderRecord::Span(Span {
                id,
                parent,
                shard,
                kind,
                start_micros,
                duration_micros,
                links,
            }))
        }
        REC_EVENT => {
            let tag = r.u8()?;
            let shard = r.u32()?;
            let seq = r.u64()?;
            let ts_micros = r.u64()?;
            let kind = match tag {
                EV_FLUSH_START => EventKind::FlushStart {
                    entries: r.u64()?,
                    bytes: r.u64()?,
                },
                EV_FLUSH_END => EventKind::FlushEnd {
                    duration_micros: r.u64()?,
                },
                EV_CASCADE_INSTALL => EventKind::CascadeInstall {
                    merges: r.u64()?,
                    deepest_level: r.u64()?,
                },
                EV_STALL_BEGIN => EventKind::StallBegin {
                    queue_depth: r.u64()?,
                },
                EV_STALL_END => EventKind::StallEnd {
                    waited_micros: r.u64()?,
                },
                EV_WAL_GROUP_COMMIT => EventKind::WalGroupCommit { records: r.u64()? },
                EV_BACKGROUND_ERROR => {
                    let len = r.u32()? as usize;
                    EventKind::BackgroundError {
                        message: String::from_utf8_lossy(r.bytes(len)?).into_owned(),
                    }
                }
                EV_IO_BACKEND_FALLBACK => {
                    let len = r.u32()? as usize;
                    EventKind::IoBackendFallback {
                        reason: String::from_utf8_lossy(r.bytes(len)?).into_owned(),
                    }
                }
                _ => return None,
            };
            Some(RecorderRecord::Event(Event {
                seq,
                ts_micros,
                shard,
                kind,
            }))
        }
        _ => None,
    }
}

/// One decoded flight-recorder record: a finished span or a structured
/// engine event, both shard-tagged.
#[derive(Debug, Clone, PartialEq)]
pub enum RecorderRecord {
    /// A finished [`Span`].
    Span(Span),
    /// A structured [`Event`] spilled from the telemetry ring.
    Event(Event),
}

/// The result of decoding a directory of recorder segments.
#[derive(Debug, Clone, Default)]
pub struct DecodedFlight {
    /// Every cleanly-decoded record, in segment-then-offset order (which
    /// is append order for a single shard).
    pub records: Vec<RecorderRecord>,
    /// Number of `obs-NNNNNN.log` segments found.
    pub segments: usize,
    /// True when some segment ended in a torn or corrupt frame (expected
    /// for the newest segment after a crash); decoding of that segment
    /// stopped there.
    pub truncated: bool,
}

struct RecorderInner {
    file: File,
    seg_no: u64,
    seg_bytes: u64,
    segments: VecDeque<u64>,
}

/// Bounded on-disk ring of checksum-framed span/event records (see the
/// module docs for the framing). Appends are plain buffered writes — the
/// recorder trades the last instant of data for never stalling the
/// engine; a crashed process still leaves everything the page cache
/// accepted, which is what post-crash forensics need.
pub struct FlightRecorder {
    dir: PathBuf,
    segment_bytes: u64,
    max_segments: usize,
    bytes_written: AtomicU64,
    write_errors: AtomicU64,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// Opens (creating `dir` if needed) a recorder whose segments hold at
    /// most `segment_bytes` each, retaining at most `max_segments`
    /// segments — older ones are deleted as the ring advances. Segments
    /// left by a previous process are kept (and count against the cap) so
    /// reopening after a crash preserves the pre-crash timeline.
    pub fn open(
        dir: impl Into<PathBuf>,
        segment_bytes: u64,
        max_segments: usize,
    ) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut existing = segment_numbers(&dir)?;
        existing.sort_unstable();
        let seg_no = existing.last().map_or(0, |n| n + 1);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, seg_no))?;
        let mut segments: VecDeque<u64> = existing.into();
        segments.push_back(seg_no);
        let recorder = Self {
            dir,
            segment_bytes: segment_bytes.max(1024),
            max_segments: max_segments.max(1),
            bytes_written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            inner: Mutex::new(RecorderInner {
                file,
                seg_no,
                seg_bytes: 0,
                segments,
            }),
        };
        recorder.enforce_cap(&mut recorder.inner.lock().unwrap());
        Ok(recorder)
    }

    /// The directory holding this recorder's segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes appended by this process.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Appends that failed; the record is dropped, never retried.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Append a finished span.
    pub fn append_span(&self, span: &Span) {
        self.append(&encode_span(span));
    }

    /// Append a structured event.
    pub fn append_event(&self, event: &Event) {
        self.append(&encode_event(event));
    }

    fn append(&self, payload: &[u8]) {
        let mut frame = Vec::with_capacity(payload.len() + 12);
        put_u64(&mut frame, fnv1a(payload));
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(payload);
        let mut g = self.inner.lock().unwrap();
        if g.seg_bytes > 0
            && g.seg_bytes + frame.len() as u64 > self.segment_bytes
            && self.rotate(&mut g).is_err()
        {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match g.file.write_all(&frame) {
            Ok(()) => {
                g.seg_bytes += frame.len() as u64;
                self.bytes_written
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn rotate(&self, g: &mut RecorderInner) -> Result<(), ()> {
        let next = g.seg_no + 1;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next))
            .map_err(|_| ())?;
        g.file = file;
        g.seg_no = next;
        g.seg_bytes = 0;
        g.segments.push_back(next);
        self.enforce_cap(g);
        Ok(())
    }

    fn enforce_cap(&self, g: &mut RecorderInner) {
        while g.segments.len() > self.max_segments {
            if let Some(old) = g.segments.pop_front() {
                let _ = std::fs::remove_file(segment_path(&self.dir, old));
            }
        }
    }

    /// Decode every `obs-NNNNNN.log` segment under `dir` (non-recursive),
    /// oldest segment first. Missing directory decodes as empty.
    pub fn decode_dir(dir: impl AsRef<Path>) -> DecodedFlight {
        let dir = dir.as_ref();
        let mut numbers = segment_numbers(dir).unwrap_or_default();
        numbers.sort_unstable();
        let mut out = DecodedFlight {
            segments: numbers.len(),
            ..DecodedFlight::default()
        };
        for n in numbers {
            let Ok(bytes) = std::fs::read(segment_path(dir, n)) else {
                out.truncated = true;
                continue;
            };
            let (records, clean) = decode_segment(&bytes);
            out.records.extend(records);
            if !clean {
                out.truncated = true;
            }
        }
        out
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("obs-{n:06}.log"))
}

fn segment_numbers(dir: &Path) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("obs-")
            .and_then(|rest| rest.strip_suffix(".log"))
        {
            if let Ok(n) = num.parse::<u64>() {
                out.push(n);
            }
        }
    }
    Ok(out)
}

/// Decode one segment's bytes; returns the records plus whether the
/// segment decoded cleanly to its end (false = torn/corrupt tail).
pub fn decode_segment(bytes: &[u8]) -> (Vec<RecorderRecord>, bool) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 12) else {
            return (records, false);
        };
        let checksum = u64::from_le_bytes(header[..8].try_into().unwrap());
        let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
            return (records, false);
        };
        if fnv1a(payload) != checksum {
            return (records, false);
        }
        match decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => return (records, false),
        }
        pos += 12 + len;
    }
    (records, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("monkey-trace-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn span(id: u64, kind: SpanKind, links: Vec<u64>) -> Span {
        Span {
            id,
            parent: 0,
            shard: 3,
            kind,
            start_micros: 100 * id,
            duration_micros: 7,
            links,
        }
    }

    #[test]
    fn span_and_event_roundtrip_through_a_segment() {
        let d = tmp("roundtrip");
        let r = FlightRecorder::open(&d, 1 << 20, 4).unwrap();
        r.append_span(&span(1, SpanKind::Put, vec![42, 5]));
        r.append_event(&Event {
            seq: 9,
            ts_micros: 1234,
            shard: 3,
            kind: EventKind::WalGroupCommit { records: 6 },
        });
        r.append_span(&span(2, SpanKind::Cascade, vec![5, 2, 4, 1, 77, 78]));
        r.append_event(&Event {
            seq: 10,
            ts_micros: 1300,
            shard: 3,
            kind: EventKind::BackgroundError {
                message: "injected fault".into(),
            },
        });
        r.append_event(&Event {
            seq: 11,
            ts_micros: 1400,
            shard: 0,
            kind: EventKind::IoBackendFallback {
                reason: "tmpfs rejects O_DIRECT".into(),
            },
        });
        assert!(r.bytes_written() > 0);
        assert_eq!(r.write_errors(), 0);
        let decoded = FlightRecorder::decode_dir(&d);
        assert_eq!(decoded.segments, 1);
        assert!(!decoded.truncated);
        assert_eq!(decoded.records.len(), 5);
        assert_eq!(
            decoded.records[0],
            RecorderRecord::Span(span(1, SpanKind::Put, vec![42, 5]))
        );
        match &decoded.records[3] {
            RecorderRecord::Event(e) => {
                assert_eq!(e.shard, 3);
                assert_eq!(e.kind.name(), "background_error");
            }
            other => panic!("expected event, got {other:?}"),
        }
        match &decoded.records[4] {
            RecorderRecord::Event(e) => {
                assert_eq!(e.kind.name(), "io_backend_fallback");
                assert_eq!(
                    e.kind.fields(),
                    vec![("reason", "tmpfs rejects O_DIRECT".to_string())]
                );
            }
            other => panic!("expected event, got {other:?}"),
        }
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn torn_tail_stops_decoding_cleanly() {
        let d = tmp("torn");
        let r = FlightRecorder::open(&d, 1 << 20, 4).unwrap();
        r.append_span(&span(1, SpanKind::Flush, vec![1, 10, 0]));
        r.append_span(&span(2, SpanKind::Flush, vec![2, 10, 0]));
        drop(r);
        let seg = segment_path(&d, 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let decoded = FlightRecorder::decode_dir(&d);
        assert!(decoded.truncated);
        assert_eq!(decoded.records.len(), 1, "only the intact record");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn segment_ring_rotates_and_deletes_oldest() {
        let d = tmp("ring");
        let r = FlightRecorder::open(&d, 1024, 2).unwrap();
        // Each span frame is ~60 bytes; write enough to force several
        // rotations past the 2-segment cap.
        for i in 0..200 {
            r.append_span(&span(i, SpanKind::Put, vec![i, 1]));
        }
        let mut numbers = segment_numbers(&d).unwrap();
        numbers.sort_unstable();
        assert!(numbers.len() <= 2, "cap enforced: {numbers:?}");
        assert!(*numbers.last().unwrap() >= 2, "ring advanced");
        let decoded = FlightRecorder::decode_dir(&d);
        assert!(!decoded.truncated);
        // The retained tail is the most recent spans, contiguous.
        let ids: Vec<u64> = decoded
            .records
            .iter()
            .map(|rec| match rec {
                RecorderRecord::Span(s) => s.id,
                _ => unreachable!(),
            })
            .collect();
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(*ids.last().unwrap(), 199);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn reopen_preserves_previous_segments() {
        let d = tmp("reopen");
        {
            let r = FlightRecorder::open(&d, 1 << 20, 4).unwrap();
            r.append_span(&span(1, SpanKind::Put, vec![1, 1]));
        }
        let r = FlightRecorder::open(&d, 1 << 20, 4).unwrap();
        r.append_span(&span(2, SpanKind::Put, vec![2, 1]));
        let decoded = FlightRecorder::decode_dir(&d);
        assert_eq!(decoded.segments, 2, "old segment kept for forensics");
        assert_eq!(decoded.records.len(), 2);
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn sampling_period_one_traces_every_op() {
        let t = Tracer::new(0, 1, None);
        for _ in 0..10 {
            let s = t.maybe_start(SpanKind::Put).expect("period 1 samples all");
            t.finish(s, 0, vec![0, 1]);
        }
        assert_eq!(t.spans_started(), 10);
        assert_eq!(t.spans_dropped(), 0);
        let spans = t.drain_spans();
        assert_eq!(spans.len(), 10);
        // Ids are unique and monotonically increasing from 1.
        assert!(spans.windows(2).all(|w| w[1].id == w[0].id + 1));
        assert_eq!(spans[0].id, 1);
    }

    #[test]
    fn sampling_thins_by_the_period() {
        let t = Tracer::new(0, 8, None);
        let mut taken = 0;
        for _ in 0..64 {
            if let Some(s) = t.maybe_start(SpanKind::Get) {
                t.finish(s, 0, vec![]);
                taken += 1;
            }
        }
        assert_eq!(taken, 8, "exactly one in eight on a single thread");
    }

    #[test]
    fn ring_eviction_counts_dropped() {
        let t = Tracer::new(0, 1, None);
        for _ in 0..(DEFAULT_SPAN_CAPACITY + 10) {
            let s = t.start(SpanKind::Flush);
            t.finish(s, 0, vec![]);
        }
        assert_eq!(t.spans_dropped(), 10);
        assert_eq!(t.peek_spans().len(), DEFAULT_SPAN_CAPACITY);
    }
}
