//! Per-level I/O attribution.
//!
//! The storage layer only sees opaque run ids; the LSM layer knows which
//! tree level each run lives on. [`IoAttribution`] bridges the two: the
//! LSM tags runs with a level (at build time, and re-tags after version
//! installs, since leveling can carry a run down a level without
//! rewriting it), and the storage backend reports every page read/write
//! against the run id. Counters are plain relaxed atomics per level slot;
//! the run→level lookup takes a lock-free direct-mapped tag cache (one
//! relaxed load), falling back to an `RwLock`-ed map only on a cache
//! collision, so the per-page hot path is three relaxed atomic ops.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Level slots 1..=MAX_LEVELS hold attributed traffic; slot 0 collects
/// I/O on untagged runs (value log, runs deleted mid-flight, levels
/// deeper than the table). Deeper levels clamp into the last slot.
pub const MAX_LEVELS: usize = 32;

/// Number of attribution slots: one unattributed slot plus `MAX_LEVELS`.
pub const LEVEL_SLOTS: usize = MAX_LEVELS + 1;

#[derive(Default)]
struct LevelIo {
    reads: AtomicU64,
    writes: AtomicU64,
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_hit_bytes: AtomicU64,
}

/// Point-in-time copy of one level's I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelIoSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Reads on this level's runs absorbed by the block cache (not I/Os;
    /// excluded from `reads`). Shows where cache capacity pays off.
    pub cache_hits: u64,
    pub cache_hit_bytes: u64,
}

impl LevelIoSnapshot {
    /// Field-wise sum — aggregates one level's I/O across shards.
    pub fn merge(&mut self, other: &LevelIoSnapshot) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_bytes += other.read_bytes;
        self.write_bytes += other.write_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_hit_bytes += other.cache_hit_bytes;
    }

    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// Direct-mapped tag-cache size. Live runs number in the tens, so
/// collisions on `run % TAG_CACHE` are rare; a collision only means the
/// evicted run's I/O takes the locked-map slow path, never a wrong level.
const TAG_CACHE: usize = 256;

/// A tag-cache entry packs `(run << 8) | (level + 1)`; 0 is empty. Runs
/// with ids that would not survive the shift (≥ 2^56 — never reached by
/// a monotonic run counter) simply skip the cache.
#[inline]
fn pack_tag(run: u64, level: usize) -> Option<u64> {
    (run < 1 << 56).then(|| (run << 8) | (level as u64 + 1))
}

/// Maps run ids to levels and accumulates per-level read/write traffic.
pub struct IoAttribution {
    levels: [LevelIo; LEVEL_SLOTS],
    run_level: RwLock<HashMap<u64, usize>>,
    /// Lock-free fast path for [`IoAttribution::level_of`]: the per-page
    /// `on_read`/`on_write` hooks resolve a run's level with one relaxed
    /// load instead of an `RwLock` + `HashMap` probe. Kept in sync with
    /// `run_level` by every tag/untag/retag.
    tag_cache: [AtomicU64; TAG_CACHE],
}

impl Default for IoAttribution {
    fn default() -> Self {
        Self::new()
    }
}

impl IoAttribution {
    pub fn new() -> Self {
        Self {
            levels: std::array::from_fn(|_| LevelIo::default()),
            run_level: RwLock::new(HashMap::new()),
            tag_cache: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn slot(level: usize) -> usize {
        level.min(MAX_LEVELS)
    }

    #[inline]
    fn cache_slot(&self, run: u64) -> &AtomicU64 {
        &self.tag_cache[run as usize % TAG_CACHE]
    }

    fn cache_store(&self, run: u64, level: usize) {
        if let Some(packed) = pack_tag(run, level) {
            self.cache_slot(run).store(packed, Ordering::Relaxed);
        }
    }

    /// Tag `run` as living on `level` (1-based; 0 means unattributed).
    pub fn tag_run(&self, run: u64, level: usize) {
        let level = Self::slot(level);
        self.run_level.write().unwrap().insert(run, level);
        self.cache_store(run, level);
    }

    /// Drop a run's tag (e.g. after deletion). Subsequent I/O on the id
    /// falls back to the unattributed slot.
    pub fn untag_run(&self, run: u64) {
        self.run_level.write().unwrap().remove(&run);
        let slot = self.cache_slot(run);
        if slot.load(Ordering::Relaxed) >> 8 == run {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Replace the whole run→level map. Called after a version install or
    /// recovery with the authoritative placement of every live run, which
    /// fixes runs that moved levels without being rewritten.
    pub fn retag_all<I: IntoIterator<Item = (u64, usize)>>(&self, runs: I) {
        let mut map = self.run_level.write().unwrap();
        map.clear();
        map.extend(runs.into_iter().map(|(r, l)| (r, Self::slot(l))));
        for slot in &self.tag_cache {
            slot.store(0, Ordering::Relaxed);
        }
        for (&run, &level) in map.iter() {
            self.cache_store(run, level);
        }
    }

    /// Level a run is currently tagged with, if any. One relaxed load on
    /// a cache hit; only collision-evicted runs pay the locked map probe.
    #[inline]
    pub fn level_of(&self, run: u64) -> Option<usize> {
        let packed = self.cache_slot(run).load(Ordering::Relaxed);
        if packed != 0 && packed >> 8 == run {
            return Some((packed & 0xff) as usize - 1);
        }
        self.run_level.read().unwrap().get(&run).copied()
    }

    /// Record a read of `bytes` against `run`'s level.
    #[inline]
    pub fn on_read(&self, run: u64, bytes: u64) {
        let slot = self.level_of(run).unwrap_or(0);
        let l = &self.levels[slot];
        l.reads.fetch_add(1, Ordering::Relaxed);
        l.read_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a write of `bytes` against `run`'s level.
    #[inline]
    pub fn on_write(&self, run: u64, bytes: u64) {
        let slot = self.level_of(run).unwrap_or(0);
        let l = &self.levels[slot];
        l.writes.fetch_add(1, Ordering::Relaxed);
        l.write_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record a block-cache hit of `bytes` against `run`'s level. Hits are
    /// not I/Os and are deliberately kept out of `reads`/`read_bytes`; this
    /// separate channel lets the advisor see which levels the cache is
    /// absorbing traffic for.
    #[inline]
    pub fn on_cache_hit(&self, run: u64, bytes: u64) {
        let slot = self.level_of(run).unwrap_or(0);
        let l = &self.levels[slot];
        l.cache_hits.fetch_add(1, Ordering::Relaxed);
        l.cache_hit_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Snapshot all level slots. Index 0 is the unattributed slot.
    pub fn snapshot(&self) -> Vec<LevelIoSnapshot> {
        self.levels
            .iter()
            .map(|l| LevelIoSnapshot {
                reads: l.reads.load(Ordering::Relaxed),
                writes: l.writes.load(Ordering::Relaxed),
                read_bytes: l.read_bytes.load(Ordering::Relaxed),
                write_bytes: l.write_bytes.load(Ordering::Relaxed),
                cache_hits: l.cache_hits.load(Ordering::Relaxed),
                cache_hit_bytes: l.cache_hit_bytes.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Zero the traffic counters (tags survive).
    pub fn reset_counters(&self) {
        for l in &self.levels {
            l.reads.store(0, Ordering::Relaxed);
            l.writes.store(0, Ordering::Relaxed);
            l.read_bytes.store(0, Ordering::Relaxed);
            l.write_bytes.store(0, Ordering::Relaxed);
            l.cache_hits.store(0, Ordering::Relaxed);
            l.cache_hit_bytes.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attributes_by_tag_and_falls_back_to_slot_zero() {
        let a = IoAttribution::new();
        a.tag_run(7, 2);
        a.on_read(7, 1024);
        a.on_write(7, 4096);
        a.on_cache_hit(7, 1024);
        a.on_read(99, 512); // untagged
        let s = a.snapshot();
        assert_eq!(
            s[2],
            LevelIoSnapshot {
                reads: 1,
                writes: 1,
                read_bytes: 1024,
                write_bytes: 4096,
                cache_hits: 1,
                cache_hit_bytes: 1024,
            }
        );
        assert_eq!(s[2].reads, 1, "cache hits are not reads");
        assert_eq!(s[0].reads, 1);
        assert_eq!(s[0].read_bytes, 512);
    }

    #[test]
    fn retag_moves_future_traffic() {
        let a = IoAttribution::new();
        a.tag_run(1, 1);
        a.on_read(1, 100);
        a.retag_all([(1, 2)]);
        a.on_read(1, 100);
        let s = a.snapshot();
        assert_eq!(s[1].reads, 1);
        assert_eq!(s[2].reads, 1);
        assert_eq!(a.level_of(1), Some(2));
    }

    #[test]
    fn deep_levels_clamp_and_untag_falls_back() {
        let a = IoAttribution::new();
        a.tag_run(3, 500);
        assert_eq!(a.level_of(3), Some(MAX_LEVELS));
        a.untag_run(3);
        assert_eq!(a.level_of(3), None);
        a.on_write(3, 10);
        assert_eq!(a.snapshot()[0].writes, 1);
    }

    #[test]
    fn reset_clears_counters_not_tags() {
        let a = IoAttribution::new();
        a.tag_run(1, 1);
        a.on_read(1, 100);
        a.reset_counters();
        assert!(a.snapshot().iter().all(|l| l.is_zero()));
        assert_eq!(a.level_of(1), Some(1));
    }
}
