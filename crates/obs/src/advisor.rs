//! Online workload characterisation and the tuning-advice report.
//!
//! Monkey's holistic tuning (§5, Appendix D) consumes the workload
//! proportions `(r, v, q, w)` — zero-result lookups, non-zero-result
//! lookups, range lookups, updates — as a *given*. A running store has to
//! measure them. [`WorkloadCharacterizer`] does that online: the engine
//! classifies every finished op into the taxonomy (exact sharded
//! counters), measures range selectivity from the entries each scan
//! actually yielded, and sketches key skew with a count-min sketch plus a
//! space-saving top-k (keys are sampled 1-in-[`KEY_SAMPLE_PERIOD`] so the
//! sketch stays off the dominant hot-path cost).
//!
//! [`MeasuredWorkload`] is the resulting point-in-time summary, and
//! [`TuningAdvice`] the report the closed-loop advisor (in `monkey::
//! TuningAdvisor`) emits after pushing the measured mix through the
//! Appendix D navigator: current vs recommended design, predicted
//! worst-case throughput for both, and a confidence gate that withholds
//! the recommendation until enough evidence has accumulated.

use std::cell::Cell;

use crate::counter::ShardedCounter;
use crate::json::{json_array, JsonObject};
use crate::sketch::{CountMinSketch, HotKey, SpaceSaving};

/// One in this many classified ops feeds the key-skew sketches. The
/// classification counters themselves are exact; only the (heavier)
/// sketch updates are sampled.
pub const KEY_SAMPLE_PERIOD: u64 = 32;

/// Advice is withheld until at least this many ops have been classified…
pub const DEFAULT_MIN_ADVICE_SAMPLES: u64 = 1000;

/// …and at least this many windows have been recorded by the series.
pub const DEFAULT_MIN_ADVICE_WINDOWS: u64 = 3;

/// Default number of hot keys tracked by the characterizer.
pub const DEFAULT_HOT_KEYS: usize = 8;

thread_local! {
    static KEY_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Online classifier of the paper's workload taxonomy plus key-skew
/// sketches. One instance lives inside the telemetry hub; the engine
/// calls the `record_*` hooks from the op paths.
pub struct WorkloadCharacterizer {
    zero_result: ShardedCounter,
    existing: ShardedCounter,
    ranges: ShardedCounter,
    range_entries: ShardedCounter,
    updates: ShardedCounter,
    sketch: CountMinSketch,
    hot: SpaceSaving,
}

impl Default for WorkloadCharacterizer {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadCharacterizer {
    /// Characterizer with default sketch sizing: ε = 1 %, δ = 1 %
    /// (≈ 20 KiB of counters) and [`DEFAULT_HOT_KEYS`] monitored keys.
    pub fn new() -> Self {
        Self {
            zero_result: ShardedCounter::new(),
            existing: ShardedCounter::new(),
            ranges: ShardedCounter::new(),
            range_entries: ShardedCounter::new(),
            updates: ShardedCounter::new(),
            sketch: CountMinSketch::with_error(0.01, 0.01),
            hot: SpaceSaving::new(DEFAULT_HOT_KEYS),
        }
    }

    /// 1-in-[`KEY_SAMPLE_PERIOD`] per-thread sampling decision for the
    /// sketch updates.
    #[inline]
    fn key_sampled() -> bool {
        KEY_TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v % KEY_SAMPLE_PERIOD == 0
        })
    }

    #[inline]
    fn sketch_key(&self, key: &[u8]) {
        if Self::key_sampled() {
            // The sketch's updated estimate gates the (mutex-guarded)
            // top-k, so a cold key on a full table costs no lock at all.
            let estimate = self.sketch.observe(key);
            self.hot.offer(key, estimate);
        }
    }

    /// A point lookup finished: `found` separates the paper's `v`
    /// (non-zero result) from `r` (zero result).
    #[inline]
    pub fn record_lookup(&self, key: &[u8], found: bool) {
        if found {
            self.existing.incr();
        } else {
            self.zero_result.incr();
        }
        self.sketch_key(key);
    }

    /// An update (`put` or `delete`) committed — the paper's `w`.
    #[inline]
    pub fn record_update(&self, key: &[u8]) {
        self.updates.incr();
        self.sketch_key(key);
    }

    /// A range lookup finished having yielded `entries` entries — the
    /// paper's `q`; the entry count feeds measured selectivity.
    #[inline]
    pub fn record_range(&self, entries: u64) {
        self.ranges.incr();
        self.range_entries.add(entries);
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn measured(&self) -> MeasuredWorkload {
        MeasuredWorkload {
            zero_result_lookups: self.zero_result.get(),
            existing_lookups: self.existing.get(),
            range_lookups: self.ranges.get(),
            range_entries_scanned: self.range_entries.get(),
            updates: self.updates.get(),
            sampled_keys: self.sketch.observed(),
            hot_keys: self.hot.top(),
        }
    }

    /// The key-frequency sketch (estimates are per *sampled* stream).
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }

    /// Zero all counters and sketches.
    pub fn reset(&self) {
        self.zero_result.reset();
        self.existing.reset();
        self.ranges.reset();
        self.range_entries.reset();
        self.updates.reset();
        self.sketch.reset();
        self.hot.reset();
    }
}

/// Measured workload composition in the paper's taxonomy. Counts are
/// exact; `hot_keys`/`sampled_keys` come from the 1-in-N sampled sketch
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredWorkload {
    /// Point lookups that found nothing (the paper's `r` numerator).
    pub zero_result_lookups: u64,
    /// Point lookups that found a value (`v`).
    pub existing_lookups: u64,
    /// Range lookups (`q`).
    pub range_lookups: u64,
    /// Total entries yielded by all range lookups (selectivity numerator).
    pub range_entries_scanned: u64,
    /// Updates — puts and deletes (`w`).
    pub updates: u64,
    /// Keys folded into the skew sketches (sampled stream length).
    pub sampled_keys: u64,
    /// Monitored heavy hitters, most frequent first.
    pub hot_keys: Vec<HotKey>,
}

impl MeasuredWorkload {
    /// Folds another shard's measurement into this one: counters sum;
    /// heavy hitters merge by key (a shard router partitions the keyspace,
    /// so a given key is counted by exactly one shard) and re-sort by
    /// estimated count.
    pub fn merge(&mut self, other: &MeasuredWorkload) {
        self.zero_result_lookups += other.zero_result_lookups;
        self.existing_lookups += other.existing_lookups;
        self.range_lookups += other.range_lookups;
        self.range_entries_scanned += other.range_entries_scanned;
        self.updates += other.updates;
        self.sampled_keys += other.sampled_keys;
        for hk in &other.hot_keys {
            match self.hot_keys.iter_mut().find(|h| h.key == hk.key) {
                Some(mine) => {
                    mine.count += hk.count;
                    mine.error += hk.error;
                }
                None => self.hot_keys.push(hk.clone()),
            }
        }
        self.hot_keys.sort_by_key(|k| std::cmp::Reverse(k.count));
    }

    /// Total classified ops.
    pub fn total(&self) -> u64 {
        self.zero_result_lookups + self.existing_lookups + self.range_lookups + self.updates
    }

    fn fraction(&self, part: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            part as f64 / total as f64
        }
    }

    /// Measured `r`: fraction of ops that were zero-result lookups.
    pub fn r(&self) -> f64 {
        self.fraction(self.zero_result_lookups)
    }

    /// Measured `v`: fraction that were non-zero-result lookups.
    pub fn v(&self) -> f64 {
        self.fraction(self.existing_lookups)
    }

    /// Measured `q`: fraction that were range lookups.
    pub fn q(&self) -> f64 {
        self.fraction(self.range_lookups)
    }

    /// Measured `w`: fraction that were updates.
    pub fn w(&self) -> f64 {
        self.fraction(self.updates)
    }

    /// Mean entries yielded per range lookup (0 when none ran).
    pub fn mean_range_entries(&self) -> f64 {
        if self.range_lookups == 0 {
            0.0
        } else {
            self.range_entries_scanned as f64 / self.range_lookups as f64
        }
    }

    /// Measured range selectivity against a store of `total_entries`:
    /// mean scanned fraction, clamped into `[0, 1]`, 0 when unmeasurable.
    pub fn selectivity(&self, total_entries: u64) -> f64 {
        if total_entries == 0 {
            return 0.0;
        }
        (self.mean_range_entries() / total_entries as f64).clamp(0.0, 1.0)
    }

    /// Compact JSON rendering (used by `monkey-stats --watch`).
    pub fn to_json(&self) -> String {
        let hot = json_array(self.hot_keys.iter().map(|h| {
            JsonObject::new()
                .str("key", &String::from_utf8_lossy(&h.key))
                .u64("count", h.count)
                .u64("error", h.error)
                .finish()
        }));
        JsonObject::new()
            .u64("zero_result_lookups", self.zero_result_lookups)
            .u64("existing_lookups", self.existing_lookups)
            .u64("range_lookups", self.range_lookups)
            .u64("range_entries_scanned", self.range_entries_scanned)
            .u64("updates", self.updates)
            .f64("r", self.r())
            .f64("v", self.v())
            .f64("q", self.q())
            .f64("w", self.w())
            .u64("sampled_keys", self.sampled_keys)
            .raw("hot_keys", &hot)
            .finish()
    }
}

/// One point in Monkey's design space, priced by the model. Plain data so
/// the dependency-free `obs` crate can render it; the glue layer
/// (`monkey::TuningAdvisor`) fills it from `model` types.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Merge policy name: `"leveling"` or `"tiering"`.
    pub policy: String,
    /// Size ratio `T` between adjacent levels.
    pub size_ratio: f64,
    /// Write-buffer allocation in bytes (`M_buf / 8`).
    pub buffer_bytes: f64,
    /// Total Bloom-filter allocation in bits (`M_filters`).
    pub filter_bits: f64,
    /// Expected worst-case I/Os per operation (Eq. 12's θ).
    pub theta: f64,
    /// Predicted worst-case throughput, ops/s (Eq. 13's τ).
    pub throughput: f64,
}

impl DesignPoint {
    /// One-line rendering of the design and its predicted worst case —
    /// the form [`TuningAdvice::pretty`] and `monkey-top` print.
    pub fn summary(&self) -> String {
        format!(
            "{:<9} T={:<3.0} buffer={:.1} KiB  filters={:.0} bits  theta={:.4}  worst-case {:.1} ops/s",
            self.policy,
            self.size_ratio,
            self.buffer_bytes / 1024.0,
            self.filter_bits,
            self.theta,
            self.throughput,
        )
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .str("policy", &self.policy)
            .f64("size_ratio", self.size_ratio)
            .f64("buffer_bytes", self.buffer_bytes)
            .f64("filter_bits", self.filter_bits)
            .f64("theta", self.theta)
            .f64("worst_case_throughput", self.throughput)
            .finish()
    }
}

/// The closed-loop tuning report: measured mix, current design vs the
/// navigator's recommendation, and the confidence gate that decides
/// whether the recommendation is actionable yet.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningAdvice {
    /// Ops classified by the characterizer when advice was computed.
    pub samples: u64,
    /// Gate: minimum classified ops before advice is released.
    pub min_samples: u64,
    /// Windows recorded by the observatory series.
    pub windows: u64,
    /// Gate: minimum recorded windows before advice is released.
    pub min_windows: u64,
    /// Measured zero-result lookup fraction `r`.
    pub measured_r: f64,
    /// Measured non-zero-result lookup fraction `v`.
    pub measured_v: f64,
    /// Measured range fraction `q`.
    pub measured_q: f64,
    /// Measured update fraction `w`.
    pub measured_w: f64,
    /// Measured range selectivity `s`.
    pub measured_selectivity: f64,
    /// Entry count the designs were priced for.
    pub entries: u64,
    /// Entry size in bytes the designs were priced for.
    pub entry_bytes: u64,
    /// Memory budget (buffer + filters) in bytes.
    pub memory_bytes: u64,
    /// The deployed design, priced under the measured mix.
    pub current: DesignPoint,
    /// The navigator's pick; `None` while the confidence gate holds.
    pub recommended: Option<DesignPoint>,
}

impl TuningAdvice {
    /// Whether enough evidence accumulated to release a recommendation.
    pub fn confident(&self) -> bool {
        self.samples >= self.min_samples && self.windows >= self.min_windows
    }

    /// Predicted throughput ratio recommended / current (1.0 while the
    /// gate holds or the current design already wins).
    pub fn speedup(&self) -> f64 {
        match &self.recommended {
            Some(rec) if self.current.throughput > 0.0 => rec.throughput / self.current.throughput,
            _ => 1.0,
        }
    }

    /// Human-readable report.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("== tuning advisor ==\n");
        out.push_str(&format!(
            "measured mix     r={:.3} v={:.3} q={:.3} w={:.3}  selectivity={:.6}\n",
            self.measured_r,
            self.measured_v,
            self.measured_q,
            self.measured_w,
            self.measured_selectivity,
        ));
        out.push_str(&format!(
            "evidence         {} classified ops (gate {}), {} windows (gate {})\n",
            self.samples, self.min_samples, self.windows, self.min_windows,
        ));
        out.push_str(&format!(
            "sizing           N={} entries x {} B, memory budget {:.1} KiB\n",
            self.entries,
            self.entry_bytes,
            self.memory_bytes as f64 / 1024.0,
        ));
        out.push_str(&format!("current design   {}\n", self.current.summary()));
        match &self.recommended {
            Some(rec) => {
                out.push_str(&format!(
                    "recommended      {}  ({:.2}x)\n",
                    rec.summary(),
                    self.speedup(),
                ));
            }
            None => {
                out.push_str(
                    "recommended      (withheld: not enough evidence yet — keep sampling)\n",
                );
            }
        }
        out
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new()
            .bool("confident", self.confident())
            .u64("samples", self.samples)
            .u64("min_samples", self.min_samples)
            .u64("windows", self.windows)
            .u64("min_windows", self.min_windows)
            .raw(
                "measured",
                &JsonObject::new()
                    .f64("r", self.measured_r)
                    .f64("v", self.measured_v)
                    .f64("q", self.measured_q)
                    .f64("w", self.measured_w)
                    .f64("selectivity", self.measured_selectivity)
                    .finish(),
            )
            .u64("entries", self.entries)
            .u64("entry_bytes", self.entry_bytes)
            .u64("memory_bytes", self.memory_bytes)
            .raw("current", &self.current.to_json());
        obj = match &self.recommended {
            Some(rec) => obj
                .raw("recommended", &rec.to_json())
                .f64("speedup", self.speedup()),
            None => obj.raw("recommended", "null"),
        };
        obj.finish()
    }

    /// Prometheus text-exposition rendering (`monkey_advisor_*` metrics).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: &str| {
            out.push_str(s);
            out.push('\n');
        };
        push(&mut out, "# HELP monkey_advisor_confident 1 when enough evidence accumulated to trust the recommendation.");
        push(&mut out, "# TYPE monkey_advisor_confident gauge");
        push(
            &mut out,
            &format!("monkey_advisor_confident {}", u64::from(self.confident())),
        );
        push(
            &mut out,
            "# HELP monkey_advisor_samples Ops classified by the workload characterizer.",
        );
        push(&mut out, "# TYPE monkey_advisor_samples gauge");
        push(
            &mut out,
            &format!("monkey_advisor_samples {}", self.samples),
        );
        push(
            &mut out,
            "# HELP monkey_advisor_windows Observatory windows recorded.",
        );
        push(&mut out, "# TYPE monkey_advisor_windows gauge");
        push(
            &mut out,
            &format!("monkey_advisor_windows {}", self.windows),
        );
        push(
            &mut out,
            "# HELP monkey_advisor_measured_mix Measured workload proportions (paper taxonomy).",
        );
        push(&mut out, "# TYPE monkey_advisor_measured_mix gauge");
        for (op, share) in [
            ("zero_result_lookup", self.measured_r),
            ("non_zero_result_lookup", self.measured_v),
            ("range_lookup", self.measured_q),
            ("update", self.measured_w),
        ] {
            push(
                &mut out,
                &format!("monkey_advisor_measured_mix{{op=\"{op}\"}} {share}"),
            );
        }
        push(
            &mut out,
            "# HELP monkey_advisor_measured_selectivity Measured mean range selectivity.",
        );
        push(&mut out, "# TYPE monkey_advisor_measured_selectivity gauge");
        push(
            &mut out,
            &format!(
                "monkey_advisor_measured_selectivity {}",
                self.measured_selectivity
            ),
        );
        push(
            &mut out,
            "# HELP monkey_advisor_design_info Designs under comparison; policy as a label.",
        );
        push(&mut out, "# TYPE monkey_advisor_design_info gauge");
        push(&mut out, "# HELP monkey_advisor_worst_case_throughput Model-predicted worst-case throughput (Eq. 13), ops/s.");
        push(
            &mut out,
            "# TYPE monkey_advisor_worst_case_throughput gauge",
        );
        let design = |out: &mut String, label: &str, d: &DesignPoint| {
            push(
                out,
                &format!(
                    "monkey_advisor_design_info{{design=\"{label}\",policy=\"{}\"}} 1",
                    d.policy
                ),
            );
            push(
                out,
                &format!(
                    "monkey_advisor_size_ratio{{design=\"{label}\"}} {}",
                    d.size_ratio
                ),
            );
            push(
                out,
                &format!(
                    "monkey_advisor_buffer_bytes{{design=\"{label}\"}} {}",
                    d.buffer_bytes
                ),
            );
            push(
                out,
                &format!(
                    "monkey_advisor_filter_bits{{design=\"{label}\"}} {}",
                    d.filter_bits
                ),
            );
            push(
                out,
                &format!("monkey_advisor_theta{{design=\"{label}\"}} {}", d.theta),
            );
            push(
                out,
                &format!(
                    "monkey_advisor_worst_case_throughput{{design=\"{label}\"}} {}",
                    d.throughput
                ),
            );
        };
        design(&mut out, "current", &self.current);
        if let Some(rec) = &self.recommended {
            design(&mut out, "recommended", rec);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(c: &WorkloadCharacterizer, r: u64, v: u64, q: u64, w: u64) {
        for i in 0..r {
            c.record_lookup(&i.to_le_bytes(), false);
        }
        for i in 0..v {
            c.record_lookup(&i.to_le_bytes(), true);
        }
        for _ in 0..q {
            c.record_range(50);
        }
        for i in 0..w {
            c.record_update(&i.to_le_bytes());
        }
    }

    #[test]
    fn characterizer_counts_are_exact() {
        let c = WorkloadCharacterizer::new();
        classify(&c, 250, 250, 10, 490);
        let m = c.measured();
        assert_eq!(m.total(), 1000);
        assert_eq!(m.zero_result_lookups, 250);
        assert!((m.r() - 0.25).abs() < 1e-12);
        assert!((m.q() - 0.01).abs() < 1e-12);
        assert!((m.w() - 0.49).abs() < 1e-12);
        assert_eq!(m.mean_range_entries(), 50.0);
        assert!((m.selectivity(100_000) - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn empty_workload_degrades_to_zero() {
        let m = WorkloadCharacterizer::new().measured();
        assert_eq!(m.total(), 0);
        assert_eq!(m.r(), 0.0);
        assert_eq!(m.selectivity(0), 0.0);
        assert_eq!(m.mean_range_entries(), 0.0);
    }

    #[test]
    fn key_sampling_feeds_sketch_at_one_in_n() {
        let c = WorkloadCharacterizer::new();
        let n = KEY_SAMPLE_PERIOD * 100;
        for _ in 0..n {
            c.record_update(b"hot-key");
        }
        let m = c.measured();
        // Exact classification, sampled sketch.
        assert_eq!(m.updates, n);
        assert!(m.sampled_keys >= n / KEY_SAMPLE_PERIOD / 2);
        assert!(m.sampled_keys <= n);
        assert_eq!(m.hot_keys[0].key, b"hot-key".to_vec());
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = WorkloadCharacterizer::new();
        classify(&c, 10, 10, 10, 10);
        c.reset();
        let m = c.measured();
        assert_eq!(m.total(), 0);
        assert!(m.hot_keys.is_empty());
        assert_eq!(m.sampled_keys, 0);
    }

    fn advice(recommended: bool, samples: u64, windows: u64) -> TuningAdvice {
        let current = DesignPoint {
            policy: "leveling".into(),
            size_ratio: 2.0,
            buffer_bytes: 16384.0,
            filter_bits: 80000.0,
            theta: 2.0,
            throughput: 50.0,
        };
        TuningAdvice {
            samples,
            min_samples: 1000,
            windows,
            min_windows: 3,
            measured_r: 0.25,
            measured_v: 0.25,
            measured_q: 0.01,
            measured_w: 0.49,
            measured_selectivity: 0.0005,
            entries: 100_000,
            entry_bytes: 64,
            memory_bytes: 1 << 20,
            current,
            recommended: recommended.then(|| DesignPoint {
                policy: "tiering".into(),
                size_ratio: 8.0,
                buffer_bytes: 65536.0,
                filter_bits: 70000.0,
                theta: 1.0,
                throughput: 100.0,
            }),
        }
    }

    #[test]
    fn gate_and_speedup() {
        let gated = advice(false, 10, 1);
        assert!(!gated.confident());
        assert_eq!(gated.speedup(), 1.0);
        assert!(gated.pretty().contains("withheld"));
        assert!(gated.to_json().contains("\"recommended\":null"));
        let open = advice(true, 5000, 10);
        assert!(open.confident());
        assert_eq!(open.speedup(), 2.0);
        assert!(open.pretty().contains("tiering"));
    }

    #[test]
    fn renderings_cover_all_surfaces() {
        let a = advice(true, 5000, 10);
        let json = a.to_json();
        assert!(json.contains("\"confident\":true"));
        assert!(json.contains("\"policy\":\"tiering\""));
        assert!(json.contains("\"speedup\":2"));
        let prom = a.to_prometheus();
        assert!(prom.contains("monkey_advisor_confident 1"));
        assert!(prom.contains("monkey_advisor_worst_case_throughput{design=\"recommended\"} 100"));
        assert!(prom.contains("monkey_advisor_measured_mix{op=\"update\"} 0.49"));
        let pretty = a.pretty();
        assert!(pretty.contains("current design"));
        assert!(pretty.contains("2.00x"));
    }
}
