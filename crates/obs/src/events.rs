//! Fixed-capacity structured event ring.
//!
//! The engine's rare-but-interesting moments — flushes, cascade installs,
//! stalls, WAL group commits, background errors — are pushed here as typed
//! events with monotonic timestamps. The ring holds the most recent
//! `capacity` events; older ones are evicted and counted in `dropped`, so a
//! drained timeline always says whether it is complete. Pushes take a
//! `Mutex`, which is fine: every producer site is already on a slow path
//! (flush/cascade/stall) or amortised (one event per WAL *group*, not per
//! record).

use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened. Payloads are small and fixed-size except for
/// `BackgroundError`, which carries the error text (allocated off the hot
/// path, on the already-failed slow path).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A memtable flush began: entries and approximate bytes being flushed.
    FlushStart { entries: u64, bytes: u64 },
    /// The flush (including any cascade) finished.
    FlushEnd { duration_micros: u64 },
    /// A merge cascade published a new version: how many merges ran and the
    /// deepest level the cascade reached.
    CascadeInstall { merges: u64, deepest_level: u64 },
    /// A writer hit backpressure and began waiting; current immutable
    /// queue depth at that moment.
    StallBegin { queue_depth: u64 },
    /// The stalled writer resumed after `waited_micros`.
    StallEnd { waited_micros: u64 },
    /// A WAL group commit flushed `records` batched appends with one sync.
    WalGroupCommit { records: u64 },
    /// A background worker failed; the error is deferred to foreground.
    BackgroundError { message: String },
    /// A requested `O_DIRECT` backend could not run on this filesystem
    /// and the store fell back to buffered I/O. Emitted once at open;
    /// `reason` is the probe failure (e.g. tmpfs rejecting the flag).
    IoBackendFallback { reason: String },
}

impl EventKind {
    /// Stable snake_case name used by the Prometheus/JSON renderers.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FlushStart { .. } => "flush_start",
            EventKind::FlushEnd { .. } => "flush_end",
            EventKind::CascadeInstall { .. } => "cascade_install",
            EventKind::StallBegin { .. } => "stall_begin",
            EventKind::StallEnd { .. } => "stall_end",
            EventKind::WalGroupCommit { .. } => "wal_group_commit",
            EventKind::BackgroundError { .. } => "background_error",
            EventKind::IoBackendFallback { .. } => "io_backend_fallback",
        }
    }

    /// Payload as (key, value) pairs for structured rendering.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        match self {
            EventKind::FlushStart { entries, bytes } => vec![
                ("entries", entries.to_string()),
                ("bytes", bytes.to_string()),
            ],
            EventKind::FlushEnd { duration_micros } => {
                vec![("duration_micros", duration_micros.to_string())]
            }
            EventKind::CascadeInstall {
                merges,
                deepest_level,
            } => vec![
                ("merges", merges.to_string()),
                ("deepest_level", deepest_level.to_string()),
            ],
            EventKind::StallBegin { queue_depth } => {
                vec![("queue_depth", queue_depth.to_string())]
            }
            EventKind::StallEnd { waited_micros } => {
                vec![("waited_micros", waited_micros.to_string())]
            }
            EventKind::WalGroupCommit { records } => vec![("records", records.to_string())],
            EventKind::BackgroundError { message } => vec![("message", message.clone())],
            EventKind::IoBackendFallback { reason } => vec![("reason", reason.clone())],
        }
    }
}

/// One timeline entry: a monotonically increasing sequence number, a
/// timestamp in microseconds since the telemetry origin, the shard that
/// recorded it (so multi-shard timelines merged by timestamp stay
/// attributable), and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub ts_micros: u64,
    /// Index of the shard whose engine emitted this event; 0 on a
    /// single-shard store.
    pub shard: u32,
    pub kind: EventKind,
}

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded ring of recent [`Event`]s.
pub struct EventRing {
    capacity: usize,
    shard: u32,
    inner: Mutex<Ring>,
}

impl EventRing {
    pub fn new(capacity: usize) -> Self {
        Self::for_shard(0, capacity)
    }

    /// A ring whose events are stamped with `shard`.
    pub fn for_shard(shard: u32, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            shard,
            inner: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, evicting the oldest if full. Returns a copy of
    /// the stored event so callers can forward it (e.g. to the flight
    /// recorder) without re-locking.
    pub fn push(&self, ts_micros: u64, kind: EventKind) -> Event {
        let mut g = self.inner.lock().unwrap();
        if g.buf.len() == self.capacity {
            g.buf.pop_front();
            g.dropped += 1;
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        let event = Event {
            seq,
            ts_micros,
            shard: self.shard,
            kind,
        };
        g.buf.push_back(event.clone());
        event
    }

    /// Remove and return the buffered timeline, oldest first. Sequence
    /// numbers keep counting across drains, so consumers can stitch
    /// successive drains together and spot gaps from eviction.
    pub fn drain(&self) -> Vec<Event> {
        let mut g = self.inner.lock().unwrap();
        g.buf.drain(..).collect()
    }

    /// Copy the buffered timeline without consuming it.
    pub fn peek(&self) -> Vec<Event> {
        let g = self.inner.lock().unwrap();
        g.buf.iter().cloned().collect()
    }

    /// Number of events evicted (never seen by any drain) since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_in_order() {
        let ring = EventRing::new(8);
        ring.push(
            10,
            EventKind::FlushStart {
                entries: 100,
                bytes: 6400,
            },
        );
        ring.push(
            20,
            EventKind::FlushEnd {
                duration_micros: 10,
            },
        );
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].ts_micros, 10);
        assert_eq!(events[0].shard, 0);
        assert_eq!(events[0].kind.name(), "flush_start");
        assert_eq!(events[1].seq, 1);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn eviction_counts_dropped_and_keeps_seq() {
        let ring = EventRing::new(2);
        for i in 0..5 {
            ring.push(i, EventKind::WalGroupCommit { records: i });
        }
        assert_eq!(ring.dropped(), 3);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        // The survivors are the most recent two, with original seqs.
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
    }

    #[test]
    fn shard_tag_flows_through() {
        let ring = EventRing::for_shard(7, 4);
        let pushed = ring.push(5, EventKind::StallBegin { queue_depth: 1 });
        assert_eq!(pushed.shard, 7);
        assert_eq!(ring.drain()[0].shard, 7);
    }

    #[test]
    fn fields_render() {
        let kind = EventKind::CascadeInstall {
            merges: 3,
            deepest_level: 4,
        };
        assert_eq!(
            kind.fields(),
            vec![
                ("merges", "3".to_string()),
                ("deepest_level", "4".to_string()),
            ]
        );
    }
}
