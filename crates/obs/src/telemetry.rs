//! The `Telemetry` aggregate: everything the engine records, in one
//! `Arc`-shareable object.
//!
//! Hot-path cost model: the engine holds an `Option<Arc<Telemetry>>`, so
//! with telemetry off the per-op cost is a single `None` branch. With it
//! on, every op bumps one sharded counter (exact op totals) and — for the
//! high-frequency ops `get`/`put`/`range` — takes a duration sample only
//! one op in [`SAMPLE_PERIOD`], keeping the two `Instant::now()` calls off
//! most iterations. Rare, long ops (flush, cascade) are always timed.
//! Nothing on an instrumented hot path allocates.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use crate::advisor::{MeasuredWorkload, WorkloadCharacterizer};
use crate::attribution::{IoAttribution, LEVEL_SLOTS, MAX_LEVELS};
use crate::counter::ShardedCounter;
use crate::events::{Event, EventKind, EventRing};
use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::iolat::IoLatency;
use crate::trace::Tracer;

/// Operations with dedicated latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Get = 0,
    Put = 1,
    Range = 2,
    Flush = 3,
    Cascade = 4,
    /// One merge operation inside a cascade (a cascade performs zero or
    /// more merges; this histogram shows their individual durations).
    Merge = 5,
}

/// All op kinds, in histogram index order.
pub const OP_KINDS: [OpKind; 6] = [
    OpKind::Get,
    OpKind::Put,
    OpKind::Range,
    OpKind::Flush,
    OpKind::Cascade,
    OpKind::Merge,
];

impl OpKind {
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::Put => "put",
            OpKind::Range => "range",
            OpKind::Flush => "flush",
            OpKind::Cascade => "cascade",
            OpKind::Merge => "merge",
        }
    }

    /// High-frequency ops are duration-sampled; rare ops are always timed.
    #[inline]
    fn sampled(self) -> bool {
        matches!(self, OpKind::Get | OpKind::Put | OpKind::Range)
    }
}

/// One in this many `get`/`put`/`range` calls has its duration recorded.
/// Power of two; the modulo below compiles to a mask.
pub const SAMPLE_PERIOD: u64 = 32;

thread_local! {
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// Negatives are derived (`probes - passes`) rather than stored so the
/// dominant path of a zero-result lookup — probe, filter says no — costs
/// exactly one `fetch_add` per run instead of two. Passes are rare and
/// always accompanied by a page read that dwarfs the extra increment.
#[derive(Default)]
struct LevelLookup {
    filter_probes: AtomicU64,
    filter_passes: AtomicU64,
    filter_false_positives: AtomicU64,
    lookup_page_reads: AtomicU64,
}

/// Point-in-time copy of one level's lookup-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelLookupSnapshot {
    /// Bloom filter membership tests against runs on this level.
    pub filter_probes: u64,
    /// Probes the filter rejected (saving a page read).
    pub filter_negatives: u64,
    /// Probes the filter passed but the run did not contain the key.
    pub filter_false_positives: u64,
    /// Data pages fetched on this level by point lookups.
    pub lookup_page_reads: u64,
}

impl LevelLookupSnapshot {
    /// Field-wise sum — aggregates one level's lookup counters across
    /// shards.
    pub fn merge(&mut self, other: &LevelLookupSnapshot) {
        self.filter_probes += other.filter_probes;
        self.filter_negatives += other.filter_negatives;
        self.filter_false_positives += other.filter_false_positives;
        self.lookup_page_reads += other.lookup_page_reads;
    }

    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Probes against keys absent from the run: filter negatives plus
    /// confirmed false positives. Probes that found the key are true
    /// positives — the model's FPR says nothing about them.
    pub fn negative_trials(&self) -> u64 {
        self.filter_negatives + self.filter_false_positives
    }

    /// Empirical negative-query false-positive rate: of the probes where
    /// the key was absent from the run, the fraction the filter wrongly
    /// passed. True positives are excluded from the denominator so mixed
    /// workloads (existing-key lookups interleaved with misses) don't
    /// dilute the rate the model's FPR actually predicts.
    pub fn measured_fpr(&self) -> f64 {
        let trials = self.negative_trials();
        if trials == 0 {
            0.0
        } else {
            self.filter_false_positives as f64 / trials as f64
        }
    }
}

/// Shared telemetry hub: latency histograms, exact op counters, per-level
/// lookup counters, per-level I/O attribution, the event ring, and the
/// online workload characterizer.
pub struct Telemetry {
    origin: Instant,
    shard: u32,
    hists: [LatencyHistogram; OP_KINDS.len()],
    op_counts: [ShardedCounter; OP_KINDS.len()],
    level_lookups: [LevelLookup; LEVEL_SLOTS],
    attribution: Arc<IoAttribution>,
    io_latency: Arc<IoLatency>,
    events: EventRing,
    workload: WorkloadCharacterizer,
    tracer: OnceLock<Arc<Tracer>>,
}

impl Telemetry {
    /// Default event-ring capacity: enough for hours of steady-state flush
    /// traffic between scrapes without unbounded memory.
    pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

    pub fn new(event_capacity: usize) -> Self {
        Self::for_shard(0, event_capacity)
    }

    /// A hub whose events are stamped with `shard` — the originating
    /// shard index on a multi-shard store.
    pub fn for_shard(shard: u32, event_capacity: usize) -> Self {
        Self {
            origin: Instant::now(),
            shard,
            hists: std::array::from_fn(|_| LatencyHistogram::new()),
            op_counts: std::array::from_fn(|_| ShardedCounter::new()),
            level_lookups: std::array::from_fn(|_| LevelLookup::default()),
            attribution: Arc::new(IoAttribution::new()),
            io_latency: Arc::new(IoLatency::new()),
            events: EventRing::for_shard(shard, event_capacity),
            workload: WorkloadCharacterizer::new(),
            tracer: OnceLock::new(),
        }
    }

    /// The shard index stamped into this hub's events.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Attach the shard's tracer so every structured event is also
    /// spilled into the flight recorder. First attachment wins.
    pub fn attach_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// Microseconds since this telemetry object was created. Monotonic.
    pub fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Count an op and decide whether to time it. Returns the start
    /// instant only when this call was chosen for duration sampling; pass
    /// the result to [`Telemetry::op_end`].
    #[inline]
    pub fn op_start(&self, kind: OpKind) -> Option<Instant> {
        self.op_counts[kind as usize].incr();
        if kind.sampled() {
            let chosen = SAMPLE_TICK.with(|t| {
                let v = t.get();
                t.set(v.wrapping_add(1));
                v % SAMPLE_PERIOD == 0
            });
            if !chosen {
                return None;
            }
        }
        Some(Instant::now())
    }

    /// Record the sampled duration started by [`Telemetry::op_start`].
    #[inline]
    pub fn op_end(&self, kind: OpKind, started: Option<Instant>) {
        if let Some(s) = started {
            self.hists[kind as usize].record(s.elapsed().as_nanos() as u64);
        }
    }

    /// Record a pre-measured duration (used where the caller owns timing,
    /// e.g. a range cursor recording on drop).
    #[inline]
    pub fn record_nanos(&self, kind: OpKind, nanos: u64) {
        self.hists[kind as usize].record(nanos);
    }

    /// Append a structured event stamped with the current monotonic time,
    /// forwarding it to the flight recorder when a tracer is attached.
    pub fn event(&self, kind: EventKind) {
        let event = self.events.push(self.now_micros(), kind);
        if let Some(t) = self.tracer.get() {
            t.spill_event(&event);
        }
    }

    fn level_slot(level: usize) -> usize {
        level.min(MAX_LEVELS)
    }

    /// Record a filter probe against a run on `level` (1-based) and
    /// whether the filter said "definitely absent". The negative path is
    /// the hot one and does a single relaxed `fetch_add`.
    #[inline]
    pub fn record_filter_probe(&self, level: usize, negative: bool) {
        let l = &self.level_lookups[Self::level_slot(level)];
        l.filter_probes.fetch_add(1, Ordering::Relaxed);
        if !negative {
            l.filter_passes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a confirmed filter false positive on `level`.
    #[inline]
    pub fn record_false_positive(&self, level: usize) {
        self.level_lookups[Self::level_slot(level)]
            .filter_false_positives
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record a data-page read performed by a point lookup on `level`.
    #[inline]
    pub fn record_lookup_read(&self, level: usize) {
        self.level_lookups[Self::level_slot(level)]
            .lookup_page_reads
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The I/O attribution table shared with the storage layer.
    pub fn attribution(&self) -> &Arc<IoAttribution> {
        &self.attribution
    }

    /// The backend I/O latency histograms shared with the storage layer.
    pub fn io_latency(&self) -> &Arc<IoLatency> {
        &self.io_latency
    }

    /// The online workload characterizer (paper-taxonomy classification
    /// plus key-skew sketches).
    pub fn workload(&self) -> &WorkloadCharacterizer {
        &self.workload
    }

    /// Snapshot the measured workload composition.
    pub fn measured_workload(&self) -> MeasuredWorkload {
        self.workload.measured()
    }

    pub fn hist(&self, kind: OpKind) -> HistogramSnapshot {
        self.hists[kind as usize].snapshot()
    }

    /// Exact number of ops of `kind` (every call, not just sampled ones).
    pub fn op_count(&self, kind: OpKind) -> u64 {
        self.op_counts[kind as usize].get()
    }

    /// Snapshot all level lookup slots; index 0 is the unattributed slot.
    pub fn level_lookups(&self) -> Vec<LevelLookupSnapshot> {
        self.level_lookups
            .iter()
            .map(|l| {
                let probes = l.filter_probes.load(Ordering::Relaxed);
                let passes = l.filter_passes.load(Ordering::Relaxed);
                LevelLookupSnapshot {
                    filter_probes: probes,
                    // Saturating: a racing probe may have bumped `passes`
                    // before this thread's `probes` load saw it.
                    filter_negatives: probes.saturating_sub(passes),
                    filter_false_positives: l.filter_false_positives.load(Ordering::Relaxed),
                    lookup_page_reads: l.lookup_page_reads.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Drain the event timeline (consuming it).
    pub fn drain_events(&self) -> Vec<Event> {
        self.events.drain()
    }

    /// Copy the event timeline without consuming it.
    pub fn peek_events(&self) -> Vec<Event> {
        self.events.peek()
    }

    /// Events evicted from the ring before any drain saw them.
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Zero histograms, op counts, level counters, attribution traffic,
    /// and the workload characterizer. Events and run tags survive.
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
        for c in &self.op_counts {
            c.reset();
        }
        for l in &self.level_lookups {
            l.filter_probes.store(0, Ordering::Relaxed);
            l.filter_passes.store(0, Ordering::Relaxed);
            l.filter_false_positives.store(0, Ordering::Relaxed);
            l.lookup_page_reads.store(0, Ordering::Relaxed);
        }
        self.attribution.reset_counters();
        self.io_latency.reset();
        self.workload.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_are_exact_while_durations_sample() {
        let t = Telemetry::new(16);
        for _ in 0..(SAMPLE_PERIOD * 4) {
            let s = t.op_start(OpKind::Get);
            t.op_end(OpKind::Get, s);
        }
        assert_eq!(t.op_count(OpKind::Get), SAMPLE_PERIOD * 4);
        let h = t.hist(OpKind::Get);
        // Sampled: far fewer recorded durations than ops, but at least one
        // per full period.
        assert!(h.count >= 4, "sampled count = {}", h.count);
        assert!(h.count <= SAMPLE_PERIOD * 4 / 8);
    }

    #[test]
    fn rare_ops_always_timed() {
        let t = Telemetry::new(16);
        for _ in 0..10 {
            let s = t.op_start(OpKind::Flush);
            assert!(s.is_some());
            t.op_end(OpKind::Flush, s);
        }
        assert_eq!(t.hist(OpKind::Flush).count, 10);
        assert_eq!(t.op_count(OpKind::Flush), 10);
    }

    #[test]
    fn level_lookup_counters() {
        let t = Telemetry::new(16);
        t.record_filter_probe(1, true);
        t.record_filter_probe(1, false);
        t.record_false_positive(1);
        t.record_lookup_read(2);
        let ls = t.level_lookups();
        assert_eq!(ls[1].filter_probes, 2);
        assert_eq!(ls[1].filter_negatives, 1);
        assert_eq!(ls[1].filter_false_positives, 1);
        assert_eq!(ls[1].measured_fpr(), 0.5);
        assert_eq!(ls[2].lookup_page_reads, 1);
    }

    #[test]
    fn events_flow_through() {
        let t = Telemetry::new(4);
        t.event(EventKind::StallBegin { queue_depth: 3 });
        t.event(EventKind::StallEnd { waited_micros: 50 });
        let evs = t.drain_events();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].ts_micros <= evs[1].ts_micros);
        assert!(t.drain_events().is_empty());
    }

    #[test]
    fn workload_classification_flows_through() {
        let t = Telemetry::new(4);
        t.workload().record_lookup(b"k", false);
        t.workload().record_lookup(b"k", true);
        t.workload().record_update(b"k");
        t.workload().record_range(10);
        let m = t.measured_workload();
        assert_eq!(m.total(), 4);
        assert_eq!(m.range_entries_scanned, 10);
        t.reset();
        assert_eq!(t.measured_workload().total(), 0);
    }

    #[test]
    fn reset_preserves_tags_and_events() {
        let t = Telemetry::new(4);
        t.attribution().tag_run(1, 2);
        t.attribution().on_read(1, 100);
        t.record_filter_probe(1, false);
        t.event(EventKind::WalGroupCommit { records: 1 });
        t.reset();
        assert!(t.level_lookups().iter().all(|l| l.is_zero()));
        assert!(t.attribution().snapshot().iter().all(|l| l.is_zero()));
        assert_eq!(t.attribution().level_of(1), Some(2));
        assert_eq!(t.peek_events().len(), 1);
    }
}
