//! Assembled telemetry reports and their renderings.
//!
//! The engine (which knows tree shape, filter policies, and the Monkey
//! model's predictions) fills these structs from [`crate::Telemetry`]
//! snapshots; this module owns the three renderings — Prometheus
//! exposition text, a JSON snapshot, and a human `pretty()` dump used by
//! the `monkey-stats` bin — plus the model-drift bound.

use crate::attribution::LevelIoSnapshot;
use crate::events::{Event, EventKind};
use crate::hist::HistogramSnapshot;
use crate::iolat::mode_split;
use crate::json::{json_array, json_f64, JsonObject};
use crate::telemetry::LevelLookupSnapshot;
use crate::trace::Span;
use std::collections::HashMap;

/// Version string baked into `monkey_build_info` so scrapes identify the
/// build they came from.
pub(crate) const BUILD_VERSION: &str = env!("CARGO_PKG_VERSION");

/// z-score for the drift confidence bound (~99.7% two-sided).
pub const DRIFT_Z: f64 = 3.0;

/// Additive slack absorbing model quantisation: filter bit counts are
/// rounded to whole bits/pages, so even a perfectly healthy filter's
/// measured FPR sits a little off the closed-form value.
pub const DRIFT_EPSILON: f64 = 0.01;

/// Minimum probes before a drift verdict; below this the binomial noise
/// dwarfs any plausible mis-allocation.
pub const DRIFT_MIN_PROBES: u64 = 500;

/// A level whose measured FPR left the confidence band around its
/// allocated FPR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftFlag {
    /// `|measured - allocated|`.
    pub deviation: f64,
    /// The bound it exceeded: `DRIFT_Z * sqrt(p(1-p)/n) + DRIFT_EPSILON`.
    pub bound: f64,
}

/// Flag a level as drifted when its empirical FPR deviates from the
/// allocated FPR by more than `z` standard errors of the binomial
/// proportion plus a fixed quantisation epsilon. Returns `None` when the
/// sample is too small to judge or the deviation is within the band.
pub fn drift_flag(measured_fpr: f64, allocated_fpr: f64, probes: u64) -> Option<DriftFlag> {
    if probes < DRIFT_MIN_PROBES {
        return None;
    }
    let p = allocated_fpr.clamp(0.0, 1.0);
    let se = (p * (1.0 - p) / probes as f64).sqrt();
    let bound = DRIFT_Z * se + DRIFT_EPSILON;
    let deviation = (measured_fpr - p).abs();
    if deviation > bound {
        Some(DriftFlag { deviation, bound })
    } else {
        None
    }
}

/// Latency summary for one op kind, in microseconds.
#[derive(Debug, Clone)]
pub struct OpLatencyReport {
    pub op: &'static str,
    /// Exact number of ops (every call).
    pub ops: u64,
    /// Number of duration samples backing the percentiles.
    pub sampled: u64,
    pub mean_micros: f64,
    pub p50_micros: f64,
    pub p90_micros: f64,
    pub p99_micros: f64,
    pub p999_micros: f64,
    pub max_micros: f64,
}

impl OpLatencyReport {
    pub fn from_snapshot(op: &'static str, ops: u64, h: &HistogramSnapshot) -> Self {
        let us = |n: u64| n as f64 / 1_000.0;
        Self {
            op,
            ops,
            sampled: h.count,
            mean_micros: h.mean_nanos() / 1_000.0,
            p50_micros: us(h.p50_nanos()),
            p90_micros: us(h.p90_nanos()),
            p99_micros: us(h.p99_nanos()),
            p999_micros: us(h.p999_nanos()),
            max_micros: us(h.max),
        }
    }
}

/// Backend latency for one backend op on one level, in microseconds.
#[derive(Debug, Clone)]
pub struct IoLevelLatencyReport {
    /// Level slot (0 = unattributed I/O, e.g. the WAL or transient runs).
    pub level: usize,
    /// Duration samples backing the percentiles.
    pub sampled: u64,
    pub mean_micros: f64,
    pub p50_micros: f64,
    pub p90_micros: f64,
    pub p99_micros: f64,
    pub max_micros: f64,
}

/// Latency summary for one backend op (`read_page`,
/// `read_page_sequential`, `write_page`, `sync`), aggregated across
/// levels, plus the inferred page-cache-vs-device mode split.
#[derive(Debug, Clone)]
pub struct IoLatencyReport {
    pub op: &'static str,
    /// Exact number of backend calls (every call).
    pub ops: u64,
    /// Duration samples backing the aggregate percentiles.
    pub sampled: u64,
    pub mean_micros: f64,
    pub p50_micros: f64,
    pub p90_micros: f64,
    pub p99_micros: f64,
    pub p999_micros: f64,
    pub max_micros: f64,
    /// Fraction of sampled calls in the fast (page-cache-speed) latency
    /// mode; 1.0 when the distribution is unimodal.
    pub cache_mode_ratio: f64,
    /// Fast/slow boundary in microseconds; 0 when unimodal.
    pub mode_threshold_micros: f64,
    /// Per-level rows (only levels with samples).
    pub levels: Vec<IoLevelLatencyReport>,
}

impl IoLatencyReport {
    /// Assemble one op's report from its per-level histogram snapshots
    /// (index 0 = unattributed), as returned by
    /// [`crate::IoLatency::snapshot`].
    pub fn from_level_hists(op: &'static str, ops: u64, levels: &[HistogramSnapshot]) -> Self {
        let us = |n: u64| n as f64 / 1_000.0;
        let mut merged = HistogramSnapshot::empty();
        let mut rows = Vec::new();
        for (level, h) in levels.iter().enumerate() {
            if h.count == 0 {
                continue;
            }
            merged.merge(h);
            rows.push(IoLevelLatencyReport {
                level,
                sampled: h.count,
                mean_micros: h.mean_nanos() / 1_000.0,
                p50_micros: us(h.p50_nanos()),
                p90_micros: us(h.p90_nanos()),
                p99_micros: us(h.p99_nanos()),
                max_micros: us(h.max),
            });
        }
        let split = mode_split(&merged);
        Self {
            op,
            ops,
            sampled: merged.count,
            mean_micros: merged.mean_nanos() / 1_000.0,
            p50_micros: us(merged.p50_nanos()),
            p90_micros: us(merged.p90_nanos()),
            p99_micros: us(merged.p99_nanos()),
            p999_micros: us(merged.p999_nanos()),
            max_micros: us(merged.max),
            cache_mode_ratio: split.fast_fraction,
            mode_threshold_micros: split.threshold_nanos as f64 / 1_000.0,
            levels: rows,
        }
    }
}

/// Everything measured about one tree level, next to what the model
/// allocated to it.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// 1-based level number (level 0 never appears; the unattributed slot
    /// is reported separately).
    pub level: usize,
    pub runs: usize,
    pub entries: u64,
    /// Lookup-path counters (filter probes / negatives / false positives /
    /// page reads) for runs on this level.
    pub lookups: LevelLookupSnapshot,
    /// Page-level I/O attributed to this level's runs.
    pub io: LevelIoSnapshot,
    /// Expected false positives per probe under the filters actually
    /// built: mean of the per-run theoretical FPRs.
    pub allocated_fpr: f64,
    /// Empirical false positives per probe.
    pub measured_fpr: f64,
    /// Present when `measured_fpr` left the confidence band.
    pub drift: Option<DriftFlag>,
}

/// Per-shard gauges of a sharded engine. Populated only when the store
/// runs more than one keyspace shard; a single-shard store reports an
/// empty list and its renderings are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardBreakdown {
    /// 0-based shard index.
    pub shard: usize,
    /// Point lookups routed to this shard.
    pub gets: u64,
    /// Updates (puts + deletes) routed to this shard.
    pub puts: u64,
    /// Range scans that touched this shard.
    pub ranges: u64,
    /// Entries resident in this shard's disk levels.
    pub disk_entries: u64,
    /// Bytes buffered in this shard's active memtable right now.
    pub buffer_bytes: u64,
    /// Immutable memtables queued for flush on this shard right now.
    pub immutable_queue_depth: u64,
    /// Writers currently stalled on this shard's backpressure.
    pub stalled_writers: u64,
    /// Page reads charged to this shard's disk.
    pub page_reads: u64,
    /// Page writes charged to this shard's disk.
    pub page_writes: u64,
    /// Reads absorbed by this shard's block cache (not I/Os).
    pub cache_hits: u64,
}

/// Which disk backend is serving a store's pages — the requested kind,
/// the kind actually active after the runtime fallback ladder, and the
/// device alignment the active backend discovered. Rendered as the
/// `monkey_io_backend_info` gauge and as a `backend` label on every
/// `monkey_io_*` latency row, so dashboards can tell page-cache-speed
/// buffered numbers from device-true `O_DIRECT` numbers at a glance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoBackendReport {
    /// What the options asked for (`"buffered"`, `"direct"`, `"auto"`).
    pub requested: String,
    /// What is actually running (`"buffered"`, `"direct"`,
    /// `"direct+uring"`, `"mem"`, `"custom"`).
    pub kind: String,
    /// Logical-block alignment the backend discovered for the data
    /// directory, in bytes; 0 when alignment is not a concept (buffered,
    /// in-memory).
    pub align: u64,
    /// Why a requested direct backend fell back to buffered, when it did.
    pub fallback: Option<String>,
}

/// The full report returned by `Db::telemetry_report()`.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Microseconds since the telemetry hub was created.
    pub uptime_micros: u64,
    pub ops: Vec<OpLatencyReport>,
    pub levels: Vec<LevelReport>,
    /// I/O that could not be pinned to a level (value log, transient runs).
    pub unattributed_io: LevelIoSnapshot,
    /// Backend I/O latency per op, with per-level rows and the inferred
    /// page-cache-vs-device split. Ops with no backend calls are omitted
    /// (an in-memory store reports an empty list).
    pub io: Vec<IoLatencyReport>,
    /// The model's `R`: sum of per-run filter FPRs (Monkey Eq. 3).
    pub expected_zero_result_lookup_ios: f64,
    /// The engine's empirical counterpart: filter false positives per
    /// point lookup.
    pub measured_zero_result_lookup_ios: f64,
    /// Point lookups backing the measured figure.
    pub lookups: u64,
    /// Drained event timeline, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this drain.
    pub events_dropped: u64,
    /// Gauge: immutable memtables queued for flush right now.
    pub immutable_queue_depth: u64,
    /// Gauge: writers currently blocked in a backpressure stall.
    pub stalled_writers: u64,
    /// Gauge: key-range partitions of the most recent merge (1 = that
    /// merge ran sequentially; 0 = no merge has run yet).
    pub last_merge_partitions: u64,
    /// Gauge: worker threads of the most recent merge (0 = none yet).
    pub last_merge_threads: u64,
    /// Per-shard gauges; empty on a single-shard store (whose report and
    /// renderings stay byte-identical to the pre-shard engine).
    pub shards: Vec<ShardBreakdown>,
    /// Finished trace spans (a copy of the span ring, oldest first;
    /// multi-shard reports merge-sort by start time). Empty when tracing
    /// is off.
    pub spans: Vec<Span>,
    /// Spans started since tracing began (`monkey_trace_spans_total`).
    pub spans_started: u64,
    /// Finished spans evicted from the ring before any export saw them.
    pub spans_dropped: u64,
    /// Bytes appended to the flight recorder by this process
    /// (`monkey_recorder_bytes`); 0 without a recorder.
    pub recorder_bytes: u64,
    /// The disk backend serving this store, when the engine knows it.
    /// `None` keeps every rendering byte-identical to reports produced
    /// before backend selection existed (and by callers that build
    /// reports without a disk).
    pub io_backend: Option<IoBackendReport>,
}

impl TelemetryReport {
    /// Levels currently flagged as drifted.
    pub fn drifted(&self) -> Vec<&LevelReport> {
        self.levels.iter().filter(|l| l.drift.is_some()).collect()
    }

    /// Prometheus text exposition (counters/gauges/summaries).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, s: &str| {
            out.push_str(s);
            out.push('\n');
        };

        push(
            &mut out,
            "# HELP monkey_build_info Build metadata; the value is always 1.",
        );
        push(&mut out, "# TYPE monkey_build_info gauge");
        push(
            &mut out,
            &format!("monkey_build_info{{version=\"{BUILD_VERSION}\"}} 1"),
        );

        push(
            &mut out,
            "# HELP monkey_uptime_micros Microseconds since telemetry start.",
        );
        push(&mut out, "# TYPE monkey_uptime_micros gauge");
        push(
            &mut out,
            &format!("monkey_uptime_micros {}", self.uptime_micros),
        );

        push(
            &mut out,
            "# HELP monkey_ops_total Operations executed, by kind.",
        );
        push(&mut out, "# TYPE monkey_ops_total counter");
        for op in &self.ops {
            push(
                &mut out,
                &format!("monkey_ops_total{{op=\"{}\"}} {}", op.op, op.ops),
            );
        }

        push(
            &mut out,
            "# HELP monkey_op_latency_micros Sampled operation latency quantiles in microseconds.",
        );
        push(&mut out, "# TYPE monkey_op_latency_micros summary");
        for op in &self.ops {
            for (q, v) in [
                ("0.5", op.p50_micros),
                ("0.9", op.p90_micros),
                ("0.99", op.p99_micros),
                ("0.999", op.p999_micros),
            ] {
                push(
                    &mut out,
                    &format!(
                        "monkey_op_latency_micros{{op=\"{}\",quantile=\"{}\"}} {}",
                        op.op,
                        q,
                        json_f64(v)
                    ),
                );
            }
            push(
                &mut out,
                &format!(
                    "monkey_op_latency_micros_max{{op=\"{}\"}} {}",
                    op.op,
                    json_f64(op.max_micros)
                ),
            );
            push(
                &mut out,
                &format!(
                    "monkey_op_latency_samples{{op=\"{}\"}} {}",
                    op.op, op.sampled
                ),
            );
        }

        // When the active backend is known, every io row carries it as a
        // label — buffered and O_DIRECT latencies must never be mistaken
        // for each other in a dashboard. Unknown backend → no label, and
        // the rendering is byte-identical to pre-backend-selection output.
        let be = self
            .io_backend
            .as_ref()
            .map(|b| format!(",backend=\"{}\"", b.kind))
            .unwrap_or_default();
        if !self.io.is_empty() {
            push(
                &mut out,
                "# HELP monkey_io_ops_total Backend I/O calls, by op.",
            );
            push(&mut out, "# TYPE monkey_io_ops_total counter");
            for io in &self.io {
                push(
                    &mut out,
                    &format!("monkey_io_ops_total{{op=\"{}\"{be}}} {}", io.op, io.ops),
                );
            }
            push(
                &mut out,
                "# HELP monkey_io_latency_micros Sampled backend I/O latency quantiles in \
                 microseconds, by op and level (level 0 = unattributed).",
            );
            push(&mut out, "# TYPE monkey_io_latency_micros summary");
            for io in &self.io {
                for l in &io.levels {
                    for (q, v) in [
                        ("0.5", l.p50_micros),
                        ("0.9", l.p90_micros),
                        ("0.99", l.p99_micros),
                    ] {
                        push(
                            &mut out,
                            &format!(
                                "monkey_io_latency_micros{{op=\"{}\",level=\"{}\",quantile=\"{}\"{be}}} {}",
                                io.op,
                                l.level,
                                q,
                                json_f64(v)
                            ),
                        );
                    }
                    push(
                        &mut out,
                        &format!(
                            "monkey_io_latency_micros_max{{op=\"{}\",level=\"{}\"{be}}} {}",
                            io.op,
                            l.level,
                            json_f64(l.max_micros)
                        ),
                    );
                    push(
                        &mut out,
                        &format!(
                            "monkey_io_latency_samples{{op=\"{}\",level=\"{}\"{be}}} {}",
                            io.op, l.level, l.sampled
                        ),
                    );
                }
            }
            push(
                &mut out,
                "# HELP monkey_io_cache_mode_ratio Fraction of sampled backend calls in the \
                 fast (page-cache-speed) latency mode; 1 when unimodal.",
            );
            push(&mut out, "# TYPE monkey_io_cache_mode_ratio gauge");
            for io in &self.io {
                push(
                    &mut out,
                    &format!(
                        "monkey_io_cache_mode_ratio{{op=\"{}\"{be}}} {}",
                        io.op,
                        json_f64(io.cache_mode_ratio)
                    ),
                );
            }
            push(
                &mut out,
                "# HELP monkey_io_mode_threshold_micros Inferred fast/slow latency boundary \
                 in microseconds; 0 when unimodal.",
            );
            push(&mut out, "# TYPE monkey_io_mode_threshold_micros gauge");
            for io in &self.io {
                push(
                    &mut out,
                    &format!(
                        "monkey_io_mode_threshold_micros{{op=\"{}\"{be}}} {}",
                        io.op,
                        json_f64(io.mode_threshold_micros)
                    ),
                );
            }
        }

        if let Some(b) = &self.io_backend {
            push(
                &mut out,
                "# HELP monkey_io_backend_info Active disk backend (requested vs. running \
                 kind, discovered alignment); value is always 1.",
            );
            push(&mut out, "# TYPE monkey_io_backend_info gauge");
            let fallback = b
                .fallback
                .as_ref()
                .map(|r| {
                    format!(
                        ",fallback=\"{}\"",
                        r.replace('\\', "\\\\").replace('"', "\\\"")
                    )
                })
                .unwrap_or_default();
            push(
                &mut out,
                &format!(
                    "monkey_io_backend_info{{requested=\"{}\",kind=\"{}\",align=\"{}\"{fallback}}} 1",
                    b.requested, b.kind, b.align
                ),
            );
        }

        let level_counter =
            |out: &mut String, name: &str, help: &str, f: &dyn Fn(&LevelReport) -> u64| {
                push(out, &format!("# HELP {name} {help}"));
                push(out, &format!("# TYPE {name} counter"));
                for l in &self.levels {
                    push(out, &format!("{name}{{level=\"{}\"}} {}", l.level, f(l)));
                }
            };
        level_counter(
            &mut out,
            "monkey_level_filter_probes_total",
            "Bloom filter probes against runs on this level.",
            &|l| l.lookups.filter_probes,
        );
        level_counter(
            &mut out,
            "monkey_level_filter_false_positives_total",
            "Filter passes that found no key on this level.",
            &|l| l.lookups.filter_false_positives,
        );
        level_counter(
            &mut out,
            "monkey_level_lookup_page_reads_total",
            "Data pages read by point lookups on this level.",
            &|l| l.lookups.lookup_page_reads,
        );
        level_counter(
            &mut out,
            "monkey_level_reads_total",
            "Page reads attributed to this level.",
            &|l| l.io.reads,
        );
        level_counter(
            &mut out,
            "monkey_level_writes_total",
            "Page writes attributed to this level.",
            &|l| l.io.writes,
        );
        level_counter(
            &mut out,
            "monkey_level_read_bytes_total",
            "Bytes read from this level.",
            &|l| l.io.read_bytes,
        );
        level_counter(
            &mut out,
            "monkey_level_write_bytes_total",
            "Bytes written to this level.",
            &|l| l.io.write_bytes,
        );
        level_counter(
            &mut out,
            "monkey_level_cache_hits_total",
            "Reads on this level absorbed by the block cache (not I/Os).",
            &|l| l.io.cache_hits,
        );
        level_counter(
            &mut out,
            "monkey_level_cache_hit_bytes_total",
            "Bytes served from the block cache for this level.",
            &|l| l.io.cache_hit_bytes,
        );

        push(
            &mut out,
            "# HELP monkey_level_allocated_fpr Model-allocated false positive rate.",
        );
        push(&mut out, "# TYPE monkey_level_allocated_fpr gauge");
        for l in &self.levels {
            push(
                &mut out,
                &format!(
                    "monkey_level_allocated_fpr{{level=\"{}\"}} {}",
                    l.level,
                    json_f64(l.allocated_fpr)
                ),
            );
        }
        push(
            &mut out,
            "# HELP monkey_level_measured_fpr Empirical false positive rate.",
        );
        push(&mut out, "# TYPE monkey_level_measured_fpr gauge");
        for l in &self.levels {
            push(
                &mut out,
                &format!(
                    "monkey_level_measured_fpr{{level=\"{}\"}} {}",
                    l.level,
                    json_f64(l.measured_fpr)
                ),
            );
        }
        push(
            &mut out,
            "# HELP monkey_level_fpr_drift Whether measured FPR left the confidence band (0/1).",
        );
        push(&mut out, "# TYPE monkey_level_fpr_drift gauge");
        for l in &self.levels {
            push(
                &mut out,
                &format!(
                    "monkey_level_fpr_drift{{level=\"{}\"}} {}",
                    l.level,
                    u64::from(l.drift.is_some())
                ),
            );
        }

        push(&mut out, "# HELP monkey_zero_result_lookup_ios Expected (model) vs measured I/Os per zero-result lookup.");
        push(&mut out, "# TYPE monkey_zero_result_lookup_ios gauge");
        push(
            &mut out,
            &format!(
                "monkey_zero_result_lookup_ios{{source=\"model\"}} {}",
                json_f64(self.expected_zero_result_lookup_ios)
            ),
        );
        push(
            &mut out,
            &format!(
                "monkey_zero_result_lookup_ios{{source=\"measured\"}} {}",
                json_f64(self.measured_zero_result_lookup_ios)
            ),
        );

        push(
            &mut out,
            "# HELP monkey_immutable_queue_depth Immutable memtables queued for flush (gauge).",
        );
        push(&mut out, "# TYPE monkey_immutable_queue_depth gauge");
        push(
            &mut out,
            &format!(
                "monkey_immutable_queue_depth {}",
                self.immutable_queue_depth
            ),
        );
        push(
            &mut out,
            "# HELP monkey_stalled_writers Writers currently blocked in a backpressure stall (gauge).",
        );
        push(&mut out, "# TYPE monkey_stalled_writers gauge");
        push(
            &mut out,
            &format!("monkey_stalled_writers {}", self.stalled_writers),
        );
        push(
            &mut out,
            "# HELP monkey_last_merge_partitions Key-range partitions of the most recent merge (gauge).",
        );
        push(&mut out, "# TYPE monkey_last_merge_partitions gauge");
        push(
            &mut out,
            &format!(
                "monkey_last_merge_partitions {}",
                self.last_merge_partitions
            ),
        );
        push(
            &mut out,
            "# HELP monkey_last_merge_threads Worker threads of the most recent merge (gauge).",
        );
        push(&mut out, "# TYPE monkey_last_merge_threads gauge");
        push(
            &mut out,
            &format!("monkey_last_merge_threads {}", self.last_merge_threads),
        );

        if !self.shards.is_empty() {
            let shard_series =
                |out: &mut String, name: &str, help: &str, f: &dyn Fn(&ShardBreakdown) -> u64| {
                    push(out, &format!("# HELP {name} {help}"));
                    push(out, &format!("# TYPE {name} gauge"));
                    for s in &self.shards {
                        push(out, &format!("{name}{{shard=\"{}\"}} {}", s.shard, f(s)));
                    }
                };
            shard_series(
                &mut out,
                "monkey_shard_gets_total",
                "Point lookups routed to this shard.",
                &|s| s.gets,
            );
            shard_series(
                &mut out,
                "monkey_shard_puts_total",
                "Updates routed to this shard.",
                &|s| s.puts,
            );
            shard_series(
                &mut out,
                "monkey_shard_ranges_total",
                "Range scans that touched this shard.",
                &|s| s.ranges,
            );
            shard_series(
                &mut out,
                "monkey_shard_disk_entries",
                "Entries resident in this shard's disk levels.",
                &|s| s.disk_entries,
            );
            shard_series(
                &mut out,
                "monkey_shard_buffer_bytes",
                "Bytes buffered in this shard's active memtable.",
                &|s| s.buffer_bytes,
            );
            shard_series(
                &mut out,
                "monkey_shard_immutable_queue_depth",
                "Immutable memtables queued on this shard.",
                &|s| s.immutable_queue_depth,
            );
            shard_series(
                &mut out,
                "monkey_shard_stalled_writers",
                "Writers stalled on this shard's backpressure.",
                &|s| s.stalled_writers,
            );
            shard_series(
                &mut out,
                "monkey_shard_page_reads_total",
                "Page reads charged to this shard's disk.",
                &|s| s.page_reads,
            );
            shard_series(
                &mut out,
                "monkey_shard_page_writes_total",
                "Page writes charged to this shard's disk.",
                &|s| s.page_writes,
            );
            shard_series(
                &mut out,
                "monkey_shard_cache_hits_total",
                "Reads absorbed by this shard's block cache.",
                &|s| s.cache_hits,
            );
        }

        push(
            &mut out,
            "# HELP monkey_events_dropped_total Events evicted from the ring before export.",
        );
        push(&mut out, "# TYPE monkey_events_dropped_total counter");
        push(
            &mut out,
            &format!("monkey_events_dropped_total {}", self.events_dropped),
        );
        push(
            &mut out,
            "# HELP monkey_trace_spans_total Trace spans started since tracing began.",
        );
        push(&mut out, "# TYPE monkey_trace_spans_total counter");
        push(
            &mut out,
            &format!("monkey_trace_spans_total {}", self.spans_started),
        );
        push(
            &mut out,
            "# HELP monkey_trace_spans_dropped_total Finished spans evicted from the ring before export.",
        );
        push(&mut out, "# TYPE monkey_trace_spans_dropped_total counter");
        push(
            &mut out,
            &format!("monkey_trace_spans_dropped_total {}", self.spans_dropped),
        );
        push(
            &mut out,
            "# HELP monkey_recorder_bytes Bytes appended to the flight recorder by this process.",
        );
        push(&mut out, "# TYPE monkey_recorder_bytes counter");
        push(
            &mut out,
            &format!("monkey_recorder_bytes {}", self.recorder_bytes),
        );
        out
    }

    /// Export the drained event timeline in Chrome trace-event JSON, the
    /// format Perfetto / `chrome://tracing` open directly. Flush and stall
    /// episodes become complete (`"ph":"X"`) spans — start/end pairs are
    /// matched within the drained window, the span duration taken from the
    /// end event's payload — and everything else becomes an instant event.
    ///
    /// Each shard gets its own block of thread lanes (`tid = shard*4 +
    /// lane`): lane 0 carries sampled trace spans, lane 1 flush spans,
    /// lane 2 stall spans, lane 3 instants. Shard 0's lanes are therefore
    /// tids 1–3 for events, matching the pre-sharding layout.
    pub fn to_chrome_trace(&self) -> String {
        // Lane offsets inside a shard's tid block.
        const LANE_TRACE: u64 = 0;
        const LANE_FLUSH: u64 = 1;
        const LANE_STALL: u64 = 2;
        const LANE_INSTANT: u64 = 3;
        let tid = |shard: u32, lane: u64| shard as u64 * 4 + lane;
        let span = |name: &str, tid: u64, ts: u64, dur: u64, args: String| -> String {
            JsonObject::new()
                .str("name", name)
                .str("ph", "X")
                .str("cat", "monkey")
                .u64("ts", ts)
                .u64("dur", dur)
                .u64("pid", 1)
                .u64("tid", tid)
                .raw("args", &args)
                .finish()
        };
        let instant = |e: &Event| -> String {
            let args = e
                .kind
                .fields()
                .into_iter()
                .fold(JsonObject::new(), |obj, (k, v)| {
                    if v.bytes().all(|b| b.is_ascii_digit()) && !v.is_empty() {
                        obj.raw(k, &v)
                    } else {
                        obj.str(k, &v)
                    }
                })
                .finish();
            JsonObject::new()
                .str("name", e.kind.name())
                .str("ph", "i")
                .str("cat", "monkey")
                .u64("ts", e.ts_micros)
                .u64("pid", 1)
                .u64("tid", tid(e.shard, LANE_INSTANT))
                .str("s", "p")
                .raw("args", &args)
                .finish()
        };
        let mut out: Vec<String> = Vec::with_capacity(self.events.len() + self.spans.len());
        // Pending starts not yet closed by their end event, as indices
        // into the timeline, tracked per shard (shards flush and stall
        // independently, so an end must match a start from its own
        // shard). Within a shard flushes are serialized by the engine and
        // stalls are drained in order, so a LIFO match is faithful enough
        // for a trace view.
        let mut open_flushes: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut open_stalls: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match &e.kind {
                EventKind::FlushStart { .. } => open_flushes.entry(e.shard).or_default().push(i),
                EventKind::FlushEnd { duration_micros } => {
                    let start = open_flushes
                        .get_mut(&e.shard)
                        .and_then(|v| v.pop())
                        .map(|j| &self.events[j].kind);
                    let args = match start {
                        Some(EventKind::FlushStart { entries, bytes }) => JsonObject::new()
                            .u64("entries", *entries)
                            .u64("bytes", *bytes)
                            .finish(),
                        _ => JsonObject::new().finish(),
                    };
                    let dur = *duration_micros;
                    let ts = e.ts_micros.saturating_sub(dur);
                    out.push(span("flush", tid(e.shard, LANE_FLUSH), ts, dur, args));
                }
                EventKind::StallBegin { .. } => open_stalls.entry(e.shard).or_default().push(i),
                EventKind::StallEnd { waited_micros } => {
                    let start = open_stalls
                        .get_mut(&e.shard)
                        .and_then(|v| v.pop())
                        .map(|j| &self.events[j].kind);
                    let args = match start {
                        Some(EventKind::StallBegin { queue_depth }) => {
                            JsonObject::new().u64("queue_depth", *queue_depth).finish()
                        }
                        _ => JsonObject::new().finish(),
                    };
                    let dur = *waited_micros;
                    let ts = e.ts_micros.saturating_sub(dur);
                    out.push(span("stall", tid(e.shard, LANE_STALL), ts, dur, args));
                }
                _ => out.push(instant(e)),
            }
        }
        // Starts whose end fell outside the drained window still deserve a
        // mark on the timeline.
        let mut leftovers: Vec<usize> = open_flushes
            .into_values()
            .chain(open_stalls.into_values())
            .flatten()
            .collect();
        leftovers.sort_unstable();
        for i in leftovers {
            out.push(instant(&self.events[i]));
        }
        // Sampled trace spans ride on each shard's lane 0, with causal
        // metadata (span id, parent id, links) in args.
        for s in &self.spans {
            let mut args = JsonObject::new().u64("id", s.id);
            if s.parent != 0 {
                args = args.u64("parent", s.parent);
            }
            if !s.links.is_empty() {
                args = args.raw("links", &json_array(s.links.iter().map(|l| l.to_string())));
            }
            out.push(span(
                s.kind.name(),
                tid(s.shard, LANE_TRACE),
                s.start_micros,
                s.duration_micros,
                args.finish(),
            ));
        }
        // Name the lanes so Perfetto rows read "shard N / <lane>" rather
        // than bare tids.
        let shards: std::collections::BTreeSet<u32> = self
            .events
            .iter()
            .map(|e| e.shard)
            .chain(self.spans.iter().map(|s| s.shard))
            .collect();
        for shard in shards {
            for (lane, label) in [
                (LANE_TRACE, "trace"),
                (LANE_FLUSH, "flush"),
                (LANE_STALL, "stall"),
                (LANE_INSTANT, "events"),
            ] {
                out.push(
                    JsonObject::new()
                        .str("name", "thread_name")
                        .str("ph", "M")
                        .u64("pid", 1)
                        .u64("tid", tid(shard, lane))
                        .raw(
                            "args",
                            &JsonObject::new()
                                .str("name", &format!("shard {shard} {label}"))
                                .finish(),
                        )
                        .finish(),
                );
            }
        }
        JsonObject::new()
            .raw("traceEvents", &json_array(out))
            .str("displayTimeUnit", "ms")
            .finish()
    }

    /// Compact JSON snapshot of the whole report, timeline included.
    pub fn to_json(&self) -> String {
        let ops = json_array(self.ops.iter().map(|o| {
            JsonObject::new()
                .str("op", o.op)
                .u64("ops", o.ops)
                .u64("sampled", o.sampled)
                .f64("mean_micros", o.mean_micros)
                .f64("p50_micros", o.p50_micros)
                .f64("p90_micros", o.p90_micros)
                .f64("p99_micros", o.p99_micros)
                .f64("p999_micros", o.p999_micros)
                .f64("max_micros", o.max_micros)
                .finish()
        }));
        let io_obj = |io: &LevelIoSnapshot| {
            JsonObject::new()
                .u64("reads", io.reads)
                .u64("writes", io.writes)
                .u64("read_bytes", io.read_bytes)
                .u64("write_bytes", io.write_bytes)
                .u64("cache_hits", io.cache_hits)
                .u64("cache_hit_bytes", io.cache_hit_bytes)
                .finish()
        };
        let levels = json_array(self.levels.iter().map(|l| {
            let mut obj = JsonObject::new()
                .usize("level", l.level)
                .usize("runs", l.runs)
                .u64("entries", l.entries)
                .u64("filter_probes", l.lookups.filter_probes)
                .u64("filter_negatives", l.lookups.filter_negatives)
                .u64("filter_false_positives", l.lookups.filter_false_positives)
                .u64("lookup_page_reads", l.lookups.lookup_page_reads)
                .raw("io", &io_obj(&l.io))
                .f64("allocated_fpr", l.allocated_fpr)
                .f64("measured_fpr", l.measured_fpr)
                .bool("drifted", l.drift.is_some());
            if let Some(d) = l.drift {
                obj = obj
                    .f64("drift_deviation", d.deviation)
                    .f64("drift_bound", d.bound);
            }
            obj.finish()
        }));
        let io = json_array(self.io.iter().map(|io| {
            let levels = json_array(io.levels.iter().map(|l| {
                JsonObject::new()
                    .usize("level", l.level)
                    .u64("sampled", l.sampled)
                    .f64("mean_micros", l.mean_micros)
                    .f64("p50_micros", l.p50_micros)
                    .f64("p90_micros", l.p90_micros)
                    .f64("p99_micros", l.p99_micros)
                    .f64("max_micros", l.max_micros)
                    .finish()
            }));
            JsonObject::new()
                .str("op", io.op)
                .u64("ops", io.ops)
                .u64("sampled", io.sampled)
                .f64("mean_micros", io.mean_micros)
                .f64("p50_micros", io.p50_micros)
                .f64("p90_micros", io.p90_micros)
                .f64("p99_micros", io.p99_micros)
                .f64("p999_micros", io.p999_micros)
                .f64("max_micros", io.max_micros)
                .f64("cache_mode_ratio", io.cache_mode_ratio)
                .f64("mode_threshold_micros", io.mode_threshold_micros)
                .raw("levels", &levels)
                .finish()
        }));
        let events = self.events_array();
        let mut obj = JsonObject::new()
            .u64("uptime_micros", self.uptime_micros)
            .raw("ops", &ops)
            .raw("levels", &levels)
            .raw("unattributed_io", &io_obj(&self.unattributed_io))
            .raw("io", &io)
            .f64(
                "expected_zero_result_lookup_ios",
                self.expected_zero_result_lookup_ios,
            )
            .f64(
                "measured_zero_result_lookup_ios",
                self.measured_zero_result_lookup_ios,
            )
            .u64("lookups", self.lookups)
            .raw("events", &events)
            .u64("events_dropped", self.events_dropped)
            .u64("immutable_queue_depth", self.immutable_queue_depth)
            .u64("stalled_writers", self.stalled_writers)
            .u64("last_merge_partitions", self.last_merge_partitions)
            .u64("last_merge_threads", self.last_merge_threads);
        if !self.shards.is_empty() {
            let shards = json_array(self.shards.iter().map(|s| {
                JsonObject::new()
                    .usize("shard", s.shard)
                    .u64("gets", s.gets)
                    .u64("puts", s.puts)
                    .u64("ranges", s.ranges)
                    .u64("disk_entries", s.disk_entries)
                    .u64("buffer_bytes", s.buffer_bytes)
                    .u64("immutable_queue_depth", s.immutable_queue_depth)
                    .u64("stalled_writers", s.stalled_writers)
                    .u64("page_reads", s.page_reads)
                    .u64("page_writes", s.page_writes)
                    .u64("cache_hits", s.cache_hits)
                    .finish()
            }));
            obj = obj.raw("shards", &shards);
        }
        let spans = json_array(self.spans.iter().map(|s| {
            let mut o = JsonObject::new()
                .u64("id", s.id)
                .u64("shard", s.shard as u64)
                .str("kind", s.kind.name())
                .u64("start_micros", s.start_micros)
                .u64("duration_micros", s.duration_micros);
            if s.parent != 0 {
                o = o.u64("parent", s.parent);
            }
            if !s.links.is_empty() {
                o = o.raw("links", &json_array(s.links.iter().map(|l| l.to_string())));
            }
            o.finish()
        }));
        obj = obj
            .raw("spans", &spans)
            .u64("spans_started", self.spans_started)
            .u64("spans_dropped", self.spans_dropped)
            .u64("recorder_bytes", self.recorder_bytes);
        if let Some(b) = &self.io_backend {
            let mut be = JsonObject::new()
                .str("requested", &b.requested)
                .str("kind", &b.kind)
                .u64("align", b.align);
            if let Some(r) = &b.fallback {
                be = be.str("fallback", r);
            }
            obj = obj.raw("io_backend", &be.finish());
        }
        obj.finish()
    }

    /// The drained event timeline as a JSON array literal.
    fn events_array(&self) -> String {
        json_array(self.events.iter().map(|e| {
            let fields = e
                .kind
                .fields()
                .into_iter()
                .fold(JsonObject::new(), |obj, (k, v)| {
                    // Numeric payloads stay numbers; free text is quoted.
                    if v.bytes().all(|b| b.is_ascii_digit()) && !v.is_empty() {
                        obj.raw(k, &v)
                    } else {
                        obj.str(k, &v)
                    }
                })
                .finish();
            JsonObject::new()
                .u64("seq", e.seq)
                .u64("ts_micros", e.ts_micros)
                .u64("shard", e.shard as u64)
                .str("event", e.kind.name())
                .raw("fields", &fields)
                .finish()
        }))
    }

    /// Just the event timeline, as its own JSON document — what the
    /// scrape endpoint serves at `/events.json`.
    pub fn events_json(&self) -> String {
        JsonObject::new()
            .u64("uptime_micros", self.uptime_micros)
            .raw("events", &self.events_array())
            .u64("events_dropped", self.events_dropped)
            .finish()
    }

    /// Human-readable dump used by the `monkey-stats` bin.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "monkey telemetry report — uptime {:.3}s\n\n",
            self.uptime_micros as f64 / 1e6
        ));

        out.push_str("operation latencies (sampled, microseconds):\n");
        out.push_str(&format!(
            "  {:<8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "op", "count", "mean", "p50", "p90", "p99", "p99.9", "max"
        ));
        for o in &self.ops {
            out.push_str(&format!(
                "  {:<8} {:>12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                o.op,
                o.ops,
                o.mean_micros,
                o.p50_micros,
                o.p90_micros,
                o.p99_micros,
                o.p999_micros,
                o.max_micros
            ));
        }

        out.push_str("\nper-level I/O and filter behaviour:\n");
        out.push_str(&format!(
            "  {:<4} {:>5} {:>10} {:>10} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12} {:>6}\n",
            "lvl",
            "runs",
            "entries",
            "probes",
            "fp",
            "pg_reads",
            "reads",
            "c_hits",
            "write_bytes",
            "meas_fpr",
            "alloc"
        ));
        for l in &self.levels {
            out.push_str(&format!(
                "  {:<4} {:>5} {:>10} {:>10} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12.5} {:>6.4}{}\n",
                l.level,
                l.runs,
                l.entries,
                l.lookups.filter_probes,
                l.lookups.filter_false_positives,
                l.lookups.lookup_page_reads,
                l.io.reads,
                l.io.cache_hits,
                l.io.write_bytes,
                l.measured_fpr,
                l.allocated_fpr,
                if l.drift.is_some() { "  << DRIFT" } else { "" }
            ));
        }
        if !self.unattributed_io.is_zero() {
            out.push_str(&format!(
                "  (unattributed: {} reads, {} writes, {} read bytes, {} write bytes)\n",
                self.unattributed_io.reads,
                self.unattributed_io.writes,
                self.unattributed_io.read_bytes,
                self.unattributed_io.write_bytes
            ));
        }

        if !self.io.is_empty() {
            out.push_str("\nbackend I/O latencies (sampled, microseconds):\n");
            out.push_str(&format!(
                "  {:<22} {:>4} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
                "op", "lvl", "calls", "mean", "p50", "p99", "max", "cache-mode"
            ));
            for io in &self.io {
                out.push_str(&format!(
                    "  {:<22} {:>4} {:>10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.0}%{}\n",
                    io.op,
                    "all",
                    io.ops,
                    io.mean_micros,
                    io.p50_micros,
                    io.p99_micros,
                    io.max_micros,
                    io.cache_mode_ratio * 100.0,
                    if io.mode_threshold_micros > 0.0 {
                        format!("  (split at {:.1}us)", io.mode_threshold_micros)
                    } else {
                        String::new()
                    }
                ));
                for l in &io.levels {
                    out.push_str(&format!(
                        "  {:<22} {:>4} {:>10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>10}\n",
                        "",
                        l.level,
                        l.sampled,
                        l.mean_micros,
                        l.p50_micros,
                        l.p99_micros,
                        l.max_micros,
                        ""
                    ));
                }
            }
        }

        if !self.shards.is_empty() {
            out.push_str("\nper-shard breakdown:\n");
            out.push_str(&format!(
                "  {:<6} {:>10} {:>10} {:>8} {:>12} {:>10} {:>6} {:>8} {:>10} {:>10} {:>10}\n",
                "shard",
                "gets",
                "puts",
                "ranges",
                "disk_entries",
                "buf_bytes",
                "queue",
                "stalled",
                "pg_reads",
                "pg_writes",
                "c_hits"
            ));
            for s in &self.shards {
                out.push_str(&format!(
                    "  {:<6} {:>10} {:>10} {:>8} {:>12} {:>10} {:>6} {:>8} {:>10} {:>10} {:>10}\n",
                    s.shard,
                    s.gets,
                    s.puts,
                    s.ranges,
                    s.disk_entries,
                    s.buffer_bytes,
                    s.immutable_queue_depth,
                    s.stalled_writers,
                    s.page_reads,
                    s.page_writes,
                    s.cache_hits
                ));
            }
        }

        out.push_str(&format!(
            "\npipeline gauges: {} immutable memtable(s) queued, {} writer(s) stalled\n",
            self.immutable_queue_depth, self.stalled_writers
        ));
        if self.last_merge_partitions > 0 {
            out.push_str(&format!(
                "merge engine: last merge used {} partition(s) on {} thread(s)\n",
                self.last_merge_partitions, self.last_merge_threads
            ));
        }
        if self.spans_started > 0 {
            out.push_str(&format!(
                "tracing: {} span(s) started, {} in window, {} dropped, {} recorder byte(s)\n",
                self.spans_started,
                self.spans.len(),
                self.spans_dropped,
                self.recorder_bytes
            ));
        }

        out.push_str("\nmodel vs measurement:\n");
        out.push_str(&format!(
            "  expected zero-result lookup I/Os (model R): {:.5}\n",
            self.expected_zero_result_lookup_ios
        ));
        out.push_str(&format!(
            "  measured false positives per lookup:        {:.5}  ({} lookups)\n",
            self.measured_zero_result_lookup_ios, self.lookups
        ));

        out.push_str("\nmodel drift:\n");
        let drifted = self.drifted();
        if drifted.is_empty() {
            out.push_str("  all levels within confidence bounds\n");
        } else {
            for l in drifted {
                let d = l.drift.unwrap();
                out.push_str(&format!(
                    "  level {}: measured FPR {:.5} vs allocated {:.5} — deviation {:.5} exceeds bound {:.5}\n",
                    l.level, l.measured_fpr, l.allocated_fpr, d.deviation, d.bound
                ));
            }
        }

        out.push_str(&format!(
            "\nevent timeline ({} events, {} dropped):\n",
            self.events.len(),
            self.events_dropped
        ));
        // Long runs of the same event kind (e.g. one WAL group commit per
        // put in synchronous mode) collapse to a single summary line so
        // the rare events stay visible.
        let mut i = 0;
        while i < self.events.len() {
            let e = &self.events[i];
            let mut j = i + 1;
            while j < self.events.len() && self.events[j].kind.name() == e.kind.name() {
                j += 1;
            }
            if j - i >= 4 {
                out.push_str(&format!(
                    "  +{:>12.3}ms  {:<16} ×{} (through +{:.3}ms)\n",
                    e.ts_micros as f64 / 1e3,
                    e.kind.name(),
                    j - i,
                    self.events[j - 1].ts_micros as f64 / 1e3
                ));
            } else {
                for e in &self.events[i..j] {
                    let fields = e
                        .kind
                        .fields()
                        .into_iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(" ");
                    out.push_str(&format!(
                        "  +{:>12.3}ms  {:<16} {}\n",
                        e.ts_micros as f64 / 1e3,
                        e.kind.name(),
                        fields
                    ));
                }
            }
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn sample_report() -> TelemetryReport {
        let h = {
            let hist = crate::hist::LatencyHistogram::new();
            hist.record(1_000);
            hist.record(2_000);
            hist.snapshot()
        };
        TelemetryReport {
            uptime_micros: 5_000_000,
            ops: vec![OpLatencyReport::from_snapshot("get", 64, &h)],
            levels: vec![LevelReport {
                level: 1,
                runs: 1,
                entries: 1000,
                lookups: LevelLookupSnapshot {
                    filter_probes: 1000,
                    filter_negatives: 900,
                    filter_false_positives: 100,
                    lookup_page_reads: 100,
                },
                io: LevelIoSnapshot {
                    reads: 100,
                    writes: 8,
                    read_bytes: 102_400,
                    write_bytes: 8_192,
                    cache_hits: 40,
                    cache_hit_bytes: 40_960,
                },
                allocated_fpr: 0.01,
                measured_fpr: 0.1,
                drift: drift_flag(0.1, 0.01, 1000),
            }],
            unattributed_io: LevelIoSnapshot::default(),
            io: {
                let hist = crate::hist::LatencyHistogram::new();
                for _ in 0..70 {
                    hist.record(2_048); // page-cache-speed reads
                }
                for _ in 0..30 {
                    hist.record(2_097_152); // device-speed reads
                }
                let mut levels = vec![HistogramSnapshot::empty(); 2];
                levels[1] = hist.snapshot();
                vec![IoLatencyReport::from_level_hists(
                    "read_page",
                    3200,
                    &levels,
                )]
            },
            expected_zero_result_lookup_ios: 0.01,
            measured_zero_result_lookup_ios: 0.1,
            lookups: 1000,
            events: vec![Event {
                seq: 0,
                ts_micros: 42,
                shard: 0,
                kind: EventKind::WalGroupCommit { records: 7 },
            }],
            events_dropped: 0,
            immutable_queue_depth: 2,
            stalled_writers: 1,
            last_merge_partitions: 4,
            last_merge_threads: 2,
            shards: Vec::new(),
            spans: Vec::new(),
            spans_started: 0,
            spans_dropped: 0,
            recorder_bytes: 0,
            io_backend: None,
        }
    }

    #[test]
    fn drift_flag_logic() {
        // Way off with plenty of samples: flagged.
        assert!(drift_flag(0.4, 0.01, 10_000).is_some());
        // Spot on: not flagged.
        assert!(drift_flag(0.0101, 0.01, 10_000).is_none());
        // Too few probes: never flagged.
        assert!(drift_flag(0.4, 0.01, 100).is_none());
        // Within binomial noise of a coarse allocation: not flagged.
        let f = drift_flag(0.013, 0.01, 1_000);
        assert!(f.is_none(), "{f:?}");
    }

    #[test]
    fn prometheus_contains_key_series() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("monkey_ops_total{op=\"get\"} 64"));
        assert!(text.contains("monkey_level_measured_fpr{level=\"1\"} 0.1"));
        assert!(text.contains("monkey_level_fpr_drift{level=\"1\"} 1"));
        assert!(text.contains("monkey_zero_result_lookup_ios{source=\"model\"} 0.01"));
        assert!(text.contains("# TYPE monkey_op_latency_micros summary"));
    }

    #[test]
    fn prometheus_leads_with_build_info() {
        let text = sample_report().to_prometheus();
        assert!(text.starts_with("# HELP monkey_build_info"));
        assert!(text.contains(&format!(
            "monkey_build_info{{version=\"{BUILD_VERSION}\"}} 1"
        )));
    }

    #[test]
    fn prometheus_exposes_io_latency_series() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("monkey_io_ops_total{op=\"read_page\"} 3200"));
        assert!(text
            .contains("monkey_io_latency_micros{op=\"read_page\",level=\"1\",quantile=\"0.5\"}"));
        assert!(text.contains("monkey_io_latency_samples{op=\"read_page\",level=\"1\"} 100"));
        assert!(text.contains("monkey_io_cache_mode_ratio{op=\"read_page\"} 0.7"));
        // The split threshold sits between the 2us and 2ms modes.
        let line = text
            .lines()
            .find(|l| l.starts_with("monkey_io_mode_threshold_micros"))
            .expect("threshold series present");
        let v: f64 = line.split(' ').nth(1).unwrap().parse().unwrap();
        assert!(v > 2.0 && v < 2_097.0, "threshold={v}");
        // An in-memory report (no backend calls) emits none of the series.
        let mut r = sample_report();
        r.io.clear();
        assert!(!r.to_prometheus().contains("monkey_io_"));
    }

    #[test]
    fn backend_identity_labels_io_rows_and_renders_info_gauge() {
        // Without backend info every rendering is byte-identical to the
        // pre-backend-selection output: no label, no gauge.
        let plain = sample_report().to_prometheus();
        assert!(plain.contains("monkey_io_ops_total{op=\"read_page\"}"));
        assert!(!plain.contains("monkey_io_backend_info"));
        assert!(!plain.contains("backend="));

        let mut r = sample_report();
        r.io_backend = Some(IoBackendReport {
            requested: "direct".to_string(),
            kind: "buffered".to_string(),
            align: 512,
            fallback: Some("tmpfs rejects O_DIRECT".to_string()),
        });
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE monkey_io_backend_info gauge"));
        assert!(text.contains(
            "monkey_io_backend_info{requested=\"direct\",kind=\"buffered\",align=\"512\",\
             fallback=\"tmpfs rejects O_DIRECT\"} 1"
        ));
        assert!(text.contains("monkey_io_ops_total{op=\"read_page\",backend=\"buffered\"}"));
        assert!(text.contains("monkey_io_cache_mode_ratio{op=\"read_page\",backend=\"buffered\"}"));
        let json = r.to_json();
        assert!(json.contains(
            "\"io_backend\":{\"requested\":\"direct\",\"kind\":\"buffered\",\"align\":512,\
             \"fallback\":\"tmpfs rejects O_DIRECT\"}"
        ));
        // No fallback → no fallback label or key.
        r.io_backend = Some(IoBackendReport {
            requested: "auto".to_string(),
            kind: "direct+uring".to_string(),
            align: 4096,
            fallback: None,
        });
        let text = r.to_prometheus();
        assert!(text.contains(
            "monkey_io_backend_info{requested=\"auto\",kind=\"direct+uring\",align=\"4096\"} 1"
        ));
        assert!(!r.to_json().contains("\"fallback\""));
    }

    #[test]
    fn json_and_pretty_carry_io_latency() {
        let json = sample_report().to_json();
        assert!(json.contains("\"op\":\"read_page\",\"ops\":3200,\"sampled\":100"));
        assert!(json.contains("\"cache_mode_ratio\":0.7"));
        let text = sample_report().pretty();
        assert!(text.contains("backend I/O latencies"));
        assert!(text.contains("read_page"));
        assert!(text.contains("split at"));
    }

    #[test]
    fn prometheus_exposes_pipeline_gauges() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("# TYPE monkey_immutable_queue_depth gauge"));
        assert!(text.contains("monkey_immutable_queue_depth 2"));
        assert!(text.contains("# TYPE monkey_stalled_writers gauge"));
        assert!(text.contains("monkey_stalled_writers 1"));
        assert!(text.contains("# TYPE monkey_last_merge_partitions gauge"));
        assert!(text.contains("monkey_last_merge_partitions 4"));
        assert!(text.contains("monkey_last_merge_threads 2"));
        assert!(text.contains("monkey_events_dropped_total 0"));
        assert!(text.contains("monkey_trace_spans_total 0"));
        assert!(text.contains("monkey_trace_spans_dropped_total 0"));
        assert!(text.contains("monkey_recorder_bytes 0"));
    }

    #[test]
    fn chrome_trace_pairs_spans_and_keeps_instants() {
        let mut r = sample_report();
        r.events = vec![
            Event {
                seq: 0,
                ts_micros: 100,
                shard: 0,
                kind: EventKind::FlushStart {
                    entries: 10,
                    bytes: 640,
                },
            },
            Event {
                seq: 1,
                ts_micros: 150,
                shard: 0,
                kind: EventKind::CascadeInstall {
                    merges: 1,
                    deepest_level: 2,
                },
            },
            Event {
                seq: 2,
                ts_micros: 180,
                shard: 0,
                kind: EventKind::FlushEnd {
                    duration_micros: 80,
                },
            },
            Event {
                seq: 3,
                ts_micros: 200,
                shard: 0,
                kind: EventKind::StallBegin { queue_depth: 3 },
            },
            Event {
                seq: 4,
                ts_micros: 260,
                shard: 0,
                kind: EventKind::StallEnd { waited_micros: 60 },
            },
            // A start with no matching end in this drain window.
            Event {
                seq: 5,
                ts_micros: 300,
                shard: 0,
                kind: EventKind::FlushStart {
                    entries: 5,
                    bytes: 320,
                },
            },
        ];
        let trace = r.to_chrome_trace();
        assert!(trace.starts_with('{') && trace.ends_with('}'));
        // Flush span: ts = end - dur, dur from FlushEnd, args from the start.
        assert!(trace.contains(r#""name":"flush","ph":"X","cat":"monkey","ts":100,"dur":80"#));
        assert!(trace.contains(r#""entries":10,"bytes":640"#));
        // Stall span carries the begin's queue depth.
        assert!(trace.contains(r#""name":"stall","ph":"X","cat":"monkey","ts":200,"dur":60"#));
        assert!(trace.contains(r#""queue_depth":3"#));
        // Cascade is an instant; the unmatched trailing start survives too.
        assert!(trace.contains(r#""name":"cascade_install","ph":"i""#));
        assert!(trace.contains(r#""name":"flush_start","ph":"i""#));
        assert_eq!(trace.matches(r#""ph":"X""#).count(), 2);
    }

    #[test]
    fn chrome_trace_gives_each_shard_its_own_lanes() {
        let mut r = sample_report();
        r.events = vec![
            Event {
                seq: 0,
                ts_micros: 100,
                shard: 1,
                kind: EventKind::FlushStart {
                    entries: 10,
                    bytes: 640,
                },
            },
            Event {
                seq: 1,
                ts_micros: 180,
                shard: 1,
                kind: EventKind::FlushEnd {
                    duration_micros: 80,
                },
            },
            Event {
                seq: 2,
                ts_micros: 200,
                shard: 2,
                kind: EventKind::WalGroupCommit { records: 4 },
            },
        ];
        r.spans = vec![Span {
            id: 9,
            parent: 3,
            shard: 1,
            kind: crate::trace::SpanKind::Put,
            start_micros: 120,
            duration_micros: 5,
            links: vec![7, 11],
        }];
        let trace = r.to_chrome_trace();
        // Shard 1's flush span lands on tid 1*4+1 = 5; shard 2's instant
        // on tid 2*4+3 = 11; shard 1's trace span on tid 1*4+0 = 4.
        assert!(trace.contains(
            r#""name":"flush","ph":"X","cat":"monkey","ts":100,"dur":80,"pid":1,"tid":5"#
        ));
        assert!(trace.contains(r#""tid":11"#));
        assert!(trace
            .contains(r#""name":"put","ph":"X","cat":"monkey","ts":120,"dur":5,"pid":1,"tid":4"#));
        assert!(trace.contains(r#""id":9,"parent":3,"links":[7,11]"#));
        // Lane labels name the rows.
        assert!(trace.contains(r#""name":"shard 1 flush""#));
        assert!(trace.contains(r#""name":"shard 2 events""#));
    }

    #[test]
    fn cross_shard_flush_ends_do_not_steal_other_shards_starts() {
        let mut r = sample_report();
        // Shard 1 opens a flush, shard 2 ends one (its start fell outside
        // the window): shard 2's end must not consume shard 1's start.
        r.events = vec![
            Event {
                seq: 0,
                ts_micros: 100,
                shard: 1,
                kind: EventKind::FlushStart {
                    entries: 10,
                    bytes: 640,
                },
            },
            Event {
                seq: 1,
                ts_micros: 180,
                shard: 2,
                kind: EventKind::FlushEnd {
                    duration_micros: 80,
                },
            },
        ];
        let trace = r.to_chrome_trace();
        // Shard 2's orphan end renders with empty args; shard 1's start
        // survives as an instant.
        assert!(trace.contains(
            r#""name":"flush","ph":"X","cat":"monkey","ts":100,"dur":80,"pid":1,"tid":9,"args":{}"#
        ));
        assert!(trace.contains(r#""name":"flush_start","ph":"i""#));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"expected_zero_result_lookup_ios\":0.01"));
        assert!(json.contains("\"drifted\":true"));
        assert!(json.contains("\"event\":\"wal_group_commit\""));
        assert!(json.contains("\"records\":7"));
        // Balanced braces/brackets (compact output, no strings with
        // braces in this sample).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn pretty_mentions_drift() {
        let text = sample_report().pretty();
        assert!(text.contains("DRIFT"));
        assert!(text.contains("wal_group_commit"));
        assert!(text.contains("model drift:"));
    }
}
