//! Figure 6: how Monkey assigns false positive rates across levels versus
//! the state of the art, including the deep levels whose filters cease to
//! exist as the lookup-cost budget `R` grows.
//!
//! Output: CSV `R,level,state_of_the_art_fpr,monkey_fpr,monkey_filtered`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::{baseline_fprs, optimal_fprs, Policy};

fn main() {
    let levels = 7;
    let t = 2.0;
    eprintln!("# Figure 6: FPR assignment per level, L={levels}, T={t}, leveling");
    csv_header(&[
        "R",
        "level",
        "state_of_the_art_fpr",
        "monkey_fpr",
        "monkey_filtered",
    ]);
    for r in [0.25, 0.5, 1.0, 2.5, 4.0] {
        let monkey = optimal_fprs(levels, t, Policy::Leveling, r);
        let base = baseline_fprs(levels, t, Policy::Leveling, r);
        for level in 1..=levels {
            csv_row(&[
                f(r),
                format!("{level}"),
                f(base[level - 1]),
                f(monkey[level - 1]),
                format!("{}", monkey[level - 1] < 1.0),
            ]);
        }
    }
}
