//! Figure 8: the Figure 4 design-space curves with Monkey added — Monkey
//! shifts the whole lookup/update trade-off down to the Pareto frontier
//! for every merge policy and size ratio, meeting the state of the art
//! only at the structural extremes (log / sorted array, where filters are
//! irrelevant or the tree has one level).
//!
//! Output: CSV `allocation,policy,T,update_cost_ios,lookup_cost_ios`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::design_space::{curve, ratio_sweep};
use monkey_model::{Params, Policy};

fn main() {
    let base = Params::new(
        (1u64 << 26) as f64,
        8192.0,
        32768.0,
        8.0 * 2097152.0,
        2.0,
        Policy::Leveling,
    );
    let m_filters = 10.0 * base.entries;
    let ts = ratio_sweep(base.t_lim(), 16);
    eprintln!("# Figure 8: Monkey vs state of the art across the whole design space");
    csv_header(&[
        "allocation",
        "policy",
        "T",
        "update_cost_ios",
        "lookup_cost_ios",
    ]);
    for (monkey, label) in [(false, "state-of-the-art"), (true, "monkey")] {
        for policy in [Policy::Tiering, Policy::Leveling] {
            for point in curve(&base, policy, &ts, m_filters, 1.0, monkey) {
                csv_row(&[
                    label.to_string(),
                    format!("{policy:?}"),
                    f(point.size_ratio),
                    f(point.update_cost),
                    f(point.lookup_cost),
                ]);
            }
        }
    }
}
