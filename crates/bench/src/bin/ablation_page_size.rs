//! Ablation: the disk page size (the `B` term).
//!
//! Bigger pages amortize merge writes (W ∝ 1/B) and shrink the fence
//! array, but scan more bytes per point read; the paper's model treats B
//! as an environmental constant — this shows what the engine measures as
//! it varies.
//!
//! Output: CSV
//! `page_bytes,B_entries,update_ios_per_op,lookup_ios_per_op,fence_kib`.

use monkey_bench::*;

fn main() {
    eprintln!("# Ablation: page size sweep (N=2^15 x 64B, T=2, monkey 5 b/e)");
    csv_header(&[
        "page_bytes",
        "B_entries",
        "update_ios_per_op",
        "lookup_ios_per_op",
        "fence_kib",
    ]);
    for page_bytes in [512usize, 1024, 2048, 4096, 8192] {
        let cfg = ExpConfig {
            entries: 1 << 15,
            page_bytes,
            ..ExpConfig::paper_default()
        };
        let loaded = load(&cfg, 42);
        let w = updates(&loaded, 16_384, 5);
        loaded.db.rebuild_filters().unwrap();
        loaded.db.reset_io();
        let r = zero_result_lookups(&loaded, 8_192, 7);
        let stats = loaded.db.stats();
        csv_row(&[
            format!("{page_bytes}"),
            format!("{}", page_bytes / 79), // encoded entry ≈ 79 B
            f(w.ios_per_op),
            f(r.ios_per_op),
            f(stats.fence_bits as f64 / 8.0 / 1024.0),
        ]);
    }
}
