//! Figure 11(C): zero-result lookup cost vs. the filter memory budget in
//! bits per entry.
//!
//! Expected shape: at 0 bits both systems degenerate to an unfiltered
//! LSM-tree and the curves meet; as memory grows Monkey drops much faster
//! (the paper: it matches the baseline with up to ~60% less memory); at
//! very high budgets both approach zero I/Os and nearly converge again.
//!
//! Output: CSV `bits_per_entry,allocation,ios_per_lookup,filter_bits_actual`.

use monkey_bench::*;

fn main() {
    let lookups = 8_192;
    eprintln!("# Figure 11(C): lookup cost vs bits/entry (N=2^16, T=2)");
    csv_header(&[
        "bits_per_entry",
        "allocation",
        "ios_per_lookup",
        "filter_bits_actual",
    ]);
    for bpe in [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0, 14.0] {
        let kinds = if bpe == 0.0 {
            vec![FilterKind::None]
        } else {
            vec![FilterKind::Uniform(bpe), FilterKind::Monkey(bpe)]
        };
        for filters in kinds {
            let cfg = ExpConfig::paper_default().with_filters(filters);
            let loaded = load(&cfg, 42);
            let m = zero_result_lookups(&loaded, lookups, 7);
            csv_row(&[
                f(bpe),
                filters.label(),
                f(m.ios_per_op),
                format!("{}", loaded.db.stats().filter_bits),
            ]);
        }
    }
}
