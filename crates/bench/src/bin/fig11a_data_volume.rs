//! Figure 11(A): zero-result lookup cost vs. number of entries.
//!
//! Protocol (§5): load N entries uniformly at random, then issue uniformly
//! distributed zero-result lookups; repeat for growing N. Expected shape:
//! the uniform baseline's cost grows logarithmically with N (one more unit
//! per added level) while Monkey's stays flat, so Monkey's margin grows
//! with data volume (paper: 50–80%).
//!
//! Output: CSV `entries,levels,allocation,ios_per_lookup,latency_ms_disk`.

use monkey_bench::*;

fn main() {
    let lookups = 8_192;
    eprintln!("# Figure 11(A): lookup cost vs data volume (T=2, 5 bits/entry)");
    csv_header(&[
        "entries",
        "levels",
        "allocation",
        "ios_per_lookup",
        "latency_ms_disk",
    ]);
    for exp in [12u32, 13, 14, 15, 16, 17] {
        let entries = 1u64 << exp;
        for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
            let cfg = ExpConfig {
                entries,
                ..ExpConfig::paper_default()
            }
            .with_filters(filters);
            let loaded = load(&cfg, 42);
            let m = zero_result_lookups(&loaded, lookups, 7);
            csv_row(&[
                format!("{entries}"),
                format!("{}", loaded.db.stats().depth()),
                filters.label(),
                f(m.ios_per_op),
                f(m.latency_ms_per_op),
            ]);
        }
    }
}
