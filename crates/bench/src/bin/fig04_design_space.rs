//! Figure 4: the LSM-tree design space from a write-optimized log to a
//! read-optimized sorted array.
//!
//! Sweeps the size ratio `T` from 2 to `T_lim` under both merge policies
//! (uniform state-of-the-art filters, as in the original figure) and prints
//! the lookup/update cost trade-off curve. The two extremes are annotated:
//! tiering at `T_lim` is a log, leveling at `T_lim` a sorted array.
//!
//! Output: CSV `policy,T,levels,update_cost_ios,lookup_cost_ios,extreme`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::design_space::{curve, ratio_sweep};
use monkey_model::{Params, Policy};

fn main() {
    let base = Params::new(
        (1u64 << 26) as f64,
        8192.0,
        32768.0,
        8.0 * 2097152.0,
        2.0,
        Policy::Leveling,
    );
    let m_filters = 10.0 * base.entries;
    let ts = ratio_sweep(base.t_lim(), 16);
    eprintln!(
        "# Figure 4: design space sweep, T in [2, T_lim={}]",
        base.t_lim()
    );
    csv_header(&[
        "policy",
        "T",
        "levels",
        "update_cost_ios",
        "lookup_cost_ios",
        "extreme",
    ]);
    for policy in [Policy::Tiering, Policy::Leveling] {
        for point in curve(&base, policy, &ts, m_filters, 1.0, false) {
            let shaped = base.with_tuning(point.size_ratio, policy);
            let extreme = if (point.size_ratio - base.t_lim()).abs() < 1e-6 {
                match policy {
                    Policy::Tiering => "log",
                    Policy::Leveling => "sorted-array",
                }
            } else {
                ""
            };
            csv_row(&[
                format!("{policy:?}"),
                f(point.size_ratio),
                format!("{}", shaped.levels()),
                f(point.update_cost),
                f(point.lookup_cost),
                extreme.to_string(),
            ]);
        }
    }
}
