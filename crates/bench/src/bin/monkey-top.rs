//! `monkey-top`: a live terminal dashboard over the engine's telemetry.
//!
//! ```text
//! monkey-top [--once] [--frames N] [--interval MS] [--shards N]
//!            [--entries N] [--threads N] [--budget BYTES]
//!            [--connect HOST:PORT]
//! ```
//!
//! By default it opens a sharded in-memory store with telemetry and causal
//! tracing on, drives it from background workload threads, and repaints
//! one frame per polling interval from [`Db::telemetry_report`] snapshots:
//!
//! - a totals line (ops/s, measured-vs-model zero-result lookup cost `R`),
//! - a tracing line (spans started/dropped, flight-recorder bytes),
//! - one row per shard — get/put/range rates, flush-queue depth, stalled
//!   writers, block-cache hit ratio, resident entries,
//! - the model-drift flags currently raised, and
//! - the closed-loop [`TuningAdvisor`] verdict for the measured mix.
//!
//! With `--connect HOST:PORT` it attaches to a *remote* store's embedded
//! scrape endpoint instead ([`DbOptions::obs_listen`]): each frame is one
//! `GET /report.json` + `GET /advice.json` round trip, rendered through
//! the same dashboard — no local store, no workload threads.
//!
//! `--once` renders a single frame without clearing the screen and exits —
//! the CI smoke mode. `--frames N` stops after `N` repaints (default: run
//! until interrupted).

use monkey::{Db, DbOptions, DbOptionsExt, Environment, MergePolicy, TuningAdvisor};
use monkey_bench::dashboard::{fetch_advice_line, fetch_report, render_frame, ShardPrev};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One workload thread: a seeded mixed loop of puts, maybe-missing gets,
/// and short range scans over a bounded keyspace.
fn drive(db: &Db, keyspace: u64, seed: u64, stop: &AtomicBool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let value = vec![seed as u8; 64];
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..64 {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.45 {
                let k = rng.gen_range(0..keyspace);
                db.put(format!("k{k:08}").into_bytes(), value.clone())
                    .expect("put");
            } else if roll < 0.95 {
                // Half the lookups target keys outside the keyspace, so the
                // filters (and the measured R) see zero-result traffic.
                let k = rng.gen_range(0..keyspace * 2);
                db.get(format!("k{k:08}").as_bytes()).expect("get");
            } else {
                let lo = rng.gen_range(0..keyspace);
                let lo_key = format!("k{lo:08}").into_bytes();
                let hi_key = format!("k{:08}", lo + 16).into_bytes();
                db.range(&lo_key[..], Some(&hi_key[..]))
                    .expect("range")
                    .for_each(|kv| {
                        kv.expect("range entry");
                    });
            }
        }
    }
}

/// `--connect`: poll a remote endpoint, one frame per interval.
fn remote_main(addr: &str, frames: u64, interval: Duration, once: bool) {
    let mut prev: Vec<ShardPrev> = Vec::new();
    let mut last = Instant::now();
    for frame in 1..=frames {
        std::thread::sleep(interval);
        let dt = last.elapsed().as_secs_f64();
        last = Instant::now();
        let report = match fetch_report(addr) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("monkey-top: {e}");
                std::process::exit(1);
            }
        };
        let advice_line = fetch_advice_line(addr);
        if !once {
            // Repaint in place: clear the screen, home the cursor.
            print!("\x1b[2J\x1b[H");
        }
        print!(
            "{}",
            render_frame(&report, &mut prev, dt, frame, &advice_line)
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let once = flag("--once");
    let frames: u64 = value("--frames")
        .map(|v| v.parse().expect("--frames takes a number"))
        .unwrap_or(if once { 1 } else { u64::MAX });
    let interval = Duration::from_millis(
        value("--interval")
            .map(|v| v.parse().expect("--interval takes milliseconds"))
            .unwrap_or(1000),
    );

    if let Some(addr) = value("--connect") {
        remote_main(&addr, frames, interval, once);
        return;
    }

    let shards: usize = value("--shards")
        .map(|v| v.parse().expect("--shards takes a number"))
        .unwrap_or(4);
    let keyspace: u64 = value("--entries")
        .map(|v| v.parse().expect("--entries takes a number"))
        .unwrap_or(1 << 14);
    let threads: usize = value("--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(shards.max(2));
    let budget: usize = value("--budget")
        .map(|v| v.parse().expect("--budget takes bytes"))
        .unwrap_or(1 << 20);

    let db = Db::open(
        DbOptions::in_memory()
            .shards(shards)
            .page_size(1024)
            .buffer_capacity(16 << 10)
            .size_ratio(2)
            .merge_policy(MergePolicy::Leveling)
            .monkey_filters(5.0)
            .telemetry(true)
            .tracing(true),
    )
    .expect("open");
    let advisor = TuningAdvisor::new(Environment::disk(), budget);

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = &db;
            let stop = &stop;
            scope.spawn(move || drive(db, keyspace, 0xD15C0 + t as u64, stop));
        }

        let mut prev: Vec<ShardPrev> = Vec::new();
        let mut last = Instant::now();
        for frame in 1..=frames {
            std::thread::sleep(interval);
            db.observatory_tick();
            let dt = last.elapsed().as_secs_f64();
            last = Instant::now();
            let report = db.telemetry_report().expect("telemetry is on");
            let advice_line = match advisor.advise(&db) {
                Some(a) if a.confident() => match &a.recommended {
                    Some(rec) => format!("{}  ({:.2}x)", rec.summary(), a.speedup()),
                    None => format!("current design already optimal: {}", a.current.summary()),
                },
                Some(a) => format!(
                    "gathering evidence ({}/{} classified ops, {}/{} windows)",
                    a.samples, a.min_samples, a.windows, a.min_windows,
                ),
                None => "telemetry off".to_string(),
            };
            if !once {
                // Repaint in place: clear the screen, home the cursor.
                print!("\x1b[2J\x1b[H");
            }
            print!(
                "{}",
                render_frame(&report, &mut prev, dt, frame, &advice_line)
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
}
