//! `monkey-top`: a live terminal dashboard over the engine's telemetry.
//!
//! ```text
//! monkey-top [--once] [--frames N] [--interval MS] [--shards N]
//!            [--entries N] [--threads N] [--budget BYTES]
//! ```
//!
//! Opens a sharded in-memory store with telemetry and causal tracing on,
//! drives it from background workload threads, and repaints one frame per
//! polling interval from [`Db::telemetry_report`] snapshots:
//!
//! - a totals line (ops/s, measured-vs-model zero-result lookup cost `R`),
//! - a tracing line (spans started/dropped, flight-recorder bytes),
//! - one row per shard — get/put/range rates, flush-queue depth, stalled
//!   writers, block-cache hit ratio, resident entries,
//! - the model-drift flags currently raised, and
//! - the closed-loop [`TuningAdvisor`] verdict for the measured mix.
//!
//! `--once` renders a single frame without clearing the screen and exits —
//! the CI smoke mode. `--frames N` stops after `N` repaints (default: run
//! until interrupted).

use monkey::{
    Db, DbOptions, DbOptionsExt, Environment, MergePolicy, TelemetryReport, TuningAdvisor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Per-shard cumulative counters from the previous frame, so rates can be
/// rendered as deltas over the polling interval.
#[derive(Clone, Copy, Default)]
struct ShardPrev {
    gets: u64,
    puts: u64,
    ranges: u64,
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// One workload thread: a seeded mixed loop of puts, maybe-missing gets,
/// and short range scans over a bounded keyspace.
fn drive(db: &Db, keyspace: u64, seed: u64, stop: &AtomicBool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let value = vec![seed as u8; 64];
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..64 {
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.45 {
                let k = rng.gen_range(0..keyspace);
                db.put(format!("k{k:08}").into_bytes(), value.clone())
                    .expect("put");
            } else if roll < 0.95 {
                // Half the lookups target keys outside the keyspace, so the
                // filters (and the measured R) see zero-result traffic.
                let k = rng.gen_range(0..keyspace * 2);
                db.get(format!("k{k:08}").as_bytes()).expect("get");
            } else {
                let lo = rng.gen_range(0..keyspace);
                let lo_key = format!("k{lo:08}").into_bytes();
                let hi_key = format!("k{:08}", lo + 16).into_bytes();
                db.range(&lo_key[..], Some(&hi_key[..]))
                    .expect("range")
                    .for_each(|kv| {
                        kv.expect("range entry");
                    });
            }
        }
    }
}

fn render(
    report: &TelemetryReport,
    prev: &mut Vec<ShardPrev>,
    dt_secs: f64,
    frame: u64,
    advice_line: &str,
) {
    println!(
        "monkey-top  frame {frame}  uptime {:.1}s  interval {:.1}s",
        report.uptime_micros as f64 / 1e6,
        dt_secs,
    );
    let (mut gets, mut puts, mut ranges) = (0u64, 0u64, 0u64);
    for s in &report.shards {
        gets += s.gets;
        puts += s.puts;
        ranges += s.ranges;
    }
    prev.resize(report.shards.len(), ShardPrev::default());
    let delta_ops: u64 = report
        .shards
        .iter()
        .zip(prev.iter())
        .map(|(s, p)| (s.gets + s.puts + s.ranges).saturating_sub(p.gets + p.puts + p.ranges))
        .sum();
    println!(
        "ops          {:>9.0}/s   cumulative: {gets} gets  {puts} puts  {ranges} ranges",
        delta_ops as f64 / dt_secs.max(1e-9),
    );
    println!(
        "lookup cost  R model {:.4}  measured {:.4}  ({} lookups)",
        report.expected_zero_result_lookup_ios,
        report.measured_zero_result_lookup_ios,
        report.lookups,
    );
    println!(
        "tracing      {} spans started  {} dropped  recorder {}",
        report.spans_started,
        report.spans_dropped,
        fmt_bytes(report.recorder_bytes),
    );
    println!(
        "shard      get/s      put/s    range/s  queue  stall  cache-hit     entries    buffer"
    );
    for (s, p) in report.shards.iter().zip(prev.iter_mut()) {
        let dg = s.gets.saturating_sub(p.gets) as f64 / dt_secs.max(1e-9);
        let dp = s.puts.saturating_sub(p.puts) as f64 / dt_secs.max(1e-9);
        let dr = s.ranges.saturating_sub(p.ranges) as f64 / dt_secs.max(1e-9);
        let probes = s.cache_hits + s.page_reads;
        let hit = if probes > 0 {
            format!("{:>8.1}%", s.cache_hits as f64 / probes as f64 * 100.0)
        } else {
            format!("{:>9}", "-")
        };
        println!(
            "{:>5} {:>10.0} {:>10.0} {:>10.0} {:>6} {:>6} {hit} {:>11} {:>9}",
            s.shard,
            dg,
            dp,
            dr,
            s.immutable_queue_depth,
            s.stalled_writers,
            s.disk_entries,
            fmt_bytes(s.buffer_bytes),
        );
        *p = ShardPrev {
            gets: s.gets,
            puts: s.puts,
            ranges: s.ranges,
        };
    }
    let drifted = report.drifted();
    if drifted.is_empty() {
        println!("drift        none");
    } else {
        for l in drifted {
            let d = l.drift.expect("drifted() only returns flagged levels");
            println!(
                "drift        level {}: measured FPR {:.5} vs allocated {:.5} (dev {:.5} > bound {:.5})",
                l.level, l.measured_fpr, l.allocated_fpr, d.deviation, d.bound,
            );
        }
    }
    println!("advisor      {advice_line}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let once = flag("--once");
    let frames: u64 = value("--frames")
        .map(|v| v.parse().expect("--frames takes a number"))
        .unwrap_or(if once { 1 } else { u64::MAX });
    let interval = Duration::from_millis(
        value("--interval")
            .map(|v| v.parse().expect("--interval takes milliseconds"))
            .unwrap_or(1000),
    );
    let shards: usize = value("--shards")
        .map(|v| v.parse().expect("--shards takes a number"))
        .unwrap_or(4);
    let keyspace: u64 = value("--entries")
        .map(|v| v.parse().expect("--entries takes a number"))
        .unwrap_or(1 << 14);
    let threads: usize = value("--threads")
        .map(|v| v.parse().expect("--threads takes a number"))
        .unwrap_or(shards.max(2));
    let budget: usize = value("--budget")
        .map(|v| v.parse().expect("--budget takes bytes"))
        .unwrap_or(1 << 20);

    let db = Db::open(
        DbOptions::in_memory()
            .shards(shards)
            .page_size(1024)
            .buffer_capacity(16 << 10)
            .size_ratio(2)
            .merge_policy(MergePolicy::Leveling)
            .monkey_filters(5.0)
            .telemetry(true)
            .tracing(true),
    )
    .expect("open");
    let advisor = TuningAdvisor::new(Environment::disk(), budget);

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = &db;
            let stop = &stop;
            scope.spawn(move || drive(db, keyspace, 0xD15C0 + t as u64, stop));
        }

        let mut prev: Vec<ShardPrev> = Vec::new();
        let mut last = Instant::now();
        for frame in 1..=frames {
            std::thread::sleep(interval);
            db.observatory_tick();
            let dt = last.elapsed().as_secs_f64();
            last = Instant::now();
            let report = db.telemetry_report().expect("telemetry is on");
            let advice_line = match advisor.advise(&db) {
                Some(a) if a.confident() => match &a.recommended {
                    Some(rec) => format!("{}  ({:.2}x)", rec.summary(), a.speedup()),
                    None => format!("current design already optimal: {}", a.current.summary()),
                },
                Some(a) => format!(
                    "gathering evidence ({}/{} classified ops, {}/{} windows)",
                    a.samples, a.min_samples, a.windows, a.min_windows,
                ),
                None => "telemetry off".to_string(),
            };
            if !once {
                // Repaint in place: clear the screen, home the cursor.
                print!("\x1b[2J\x1b[H");
            }
            render(&report, &mut prev, dt, frame, &advice_line);
        }
        stop.store(true, Ordering::Relaxed);
    });
}
