//! Range lookup cost (Eq. 11): `Q = s·N/B + seeks`, one seek per run.
//!
//! Not a paper figure (the paper models Q in §4.2 but does not plot it);
//! this sweep validates the equation on the live engine across selectivity
//! and merge policy — tiering pays more seeks (more runs), both pay the
//! same sequential scan volume.
//!
//! Output: CSV `policy,T,selectivity,runs,measured_pages,measured_seeks,model_q`.

use monkey::{model_params_for, MergePolicy};
use monkey_bench::*;
use monkey_model::range_lookup_cost;

fn main() {
    eprintln!("# Range lookup cost vs Eq. 11 (N=2^15 x 64B)");
    csv_header(&[
        "policy",
        "T",
        "selectivity",
        "runs",
        "measured_pages",
        "measured_seeks",
        "model_q",
    ]);
    for (policy, t) in [(MergePolicy::Leveling, 2usize), (MergePolicy::Tiering, 4)] {
        let cfg = ExpConfig {
            entries: 1 << 15,
            policy,
            size_ratio: t,
            ..ExpConfig::paper_default()
        };
        let loaded = load(&cfg, 42);
        for s in [0.001, 0.01, 0.1, 0.5] {
            loaded.db.reset_io();
            let span = ((cfg.entries as f64 * s) as u64).max(1);
            let start = (cfg.entries - span) / 2;
            let lo = loaded.keys.existing_key(start);
            let hi = loaded.keys.existing_key(start + span - 1);
            let rows = loaded.db.range(&lo, Some(&hi)).unwrap().count();
            assert!(rows as u64 >= span - 1);
            let io = loaded.db.io();
            let stats = loaded.db.stats();
            let params = model_params_for(loaded.db.options(), stats.disk_entries, cfg.entry_bytes);
            csv_row(&[
                format!("{policy:?}"),
                format!("{t}"),
                f(s),
                format!("{}", stats.runs),
                format!("{}", io.page_reads),
                format!("{}", io.seeks),
                f(range_lookup_cost(&params, s)),
            ]);
        }
    }
}
