//! Ablation: filter-allocation strategies head-to-head on the live engine
//! at identical total memory.
//!
//! * `none`            — no filters (the structural floor);
//! * `uniform`         — the state of the art;
//! * `monkey-schedule` — the paper's literal per-level closed forms
//!   (Eqs. 17/18 over the idealized full tree);
//! * `monkey`          — our generalization: the Lagrange solution over
//!   the *actual* run sizes;
//! * `adaptive`        — Appendix C's iterative algorithm over the same.
//!
//! The interesting deltas: schedule ≈ generalized when the tree is near its
//! worst-case shape, but the generalized policy never loses to uniform on
//! degenerate trees, while the schedule can (see DESIGN.md §5).
//!
//! Output: CSV `entries,allocation,ios_per_lookup,filter_bits_per_entry`.

use monkey::{Db, DbOptions, DbOptionsExt, ScheduleFilterPolicy};
use monkey_bench::*;
use monkey_workload::KeySpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn run_with(policy_name: &str, entries: u64) -> (f64, f64) {
    let base = DbOptions::in_memory()
        .page_size(1024)
        .buffer_capacity(16 << 10)
        .size_ratio(2);
    let opts = match policy_name {
        "none" => base.uniform_filters(0.0),
        "uniform" => base.uniform_filters(5.0),
        "monkey-schedule" => base.filter_policy(Arc::new(ScheduleFilterPolicy::new(5.0))),
        "monkey" => base.monkey_filters(5.0),
        "adaptive" => base.adaptive_filters(5.0),
        other => panic!("unknown {other}"),
    };
    let db = Db::open(opts).unwrap();
    let keys = KeySpace::with_entry_size(entries, 64);
    let mut rng = StdRng::seed_from_u64(42);
    for i in keys.shuffled_indices(&mut rng) {
        db.put(keys.existing_key(i), keys.value_for(i)).unwrap();
    }
    db.rebuild_filters().unwrap();
    db.reset_io();
    let lookups = 8192u64;
    for _ in 0..lookups {
        let k = keys.random_missing(&mut rng);
        assert!(db.get(&k).unwrap().is_none());
    }
    let stats = db.stats();
    (
        db.io().page_reads as f64 / lookups as f64,
        stats.bits_per_entry(),
    )
}

fn main() {
    eprintln!("# Ablation: filter allocation strategies at 5 bits/entry total");
    csv_header(&[
        "entries",
        "allocation",
        "ios_per_lookup",
        "filter_bits_per_entry",
    ]);
    for entries in [1u64 << 14, 1 << 16] {
        for name in ["none", "uniform", "monkey-schedule", "monkey", "adaptive"] {
            let (ios, bpe) = run_with(name, entries);
            csv_row(&[format!("{entries}"), name.into(), f(ios), f(bpe)]);
        }
    }
}
