//! Figure 11(F): throughput vs. the lookup/update ratio for three systems:
//!
//! * **LevelDB** — uniform filters, fixed size ratio 2;
//! * **Fixed Monkey** — Monkey's filters, same fixed structure;
//! * **Navigable Monkey** — Monkey's filters plus the Appendix D tuner
//!   choosing (merge policy, size ratio) per workload mix.
//!
//! Expected shape: Fixed Monkey above LevelDB everywhere; Navigable Monkey
//! on top with a bell-shaped advantage (extreme mixes admit more
//! specialized tunings; the paper reports >2× at the edges), adopting
//! tiering for update-heavy mixes and larger-T leveling for lookup-heavy
//! ones (its labels: T4..T2/L2..L16).
//!
//! Output: CSV `lookup_fraction,system,config,throughput_ops_per_sec`.

use monkey::MergePolicy;
use monkey_bench::*;
use monkey_model::{
    tune, Environment, MemoryAllocation, MemoryStrategy, Params, Policy, TuningConstraints,
    Workload,
};

fn main() {
    let ops = 65_536;
    let base_cfg = ExpConfig::paper_default();
    eprintln!("# Figure 11(F): throughput vs lookup/update ratio");
    csv_header(&[
        "lookup_fraction",
        "system",
        "config",
        "throughput_ops_per_sec",
    ]);

    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        // LevelDB baseline and Fixed Monkey: T=2 leveling.
        for (system, filters) in [
            ("leveldb", FilterKind::Uniform(5.0)),
            ("fixed-monkey", FilterKind::Monkey(5.0)),
        ] {
            let loaded = load(&base_cfg.with_filters(filters), 42);
            let tput = mixed_phase(&loaded, frac, ops, 7);
            csv_row(&[f(frac), system.into(), "L2".into(), f(tput)]);
        }

        // Navigable Monkey: ask the model for the best (policy, T) at this
        // mix, then run that configuration.
        let params = Params::new(
            base_cfg.entries as f64,
            (base_cfg.entry_bytes * 8) as f64,
            (base_cfg.page_bytes * 8) as f64,
            (base_cfg.buffer_bytes * 8) as f64,
            2.0,
            Policy::Leveling,
        );
        let strat = MemoryStrategy::Fixed(MemoryAllocation {
            buffer_bits: params.buffer_bits,
            filter_bits: 5.0 * params.entries,
        });
        let tuning = tune(
            &params,
            &strat,
            &Workload::lookups_vs_updates(frac),
            &Environment::disk(),
            &TuningConstraints::default(),
        );
        let policy = match tuning.policy {
            Policy::Leveling => MergePolicy::Leveling,
            Policy::Tiering => MergePolicy::Tiering,
        };
        // Cap T so the experiment stays within harness scale.
        let t = (tuning.size_ratio.round() as usize).clamp(2, 32);
        let cfg = ExpConfig {
            policy,
            size_ratio: t,
            ..base_cfg
        }
        .with_filters(FilterKind::Monkey(5.0));
        let loaded = load(&cfg, 42);
        let tput = mixed_phase(&loaded, frac, ops, 7);
        let label = format!(
            "{}{}",
            match policy {
                MergePolicy::Tiering => "T",
                MergePolicy::Leveling => "L",
            },
            t
        );
        csv_row(&[f(frac), "navigable-monkey".into(), label, f(tput)]);
    }
}
