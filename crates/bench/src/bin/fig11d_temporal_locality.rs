//! Figure 11(D): non-zero-result lookup cost vs. temporal locality
//! coefficient `c`.
//!
//! Every lookup finds its key, so it costs at least one I/O (the paper's
//! dotted "1 I/O per lookup" line); everything above that line is false
//! positives at the levels probed on the way down. Expected shape: both
//! systems are largely insensitive to `c` (even recent entries sit below
//! several levels), the baseline drifts down slightly as locality rises,
//! and Monkey is both lower (paper: up to ~30%) and flatter, because its
//! shallow-level FPRs are exponentially small.
//!
//! Output: CSV `c,allocation,ios_per_lookup,excess_over_one_io`.

use monkey_bench::*;

fn main() {
    let lookups = 8_192;
    eprintln!("# Figure 11(D): existing-key lookup cost vs temporal locality");
    csv_header(&["c", "allocation", "ios_per_lookup", "excess_over_one_io"]);
    for c in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
            let cfg = ExpConfig::paper_default().with_filters(filters);
            let loaded = load(&cfg, 42);
            let m = existing_lookups_temporal(&loaded, c, lookups, 7);
            csv_row(&[
                f(c),
                filters.label(),
                f(m.ios_per_op),
                f(m.ios_per_op - 1.0),
            ]);
        }
    }
}
