//! Extension experiment: key-value separation (WiscKey, §6) measured on
//! the live engine against the adapted cost model.
//!
//! Output: CSV
//! `mode,load_page_writes,update_writes_per_op,found_lookup_ios,model_W,model_V`.

use monkey::{model_params_for, Db, DbOptions, DbOptionsExt};
use monkey_bench::{csv_header, csv_row, f};
use monkey_model::{
    kv_separated_lookup_cost, kv_separated_update_cost, non_zero_result_lookup_cost, update_cost,
};
use monkey_workload::KeySpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const N: u64 = 1 << 13;
const ENTRY: usize = 256; // big values: separation pays

fn build(separate: bool) -> (Arc<Db>, KeySpace) {
    let opts = DbOptions::in_memory()
        .page_size(2048)
        .buffer_capacity(8 << 10)
        .size_ratio(2)
        .monkey_filters(5.0);
    let opts = if separate {
        opts.value_separation(64)
    } else {
        opts
    };
    let db = Db::open(opts).unwrap();
    let keys = KeySpace::with_entry_size(N, ENTRY);
    let mut rng = StdRng::seed_from_u64(42);
    for i in keys.shuffled_indices(&mut rng) {
        db.put(keys.existing_key(i), keys.value_for(i)).unwrap();
    }
    (db, keys)
}

fn main() {
    eprintln!("# KV separation: measured vs adapted model (N=2^13 x 256B, 2KiB pages)");
    csv_header(&[
        "mode",
        "load_page_writes",
        "update_writes_per_op",
        "found_lookup_ios",
        "model_W",
        "model_V",
    ]);
    for separate in [false, true] {
        let (db, keys) = build(separate);
        let load_writes = db.io().page_writes;

        // Update phase.
        db.reset_io();
        let mut rng = StdRng::seed_from_u64(7);
        let updates = N;
        for _ in 0..updates {
            let (i, k) = keys.random_existing(&mut rng);
            db.put(k, keys.value_for(i)).unwrap();
        }
        let w_measured = db.io().page_writes as f64 / updates as f64;

        // Found-lookup phase.
        db.rebuild_filters().unwrap();
        db.reset_io();
        let lookups = 4096u64;
        for _ in 0..lookups {
            let (_, k) = keys.random_existing(&mut rng);
            assert!(db.get(&k).unwrap().is_some());
        }
        let v_measured = db.io().page_reads as f64 / lookups as f64;

        // Model predictions.
        let stats = db.stats();
        let params = model_params_for(db.options(), N, ENTRY);
        let m_filters = stats.filter_bits as f64;
        // Key (16 B) + pointer (14 B) + header (15 B) = 45 B on a page.
        let kp_bits = 45.0 * 8.0;
        let (model_w, model_v) = if separate {
            (
                kv_separated_update_cost(&params, 1.0, kp_bits),
                kv_separated_lookup_cost(&params, m_filters, kp_bits),
            )
        } else {
            (
                update_cost(&params, 1.0),
                non_zero_result_lookup_cost(&params, m_filters),
            )
        };
        csv_row(&[
            if separate { "separated" } else { "inline" }.into(),
            format!("{load_writes}"),
            f(w_measured),
            f(v_measured),
            f(model_w),
            f(model_v),
        ]);
    }
}
