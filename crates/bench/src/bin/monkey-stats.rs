//! `monkey-stats`: populate a fresh store with telemetry on, drive a
//! mixed workload, and print the full telemetry report — latency
//! percentiles, per-level I/O attribution, measured-vs-model R, the
//! model-drift section, and the event timeline.
//!
//! ```text
//! monkey-stats [--entries N] [--in-memory] [--json | --prometheus]
//! ```
//!
//! By default the store is directory-backed (in a temp dir, removed on
//! exit) so the timeline includes WAL group commits; `--in-memory` skips
//! the filesystem. `--json` and `--prometheus` switch the output format
//! for machine consumption; the default is the human `pretty()` dump.

use monkey::{Db, DbOptions, DbOptionsExt, MergePolicy};
use monkey_workload::KeySpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let entries: u64 = args
        .iter()
        .position(|a| a == "--entries")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--entries takes a number"))
        .unwrap_or(1 << 14);

    let tmp = std::env::temp_dir().join(format!("monkey-stats-{}", std::process::id()));
    let base = if flag("--in-memory") {
        DbOptions::in_memory()
    } else {
        let _ = std::fs::remove_dir_all(&tmp);
        DbOptions::at_path(&tmp)
    };
    let db = Db::open(
        base.page_size(1024)
            .buffer_capacity(16 << 10)
            .size_ratio(2)
            .merge_policy(MergePolicy::Leveling)
            .monkey_filters(5.0)
            .telemetry(true),
    )
    .expect("open");

    // Load in random order, re-fit filters to the final shape, then a
    // query phase: zero-result gets (exercising the filters), existing
    // gets, overwrites, and a range scan.
    eprintln!("# monkey-stats: loading {entries} entries, then a mixed query phase");
    let keys = KeySpace::with_entry_size(entries, 64);
    let mut rng = StdRng::seed_from_u64(5);
    for i in keys.shuffled_indices(&mut rng) {
        db.put(keys.existing_key(i), keys.value_for(i))
            .expect("put");
    }
    db.rebuild_filters().expect("rebuild filters");
    let queries = (entries / 2).max(1_000);
    for _ in 0..queries {
        let k = keys.random_missing(&mut rng);
        assert!(db.get(&k).expect("get").is_none());
    }
    for _ in 0..queries {
        let (_, k) = keys.random_existing(&mut rng);
        assert!(db.get(&k).expect("get").is_some());
    }
    for _ in 0..queries / 4 {
        let (i, k) = keys.random_existing(&mut rng);
        db.put(k, keys.value_for(i)).expect("overwrite");
    }
    let scan_from = keys.existing_key(entries / 4);
    let _ = db.range(&scan_from, None).expect("range").take(256).count();

    let report = db.telemetry_report().expect("telemetry is on");
    if flag("--json") {
        println!("{}", report.to_json());
    } else if flag("--prometheus") {
        print!("{}", report.to_prometheus());
    } else {
        print!("{}", report.pretty());
    }

    drop(db);
    if !flag("--in-memory") {
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
