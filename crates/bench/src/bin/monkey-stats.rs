//! `monkey-stats`: populate a fresh store with telemetry on, drive a
//! mixed workload, and print the full telemetry report — latency
//! percentiles, per-level I/O attribution, measured-vs-model R, the
//! model-drift section, and the event timeline.
//!
//! ```text
//! monkey-stats [--entries N] [--shards N] [--in-memory]
//!              [--json | --prometheus]
//!              [--watch N] [--advise] [--budget BYTES] [--trace OUT.json]
//!              [--dir PATH] [--flight-recorder DIR]
//!              [--serve HOST:PORT [--serve-seconds N]]
//!              [--connect HOST:PORT]
//! ```
//!
//! By default the store is directory-backed (in a temp dir, removed on
//! exit) so the timeline includes WAL group commits; `--in-memory` skips
//! the filesystem. `--json` and `--prometheus` switch the output format
//! for machine consumption; the default is the human `pretty()` dump.
//!
//! Observatory flags:
//!
//! - `--watch N` cuts the query phase into `N` observatory windows and
//!   prints one rate line per window as it closes (ops/s, flush
//!   throughput, stall ratio, windowed write amplification).
//! - `--advise` resets the characterizer after the bulk load, measures
//!   the query phase's `(r, v, q, w)` mix, and prints the closed-loop
//!   [`TuningAdvisor`] report instead of the telemetry report — in the
//!   selected output format. `--budget BYTES` sets the memory budget the
//!   advisor allocates (default 1 MiB).
//! - `--trace OUT.json` writes the event timeline as Chrome trace-event
//!   JSON (load it at `chrome://tracing` or in Perfetto).
//!
//! Tracing flags:
//!
//! - `--dir PATH` roots the store at `PATH` and keeps it on exit (so its
//!   flight-recorder segments can be decoded afterwards). Directory-backed
//!   runs open with causal tracing on, spilling spans and events into
//!   `obs-NNNNNN.log` segments next to the WAL.
//! - `--flight-recorder DIR` skips the workload entirely: decode the
//!   recorder segments under `DIR` (and any `shard-*` subdirectories),
//!   print the recorded timeline's tail, and correlate the flush spans
//!   against the WAL segments and manifest still on disk — the post-crash
//!   forensics view.
//!
//! Observability-plane flags:
//!
//! - `--serve HOST:PORT` binds the store's embedded scrape endpoint
//!   ([`DbOptions::obs_listen`]) before the workload, wires the advisor
//!   into `/advice.json`, and after printing the report keeps the process
//!   (and the endpoint) alive — cutting observatory windows — so remote
//!   scrapers, `curl`, and `monkey-top --connect` can attach.
//!   `--serve-seconds N` bounds the serving phase (default: until
//!   interrupted).
//! - `--connect HOST:PORT` skips the local store and workload entirely:
//!   fetch the *remote* store's report and print it in the selected
//!   format (`--prometheus` relays `/metrics` verbatim; `--json` relays
//!   `/report.json`; the default re-renders the fetched report through
//!   the same `pretty()` dump a local run prints).

use monkey::{
    http_get, Db, DbOptions, DbOptionsExt, Environment, FlightRecorder, MergePolicy,
    RecorderRecord, SpanKind, TuningAdvisor,
};
use monkey_bench::dashboard::{fetch_report, window_line};
use monkey_workload::{KeySpace, Op, OpMix, TraceBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

fn run(db: &Db, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                db.put(k.clone(), v.clone()).expect("put");
            }
            Op::Delete(k) => {
                db.delete(k.clone()).expect("delete");
            }
            Op::GetMissing(k) | Op::GetExisting(k) => {
                db.get(k).expect("get");
            }
            Op::Range(lo, hi) => {
                db.range(lo, Some(hi)).expect("range").for_each(|kv| {
                    kv.expect("range entry");
                });
            }
        }
    }
}

/// Largest `wal-NNNNNN.log` id still present in `dir`, if any.
fn newest_wal_segment(dir: &Path) -> Option<u64> {
    std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.strip_prefix("wal-")?
                .strip_suffix(".log")?
                .parse()
                .ok()
        })
        .max()
}

/// Decodes the flight-recorder segments under one engine directory and
/// prints the recorded timeline against the directory's WAL/manifest
/// state. Returns false when the directory holds no recorder segments.
fn decode_one_dir(dir: &Path) -> bool {
    let flight = FlightRecorder::decode_dir(dir);
    if flight.segments == 0 {
        return false;
    }
    println!(
        "flight recorder at {}: {} segment(s), {} record(s){}",
        dir.display(),
        flight.segments,
        flight.records.len(),
        if flight.truncated {
            ", newest segment ends in a torn frame (crash tail)"
        } else {
            ""
        }
    );
    let newest_wal = newest_wal_segment(dir);
    let manifest = dir.join("MANIFEST").exists();
    println!(
        "  on-disk state: newest WAL segment {}, manifest {}",
        newest_wal.map_or("none".into(), |n| format!("wal-{n:06}.log")),
        if manifest { "present" } else { "absent" }
    );
    // Correlate: a flush span's third link is the pruned WAL seal point
    // +1 (0 = no WAL). Every recorded flush must have pruned strictly
    // below the newest segment still on disk.
    let mut flushes = 0u64;
    let mut inconsistent = 0u64;
    for r in &flight.records {
        if let RecorderRecord::Span(s) = r {
            if s.kind == SpanKind::Flush {
                flushes += 1;
                if let (Some(&seal_plus_one), Some(newest)) = (s.links.get(2), newest_wal) {
                    // `seal_plus_one > newest` ⟺ sealed segment ≥ newest:
                    // a seal at or above the live segment is impossible in
                    // a timeline the on-disk WAL agrees with.
                    if seal_plus_one > newest {
                        inconsistent += 1;
                    }
                }
            }
        }
    }
    println!(
        "  correlation: {flushes} recorded flush(es), {inconsistent} with a pruned WAL segment \
         at or above the newest on disk{}",
        if inconsistent == 0 {
            " (timeline consistent with recovered state)"
        } else {
            " — INCONSISTENT"
        }
    );
    let tail = flight.records.len().saturating_sub(32);
    if tail > 0 {
        println!("  ... {tail} older record(s) elided ...");
    }
    for r in &flight.records[tail..] {
        match r {
            RecorderRecord::Span(s) => println!(
                "  +{:>12.3}ms  span  {:<10} id={} parent={} dur={}us links={:?} [shard {}]",
                s.start_micros as f64 / 1e3,
                s.kind.name(),
                s.id,
                s.parent,
                s.duration_micros,
                s.links,
                s.shard
            ),
            RecorderRecord::Event(e) => {
                let fields = e
                    .kind
                    .fields()
                    .into_iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                println!(
                    "  +{:>12.3}ms  event {:<16} {} [shard {}]",
                    e.ts_micros as f64 / 1e3,
                    e.kind.name(),
                    fields,
                    e.shard
                );
            }
        }
    }
    true
}

/// `--flight-recorder DIR`: decode `DIR` and any `shard-*` children.
fn flight_recorder_main(dir: &Path) {
    let mut dirs: Vec<PathBuf> = vec![dir.to_path_buf()];
    if let Ok(rd) = std::fs::read_dir(dir) {
        for e in rd.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.starts_with("shard-") && e.path().is_dir() {
                dirs.push(e.path());
            }
        }
    }
    dirs.sort();
    let decoded = dirs.iter().filter(|d| decode_one_dir(d)).count();
    if decoded == 0 {
        eprintln!(
            "no flight-recorder segments (obs-NNNNNN.log) under {}",
            dir.display()
        );
        std::process::exit(1);
    }
}

/// `--connect`: print a remote store's report instead of running one.
fn connect_main(addr: &str, json: bool, prometheus: bool) {
    if prometheus {
        // Relay the exposition verbatim — byte-identical to what a
        // Prometheus scraper of the same endpoint ingests.
        match http_get(addr, "/metrics") {
            Ok((200, body)) => print!("{body}"),
            Ok((status, body)) => {
                eprintln!(
                    "monkey-stats: {addr}/metrics answered {status}: {}",
                    body.trim()
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("monkey-stats: GET {addr}/metrics: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if json {
        match http_get(addr, "/report.json") {
            Ok((200, body)) => println!("{body}"),
            Ok((status, body)) => {
                eprintln!(
                    "monkey-stats: {addr}/report.json answered {status}: {}",
                    body.trim()
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("monkey-stats: GET {addr}/report.json: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match fetch_report(addr) {
        Ok(report) => print!("{}", report.pretty()),
        Err(e) => {
            eprintln!("monkey-stats: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let entries: u64 = value("--entries")
        .map(|v| v.parse().expect("--entries takes a number"))
        .unwrap_or(1 << 14);
    let shards: usize = value("--shards")
        .map(|v| v.parse().expect("--shards takes a number"))
        .unwrap_or(1);
    let watch: usize = value("--watch")
        .map(|v| v.parse().expect("--watch takes a window count"))
        .unwrap_or(0);
    let budget: usize = value("--budget")
        .map(|v| v.parse().expect("--budget takes bytes"))
        .unwrap_or(1 << 20);
    let trace_path = value("--trace");
    let advise = flag("--advise");

    if let Some(dir) = value("--flight-recorder") {
        flight_recorder_main(Path::new(&dir));
        return;
    }
    if let Some(addr) = value("--connect") {
        connect_main(&addr, flag("--json"), flag("--prometheus"));
        return;
    }

    let serve_addr = value("--serve");
    let keep_dir = value("--dir").map(PathBuf::from);
    let tmp = keep_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("monkey-stats-{}", std::process::id()))
    });
    let in_memory = flag("--in-memory");
    let base = if in_memory {
        DbOptions::in_memory()
    } else {
        let _ = std::fs::remove_dir_all(&tmp);
        // Directory-backed demo runs trace causally too, so the store
        // leaves decodable flight-recorder segments behind (see --dir).
        DbOptions::at_path(&tmp).tracing(true)
    };
    let mut opts = base
        .page_size(1024)
        .buffer_capacity(16 << 10)
        .size_ratio(2)
        .merge_policy(MergePolicy::Leveling)
        .monkey_filters(5.0)
        .telemetry(true)
        .shards(shards);
    if let Some(addr) = &serve_addr {
        opts = opts.obs_listen(addr.clone());
    }
    let db = Db::open(opts).expect("open");
    // With the endpoint up, wire the advisor so `/advice.json` serves the
    // closed-loop verdict, not just the measured mix.
    if serve_addr.is_some() {
        TuningAdvisor::new(Environment::disk(), budget).serve_on(&db);
    }

    // Load in random order, re-fit filters to the final shape, then a
    // query phase: zero-result gets (exercising the filters), existing
    // gets, overwrites, and short range scans.
    eprintln!("# monkey-stats: loading {entries} entries, then a mixed query phase");
    let builder = TraceBuilder::new(KeySpace::with_entry_size(entries, 64));
    let mut rng = StdRng::seed_from_u64(5);
    run(&db, &builder.load_phase(&mut rng));
    db.rebuild_filters().expect("rebuild filters");
    if advise {
        // Measure the query phase only: advising on the bulk load would
        // just tell the operator to optimize for blind writes.
        db.telemetry().expect("telemetry is on").reset();
    }

    let mix = OpMix::new(0.40, 0.40, 0.01, 0.19).with_selectivity(0.002);
    let queries = builder.query_phase(&mix, (entries as usize * 2).max(4_000), &mut rng);
    if watch > 0 {
        db.observatory_tick(); // baseline
        for (n, chunk) in queries.chunks(queries.len().div_ceil(watch)).enumerate() {
            run(&db, chunk);
            if let Some(w) = db.observatory_tick() {
                eprintln!("{}", window_line(n + 1, &w));
            }
        }
    } else {
        run(&db, &queries);
        if advise {
            // No windows were cut by --watch; cut enough deterministic
            // ones for the advisor's evidence gate.
            for _ in 0..5 {
                db.observatory_tick();
            }
        }
    }

    let report = db.telemetry_report().expect("telemetry is on");
    if let Some(path) = &trace_path {
        std::fs::write(path, report.to_chrome_trace()).expect("write trace");
        eprintln!("# wrote Chrome trace-event JSON to {path}");
    }

    if advise {
        let advisor = TuningAdvisor::new(Environment::disk(), budget);
        let advice = advisor.advise(&db).expect("telemetry is on");
        if flag("--json") {
            println!("{}", advice.to_json());
        } else if flag("--prometheus") {
            print!("{}", advice.to_prometheus());
        } else {
            print!("{}", advice.pretty());
        }
    } else if flag("--json") {
        println!("{}", report.to_json());
    } else if flag("--prometheus") {
        print!("{}", report.to_prometheus());
    } else {
        print!("{}", report.pretty());
    }

    if serve_addr.is_some() {
        let addr = db.obs_addr().expect("endpoint bound");
        let secs: u64 = value("--serve-seconds")
            .map(|v| v.parse().expect("--serve-seconds takes seconds"))
            .unwrap_or(u64::MAX);
        eprintln!(
            "# serving /metrics /report.json /advice.json /spans.json /events.json /healthz \
             at http://{addr}/ (attach with monkey-top --connect {addr})"
        );
        // Park, keeping the endpoint alive and the observatory windows
        // ticking so remote scrapers see fresh rates.
        let started = std::time::Instant::now();
        while started.elapsed().as_secs() < secs {
            std::thread::sleep(std::time::Duration::from_millis(250));
            db.observatory_tick();
        }
    }

    drop(db);
    if !in_memory {
        if keep_dir.is_some() {
            eprintln!(
                "# store kept at {} (decode with --flight-recorder)",
                tmp.display()
            );
        } else {
            let _ = std::fs::remove_dir_all(&tmp);
        }
    }
}
