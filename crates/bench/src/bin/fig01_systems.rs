//! Figure 1: default configurations of production key-value stores on the
//! (update cost, lookup cost) plane, versus Monkey on the Pareto curve.
//!
//! Model-based, using the systems' documented defaults (§1/§6): leveling
//! T=10 @ 10 bits/entry for LevelDB/RocksDB/cLSM/bLSM, leveling T=15 @ 16
//! for WiredTiger, tiering T=4 @ 10 for Cassandra/HBase. Monkey shares
//! LevelDB's structure but allocates its filter memory optimally.
//!
//! Output: CSV `system,policy,T,bits_per_entry,update_cost_ios,lookup_cost_ios`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::design_space::{preset_point, presets};
use monkey_model::{Params, Policy};

fn main() {
    // Environment: 2^30 entries of 1 KiB (1 TB of data), 4 KiB pages,
    // 2 MiB buffer — a production-scale shape for the model.
    let base = Params::new(
        (1u64 << 30) as f64,
        8192.0,
        32768.0,
        8.0 * 2097152.0,
        10.0,
        Policy::Leveling,
    );
    eprintln!("# Figure 1: systems on the lookup/update cost plane");
    eprintln!("# N=2^30, E=1KiB, page=4KiB, buffer=2MiB, phi=1");
    csv_header(&[
        "system",
        "policy",
        "T",
        "bits_per_entry",
        "update_cost_ios",
        "lookup_cost_ios",
    ]);
    for preset in presets() {
        let point = preset_point(&base, &preset, 1.0);
        csv_row(&[
            preset.name.to_string(),
            format!("{:?}", preset.policy),
            format!("{}", preset.size_ratio),
            format!("{}", preset.bits_per_entry),
            f(point.update_cost),
            f(point.lookup_cost),
        ]);
    }
}
