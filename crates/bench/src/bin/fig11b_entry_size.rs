//! Figure 11(B): zero-result lookup cost vs. entry size, at a fixed number
//! of entries.
//!
//! Growing entries deepen the tree (more levels for the same buffer), which
//! costs the uniform baseline one unit of lookup cost per level while
//! Monkey's cost stays flat — same mechanism as Figure 11(A), driven by `E`
//! instead of `N`.
//!
//! Output: CSV `entry_bytes,levels,allocation,ios_per_lookup,latency_ms_disk`.

use monkey_bench::*;

fn main() {
    let lookups = 8_192;
    eprintln!("# Figure 11(B): lookup cost vs entry size (N=2^14, T=2, 5 bits/entry)");
    csv_header(&[
        "entry_bytes",
        "levels",
        "allocation",
        "ios_per_lookup",
        "latency_ms_disk",
    ]);
    for entry_bytes in [32usize, 64, 128, 256, 512] {
        for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
            let cfg = ExpConfig {
                entries: 1 << 14,
                entry_bytes,
                page_bytes: 4096.max(entry_bytes * 4),
                ..ExpConfig::paper_default()
            }
            .with_filters(filters);
            let loaded = load(&cfg, 42);
            let m = zero_result_lookups(&loaded, lookups, 7);
            csv_row(&[
                format!("{entry_bytes}"),
                format!("{}", loaded.db.stats().depth()),
                filters.label(),
                f(m.ios_per_op),
                f(m.latency_ms_per_op),
            ]);
        }
    }
}
