//! Figure 11(E): the measured lookup/update trade-off across merge
//! policies and size ratios — Monkey shifts the whole curve down to the
//! Pareto frontier.
//!
//! For each (policy, T) configuration we load the store, measure the
//! amortized update cost of a fresh write batch, then the zero-result
//! lookup cost. Expected shape: for every configuration Monkey's lookup
//! cost is below the baseline's at identical update cost, and the
//! (tiering, larger T) end trades lookup cost for cheaper updates.
//!
//! Output: CSV `config,allocation,update_ios_per_op,lookup_ios_per_op`.

use monkey::MergePolicy;
use monkey_bench::*;

fn main() {
    let lookups = 8_192;
    let update_batch = 16_384;
    eprintln!(
        "# Figure 11(E): measured Pareto curve (labels as in the paper: T=tiering, L=leveling)"
    );
    csv_header(&[
        "config",
        "allocation",
        "update_ios_per_op",
        "lookup_ios_per_op",
    ]);
    let points = [
        (MergePolicy::Tiering, 8usize),
        (MergePolicy::Tiering, 4),
        (MergePolicy::Tiering, 3),
        (MergePolicy::Leveling, 2), // T=2: tiering == leveling
        (MergePolicy::Leveling, 3),
        (MergePolicy::Leveling, 4),
        (MergePolicy::Leveling, 8),
    ];
    for (policy, t) in points {
        let label = format!(
            "{}{}",
            match policy {
                MergePolicy::Tiering => "T",
                MergePolicy::Leveling => "L",
            },
            t
        );
        for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
            let cfg = ExpConfig {
                policy,
                size_ratio: t,
                ..ExpConfig::paper_default()
            }
            .with_filters(filters);
            let loaded = load(&cfg, 42);
            let w = updates(&loaded, update_batch, 5);
            // Re-fit filters after the update batch reshaped the tree.
            loaded.db.rebuild_filters().expect("rebuild");
            loaded.db.reset_io();
            let r = zero_result_lookups(&loaded, lookups, 7);
            csv_row(&[
                label.clone(),
                filters.label(),
                f(w.ios_per_op),
                f(r.ios_per_op),
            ]);
        }
    }
}
