//! Ablation: the Bloom filter's hash count versus Eq. 2's optimum
//! `k = (bits/entries)·ln 2`.
//!
//! The whole analytical edifice of the paper assumes optimally-hashed
//! filters; this ablation shows how much a mis-tuned k costs in measured
//! false positive rate at a fixed memory budget.
//!
//! Output: CSV `bits_per_entry,k,optimal_k,measured_fpr,eq2_fpr`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_bloom::{math, BloomFilterBuilder};

fn main() {
    let n = 50_000u64;
    let probes = 200_000u64;
    eprintln!("# Ablation: hash count k vs Eq. 2 optimum (N={n}, {probes} probes)");
    csv_header(&[
        "bits_per_entry",
        "k",
        "optimal_k",
        "measured_fpr",
        "eq2_fpr",
    ]);
    for bpe in [5.0, 10.0] {
        let k_opt = math::optimal_hash_count(bpe);
        let eq2 = math::false_positive_rate(bpe, 1.0);
        for k in 1..=(k_opt + 4) {
            let mut filter = BloomFilterBuilder::new(n)
                .bits_per_entry(bpe)
                .hash_count(k)
                .build();
            for i in 0..n {
                filter.insert(format!("present-{i}").as_bytes());
            }
            let fp = (0..probes)
                .filter(|i| filter.contains(format!("absent-{i}").as_bytes()))
                .count();
            csv_row(&[
                f(bpe),
                format!("{k}"),
                format!("{k_opt}"),
                f(fp as f64 / probes as f64),
                f(eq2),
            ]);
        }
    }
}
