//! Appendix C: the iterative filter autotuner (Algorithms 1–3) versus the
//! closed-form optimum, including layouts the closed form cannot handle
//! (variable entry sizes → non-geometric run sizes).
//!
//! Output: CSV `layout,m_bits_per_entry,iterative_R,analytic_R` (analytic
//! blank for non-geometric layouts), plus the engine-level comparison of
//! the `adaptive` filter policy against `monkey`.

use monkey_bench::*;
use monkey_model::autotune::{autotune_filters, RunSpec};
use monkey_model::{zero_result_lookup_cost, Params, Policy};

fn main() {
    eprintln!("# Appendix C: iterative vs analytic filter allocation");
    csv_header(&["layout", "m_bits_per_entry", "iterative_R", "analytic_R"]);

    // Geometric layout: the analytic optimum applies; the iterative
    // algorithm must match it.
    let p = Params::new(
        1048576.0,
        8192.0,
        32768.0,
        8.0 * 131072.0,
        4.0,
        Policy::Leveling,
    );
    let l = p.levels();
    for bpe in [1.0, 2.0, 5.0, 10.0] {
        let m = bpe * p.entries;
        let mut runs: Vec<RunSpec> = (1..=l)
            .map(|i| RunSpec::new(p.entries_at_level(i)))
            .collect();
        let iterative = autotune_filters(m, &mut runs);
        let analytic = zero_result_lookup_cost(&p, m);
        csv_row(&["geometric".into(), f(bpe), f(iterative), f(analytic)]);
    }

    // Variable-entry-size layout: runs whose sizes follow no schedule.
    let sizes = [500.0, 123_456.0, 7_890.0, 1_000_000.0, 42.0, 65_000.0];
    let n: f64 = sizes.iter().sum();
    for bpe in [1.0, 2.0, 5.0, 10.0] {
        let mut runs: Vec<RunSpec> = sizes.iter().map(|&s| RunSpec::new(s)).collect();
        let iterative = autotune_filters(bpe * n, &mut runs);
        csv_row(&["variable".into(), f(bpe), f(iterative), String::new()]);
    }

    // Engine-level: the adaptive policy vs the analytic Monkey policy on
    // the same live store.
    eprintln!("# engine: adaptive vs monkey policy, measured I/Os per zero-result lookup");
    csv_header(&["allocation", "ios_per_lookup"]);
    for filters in [FilterKind::Monkey(5.0), FilterKind::Adaptive(5.0)] {
        let cfg = ExpConfig::paper_default().with_filters(filters);
        let loaded = load(&cfg, 42);
        let m = zero_result_lookups(&loaded, 8_192, 7);
        csv_row(&[filters.label(), f(m.ios_per_op)]);
    }
}
