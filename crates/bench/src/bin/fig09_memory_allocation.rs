//! Figure 9: lookup cost `R` and update cost `W` as the buffer/filter
//! split of a fixed memory budget `M` sweeps from one page of buffer to
//! all-buffer (filters cease to exist).
//!
//! The expected shape: the state-of-the-art lookup curve *falls* over a
//! long stretch as buffer grows at the expense of filters (its filters
//! harm it!), while Monkey's lookup cost is flat until the filters are
//! squeezed below M_threshold/T^L; update cost falls logarithmically with
//! buffer size for both — the "sweet spot" sits right before the lookup
//! knee.
//!
//! Output: CSV `buffer_fraction,buffer_mb,filters_bpe,monkey_R,baseline_R,W`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::{
    baseline_zero_result_lookup_cost, update_cost, zero_result_lookup_cost, Params, Policy,
};

fn main() {
    // N = 2^26 1 KiB entries; M = buffer + filters = 16 bits/entry total.
    let entries = (1u64 << 26) as f64;
    let page_bits = 32768.0;
    let m_total = 16.0 * entries;
    eprintln!("# Figure 9: R and W vs buffer/filter memory split, T=4, leveling");
    csv_header(&[
        "buffer_fraction",
        "buffer_mb",
        "filters_bpe",
        "monkey_R",
        "baseline_R",
        "W",
    ]);
    let steps = 25;
    for k in 0..=steps {
        // Geometric sweep of the buffer share from one page to all of M.
        let frac = (page_bits / m_total) * (m_total / page_bits).powf(k as f64 / steps as f64);
        let buffer_bits = m_total * frac;
        let filter_bits = m_total - buffer_bits;
        let p = Params::new(
            entries,
            8192.0,
            page_bits,
            buffer_bits,
            4.0,
            Policy::Leveling,
        );
        csv_row(&[
            f(frac),
            f(buffer_bits / 8.0 / 1e6),
            f(filter_bits / entries),
            f(zero_result_lookup_cost(&p, filter_bits)),
            f(baseline_zero_result_lookup_cost(&p, filter_bits)),
            f(update_cost(&p, 1.0)),
        ]);
    }
}
