//! Extension experiment: Zipfian-skewed lookups (YCSB's access pattern)
//! under block caches — the natural companion to the paper's Figure 12,
//! which skews by recency; real workloads skew by popularity.
//!
//! Expected shape: the cache absorbs the hot head (hit ratio grows with
//! skew), Monkey's advantage persists on the cold tail, and the two
//! allocations converge only when the cache covers nearly every access.
//!
//! Output: CSV `cache_pct,theta,allocation,ios_per_lookup,cache_hit_ratio`.

use monkey_bench::*;
use monkey_storage::DeviceModel;
use monkey_workload::ZipfianSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let lookups = 8_192u64;
    eprintln!("# Zipfian lookups x block cache (N=2^16 x 64B, 5 b/e)");
    csv_header(&[
        "cache_pct",
        "theta",
        "allocation",
        "ios_per_lookup",
        "cache_hit_ratio",
    ]);
    for cache_pct in [0usize, 20, 40] {
        for theta in [0.5, 0.8, 0.99] {
            for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
                let base = ExpConfig::paper_default();
                let data_bytes = base.entries as usize * base.entry_bytes;
                let cfg = ExpConfig {
                    cache_bytes: data_bytes * cache_pct / 100,
                    ..base
                }
                .with_filters(filters);
                let loaded = load(&cfg, 42);
                let zipf = ZipfianSampler::new(cfg.entries, theta);
                let mut rng = StdRng::seed_from_u64(7);
                // Warm-up with the same pattern, then measure.
                for phase in 0..2 {
                    if phase == 1 {
                        loaded.db.reset_io();
                    }
                    for _ in 0..lookups {
                        let rank = zipf.sample(&mut rng);
                        // Popularity rank -> key (stable mapping).
                        let key = loaded.keys.existing_key(rank);
                        assert!(loaded.db.get(&key).unwrap().is_some());
                    }
                }
                let io = loaded.db.io();
                let m = Measurement {
                    ops: lookups,
                    io,
                    ios_per_op: io.page_reads as f64 / lookups as f64,
                    latency_ms_per_op: DeviceModel::disk().latency_secs(&io) * 1e3 / lookups as f64,
                };
                let hit = loaded
                    .db
                    .disk()
                    .cache_stats()
                    .map(|s| s.hit_ratio())
                    .unwrap_or(0.0);
                csv_row(&[
                    format!("{cache_pct}"),
                    f(theta),
                    filters.label(),
                    f(m.ios_per_op),
                    f(hit),
                ]);
            }
        }
    }
}
