//! Figure 12 (Appendix F): Monkey with a block cache of 0 / 20 / 40 % of
//! the data volume, across temporal localities.
//!
//! Protocol: enable the block cache, warm it with the same
//! temporal-locality workload, then measure. Expected shape: Monkey keeps
//! its advantage at low/medium locality; as lookups concentrate on very
//! recently touched keys both systems converge because the cache absorbs
//! the I/Os — but not entirely (it caches pages, not entries).
//!
//! Output: CSV `cache_pct,c,allocation,ios_per_lookup,cache_hit_ratio`.

use monkey_bench::*;

fn main() {
    let lookups = 8_192;
    eprintln!("# Figure 12: block cache x temporal locality");
    csv_header(&[
        "cache_pct",
        "c",
        "allocation",
        "ios_per_lookup",
        "cache_hit_ratio",
    ]);
    for cache_pct in [0usize, 20, 40] {
        for c in [0.1, 0.3, 0.5, 0.7, 0.9] {
            for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
                let base = ExpConfig::paper_default();
                let data_bytes = base.entries as usize * base.entry_bytes;
                let cfg = ExpConfig {
                    cache_bytes: data_bytes * cache_pct / 100,
                    ..base
                }
                .with_filters(filters);
                let loaded = load(&cfg, 42);
                // Warm-up phase: fill the cache with the measurement's own
                // access pattern (paper: "when the cache is warm, we
                // continue issuing the same workload and measure").
                let _ = existing_lookups_temporal(&loaded, c, lookups, 6);
                loaded.db.reset_io();
                let m = existing_lookups_temporal(&loaded, c, lookups, 7);
                let hit_ratio = loaded
                    .db
                    .disk()
                    .cache_stats()
                    .map(|s| s.hit_ratio())
                    .unwrap_or(0.0);
                csv_row(&[
                    format!("{cache_pct}"),
                    f(c),
                    filters.label(),
                    f(m.ios_per_op),
                    f(hit_ratio),
                ]);
            }
        }
    }
}
