//! Table 1: asymptotic behaviour, checked numerically.
//!
//! The table's claims, verified as scaling series:
//!
//! 1. With `M_filters/N` fixed (> threshold), Monkey's lookup cost is flat
//!    in `N` while the state of the art grows by a constant per `N×T`
//!    (i.e. logarithmically) — rows 2/3, columns (c) vs (e).
//! 2. Monkey's lookup cost is independent of the buffer size; the
//!    baseline's is not (the `M_buffer` term disappears from column (e)).
//! 3. At `T = T_lim` both collapse into a log (tiering) or sorted array
//!    (leveling) — rows 1/4.
//! 4. Below `M_threshold`, Monkey's cost grows like the unfiltered-level
//!    count — columns (b)/(d).
//!
//! Output: CSV `series,x,monkey_R,baseline_R,levels`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::{
    baseline_zero_result_lookup_cost, m_threshold, update_cost, zero_result_lookup_cost, Params,
    Policy,
};

fn params(n: f64, buffer_bits: f64, t: f64) -> Params {
    Params::new(n, 8192.0, 32768.0, buffer_bits, t, Policy::Leveling)
}

fn main() {
    csv_header(&["series", "x", "monkey_R", "baseline_R", "levels"]);

    // Claim 1: scale N at fixed bits/entry = 5 (> 1.44 threshold).
    eprintln!("# claim 1: R vs N at fixed 5 bits/entry (monkey flat, baseline log)");
    for exp in [20u32, 22, 24, 26, 28, 30, 32] {
        let n = 2f64.powi(exp as i32);
        let p = params(n, 8.0 * 2097152.0, 2.0);
        csv_row(&[
            "scale-N".into(),
            format!("2^{exp}"),
            f(zero_result_lookup_cost(&p, 5.0 * n)),
            f(baseline_zero_result_lookup_cost(&p, 5.0 * n)),
            format!("{}", p.levels()),
        ]);
    }

    // Claim 2: scale the buffer at fixed N and filter memory.
    eprintln!("# claim 2: R vs buffer size (monkey flat, baseline falls with L)");
    let n = 2f64.powi(26);
    for mb in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let p = params(n, mb * 8e6, 2.0);
        csv_row(&[
            "scale-buffer".into(),
            format!("{mb}MB"),
            f(zero_result_lookup_cost(&p, 5.0 * n)),
            f(baseline_zero_result_lookup_cost(&p, 5.0 * n)),
            format!("{}", p.levels()),
        ]);
    }

    // Claim 3: T -> T_lim degenerates to one level for both.
    eprintln!("# claim 3: T=T_lim collapse (rows 1 and 4 of Table 1)");
    let p = params(n, 8.0 * 2097152.0, 2.0);
    let tlim = p.t_lim();
    for policy in [Policy::Leveling, Policy::Tiering] {
        let collapsed = Params { policy, ..p }.with_tuning(tlim, policy);
        csv_row(&[
            format!("t-lim-{policy:?}"),
            f(tlim),
            f(zero_result_lookup_cost(&collapsed, 5.0 * n)),
            f(baseline_zero_result_lookup_cost(&collapsed, 5.0 * n)),
            format!("{}", collapsed.levels()),
        ]);
        eprintln!(
            "#   {policy:?} at T_lim: W = {:.6} I/Os ({} expected)",
            update_cost(&collapsed, 1.0),
            match policy {
                Policy::Tiering => "O(1/B), log",
                Policy::Leveling => "O(N*E/(B*M_buffer)), sorted array",
            }
        );
    }

    // Claim 4: below the threshold, unfiltered levels dominate.
    eprintln!(
        "# claim 4: R vs bits/entry below threshold ({:.3} b/e at T=2)",
        m_threshold(1.0, 2.0)
    );
    let p = params(n, 8.0 * 2097152.0, 2.0);
    for bpe in [0.0, 0.2, 0.5, 0.8, 1.0, 1.2, 1.44, 2.0, 5.0] {
        csv_row(&[
            "scale-bpe".into(),
            f(bpe),
            f(zero_result_lookup_cost(&p, bpe * n)),
            f(baseline_zero_result_lookup_cost(&p, bpe * n)),
            format!("{}", p.levels()),
        ]);
    }
}
