//! Figure 10: the divide-and-conquer tuner's probe sequence as it
//! linearizes the (merge policy × size ratio) space and homes in on the
//! throughput-maximizing point.
//!
//! Output: CSV `workload_lookup_frac,step,i,policy,T,theta,accepted`,
//! followed by the final choice per workload, and a comparison against the
//! exhaustive argmin (they must agree).

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::tuner::tune_traced;
use monkey_model::{
    tune_exhaustive, Environment, MemoryAllocation, MemoryStrategy, Params, Policy,
    TuningConstraints, Workload,
};

fn main() {
    let base = Params::new(1048576.0, 8192.0, 32768.0, 8388608.0, 2.0, Policy::Leveling);
    let strat = MemoryStrategy::Fixed(MemoryAllocation {
        buffer_bits: base.buffer_bits,
        filter_bits: 5.0 * base.entries,
    });
    let env = Environment::disk();
    eprintln!("# Figure 10: tuner probe trace (paper Fig 11F configuration)");
    csv_header(&[
        "workload_lookup_frac",
        "step",
        "i",
        "policy",
        "T",
        "theta",
        "accepted",
    ]);
    for frac in [0.1, 0.5, 0.9] {
        let wl = Workload::lookups_vs_updates(frac);
        let mut trace = Vec::new();
        let best = tune_traced(
            &base,
            &strat,
            &wl,
            &env,
            &TuningConstraints::default(),
            Some(&mut trace),
        );
        for (step, probe) in trace.iter().enumerate() {
            csv_row(&[
                f(frac),
                format!("{step}"),
                format!("{}", probe.i),
                format!("{:?}", probe.policy),
                f(probe.size_ratio),
                f(probe.theta),
                format!("{}", probe.accepted),
            ]);
        }
        let exhaustive = tune_exhaustive(&base, &strat, &wl, &env, &TuningConstraints::default());
        eprintln!(
            "# frac={frac}: tuner -> {:?} T={} theta={:.5} ({} probes); exhaustive -> {:?} T={} theta={:.5}",
            best.policy,
            best.size_ratio,
            best.theta,
            trace.len(),
            exhaustive.policy,
            exhaustive.size_ratio,
            exhaustive.theta,
        );
    }
}
