//! Figure 7: zero-result lookup cost `R` versus filter memory, Monkey vs.
//! the state of the art, at the paper's own configuration: 512 TB of data
//! (N = 2³⁵ entries of 16 bytes), size ratio T = 4, buffer 2 MiB, filter
//! memory swept from 0 to 35 GB.
//!
//! The expected shape: the curves meet at M_filters = 0 (both degenerate to
//! an unfiltered LSM-tree at R = L·X), Monkey's curve drops below the
//! baseline everywhere else, and past M_threshold the baseline still decays
//! like L·e^(−M/N·ln2²) while Monkey's plateau constant is T^(T/(T−1))/(T−1).
//!
//! Output: CSV `policy,m_filters_gb,bits_per_entry,monkey_R,baseline_R,l_unfiltered`.

use monkey_bench::{csv_header, csv_row, f};
use monkey_model::{
    baseline_zero_result_lookup_cost, l_unfiltered, m_threshold, zero_result_lookup_cost, Params,
    Policy,
};

fn main() {
    let entries = (1u64 << 35) as f64;
    eprintln!("# Figure 7: R vs M_filters at the paper's 512TB configuration");
    csv_header(&[
        "policy",
        "m_filters_gb",
        "bits_per_entry",
        "monkey_R",
        "baseline_R",
        "l_unfiltered",
    ]);
    for policy in [Policy::Leveling, Policy::Tiering] {
        let p = Params::new(
            entries,
            16.0 * 8.0,
            16384.0 * 8.0,
            8.0 * 2097152.0,
            4.0,
            policy,
        );
        eprintln!(
            "# {policy:?}: L={}, M_threshold={:.2} GB",
            p.levels(),
            m_threshold(p.entries, p.size_ratio) / 8.0 / 1e9
        );
        // 0 to 35 GB in (uneven, knee-resolving) steps.
        for &gb in &[
            0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0,
            20.0, 24.0, 28.0, 32.0, 35.0,
        ] {
            let m_filters = gb * 8e9;
            csv_row(&[
                format!("{policy:?}"),
                f(gb),
                f(m_filters / p.entries),
                f(zero_result_lookup_cost(&p, m_filters)),
                f(baseline_zero_result_lookup_cost(&p, m_filters)),
                format!("{}", l_unfiltered(&p, m_filters)),
            ]);
        }
    }
}
