//! Shared harness for the experiment binaries (one per paper table/figure;
//! see `src/bin/`).
//!
//! Every experiment follows the paper's protocol (§5): build a store at a
//! given design point, bulk-load `N` uniformly-distributed entries in
//! random order, then drive a query phase while counting page I/Os. The
//! paper's latency axes are reproduced as *modeled latency* = I/O counts ×
//! the device model (its own Figure 11 annotates the dotted guide lines in
//! I/Os per lookup, which is the primary metric here — see DESIGN.md §3 on
//! the testbed substitution).

pub mod dashboard;

use monkey::{Db, DbOptions, DbOptionsExt, FilterVariant, MergePolicy};
use monkey_storage::{DeviceModel, IoSnapshot};
use monkey_workload::{KeySpace, TemporalSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Which filter allocation a configuration uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterKind {
    /// No filters at all.
    None,
    /// The state of the art: uniform bits per entry (the paper's
    /// "LevelDB" baseline).
    Uniform(f64),
    /// Monkey's optimal allocation with the same total budget.
    Monkey(f64),
    /// The Appendix C adaptive allocation.
    Adaptive(f64),
}

impl FilterKind {
    /// Label used in CSV output.
    pub fn label(&self) -> String {
        match self {
            FilterKind::None => "none".into(),
            FilterKind::Uniform(b) => format!("uniform{b}"),
            FilterKind::Monkey(b) => format!("monkey{b}"),
            FilterKind::Adaptive(b) => format!("adaptive{b}"),
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Number of entries to load (`N`).
    pub entries: u64,
    /// Entry size in bytes (`E`).
    pub entry_bytes: usize,
    /// Page size in bytes (`B·E`).
    pub page_bytes: usize,
    /// Buffer capacity in bytes (`M_buffer`).
    pub buffer_bytes: usize,
    /// Size ratio (`T`).
    pub size_ratio: usize,
    /// Merge policy.
    pub policy: MergePolicy,
    /// Filter allocation.
    pub filters: FilterKind,
    /// Filter layout (standard flat or cache-line blocked).
    pub variant: FilterVariant,
    /// Block cache size in bytes (0 = disabled).
    pub cache_bytes: usize,
    /// Whether the engine's telemetry hub is enabled (off for paper
    /// experiments; the overhead benches flip it).
    pub telemetry: bool,
}

impl ExpConfig {
    /// The paper's default setup (§5), scaled to harness size: size ratio
    /// 2 (where leveling ≡ tiering), 5 bits/entry, uniform-vs-Monkey
    /// comparisons at identical total memory. 2¹⁶ entries of 64 B with
    /// 1 KiB pages and a 16 KiB buffer give an 8-level tree at T = 2 —
    /// deep enough to exhibit every scaling effect in Figure 11.
    pub fn paper_default() -> Self {
        Self {
            entries: 1 << 16,
            entry_bytes: 64,
            page_bytes: 1024,
            buffer_bytes: 16 << 10,
            size_ratio: 2,
            policy: MergePolicy::Leveling,
            filters: FilterKind::Monkey(5.0),
            variant: FilterVariant::Standard,
            cache_bytes: 0,
            telemetry: false,
        }
    }

    /// Same configuration with a different filter allocation.
    pub fn with_filters(mut self, filters: FilterKind) -> Self {
        self.filters = filters;
        self
    }

    /// Same configuration with a different filter layout.
    pub fn with_variant(mut self, variant: FilterVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Same configuration with the telemetry hub toggled.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Builds the engine options for this configuration.
    pub fn options(&self) -> DbOptions {
        let base = if self.cache_bytes > 0 {
            DbOptions::in_memory_cached(self.cache_bytes)
        } else {
            DbOptions::in_memory()
        };
        let base = base
            .page_size(self.page_bytes)
            .buffer_capacity(self.buffer_bytes)
            .size_ratio(self.size_ratio)
            .merge_policy(self.policy)
            .filter_variant(self.variant)
            .telemetry(self.telemetry);
        match self.filters {
            FilterKind::None => base.uniform_filters(0.0),
            FilterKind::Uniform(bpe) => base.uniform_filters(bpe),
            FilterKind::Monkey(bpe) => base.monkey_filters(bpe),
            FilterKind::Adaptive(bpe) => base.adaptive_filters(bpe),
        }
    }

    /// The key space matching this configuration.
    pub fn key_space(&self) -> KeySpace {
        KeySpace::with_entry_size(self.entries, self.entry_bytes)
    }
}

/// A loaded database ready for a query phase.
pub struct LoadedDb {
    /// The store.
    pub db: Arc<Db>,
    /// Its key space.
    pub keys: KeySpace,
    /// Index inserted at each position (position = insertion order).
    pub insertion_order: Vec<u64>,
}

/// Builds and bulk-loads a store per the paper's protocol. After loading,
/// filters are re-fit to the final tree shape (the paper's implementation
/// re-assigns FPRs as the tree evolves; our runs fix filters at build time,
/// so we re-fit once the load completes) and I/O counters reset.
pub fn load(cfg: &ExpConfig, seed: u64) -> LoadedDb {
    let db = Db::open(cfg.options()).expect("open");
    let keys = cfg.key_space();
    let mut rng = StdRng::seed_from_u64(seed);
    let order = keys.shuffled_indices(&mut rng);
    for &i in &order {
        db.put(keys.existing_key(i), keys.value_for(i))
            .expect("put");
    }
    db.rebuild_filters().expect("rebuild filters");
    db.reset_io();
    LoadedDb {
        db,
        keys,
        insertion_order: order,
    }
}

/// An I/O measurement over a batch of operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Operations performed.
    pub ops: u64,
    /// Raw I/O counters for the batch.
    pub io: IoSnapshot,
    /// Page reads per operation — the paper's "I/Os per lookup".
    pub ios_per_op: f64,
    /// Modeled latency per operation on the given device, in milliseconds.
    pub latency_ms_per_op: f64,
}

/// Wraps a batch of operations with I/O accounting.
pub fn measure<F: FnOnce()>(db: &Db, device: &DeviceModel, ops: u64, body: F) -> Measurement {
    let before = db.io();
    body();
    let io = db.io() - before;
    Measurement {
        ops,
        io,
        ios_per_op: io.page_reads as f64 / ops.max(1) as f64,
        latency_ms_per_op: device.latency_secs(&io) * 1e3 / ops.max(1) as f64,
    }
}

/// The paper's default query phase: zero-result lookups uniformly
/// distributed over the (disjoint) missing-key space.
pub fn zero_result_lookups(loaded: &LoadedDb, n: u64, seed: u64) -> Measurement {
    let mut rng = StdRng::seed_from_u64(seed);
    measure(&loaded.db, &DeviceModel::disk(), n, || {
        for _ in 0..n {
            let key = loaded.keys.random_missing(&mut rng);
            assert!(
                loaded.db.get(&key).expect("get").is_none(),
                "must be zero-result"
            );
        }
    })
}

/// Non-zero-result lookups with temporal locality `c` (Figure 11(D)):
/// recency rank sampled by the paper's coefficient, mapped through the
/// actual insertion order.
pub fn existing_lookups_temporal(loaded: &LoadedDb, c: f64, n: u64, seed: u64) -> Measurement {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = TemporalSampler::new(loaded.keys.entries, c);
    let order = &loaded.insertion_order;
    measure(&loaded.db, &DeviceModel::disk(), n, || {
        for _ in 0..n {
            let rank = sampler.sample_rank(&mut rng) as usize;
            // rank 0 = most recently inserted = last position.
            let idx = order[order.len() - 1 - rank];
            let key = loaded.keys.existing_key(idx);
            assert!(loaded.db.get(&key).expect("get").is_some(), "must exist");
        }
    })
}

/// Updates (overwrites of random existing keys), measuring amortized write
/// I/O per update — the engine's flushes and merges are included.
pub fn updates(loaded: &LoadedDb, n: u64, seed: u64) -> Measurement {
    let mut rng = StdRng::seed_from_u64(seed);
    let before = loaded.db.io();
    for _ in 0..n {
        let (i, key) = loaded.keys.random_existing(&mut rng);
        loaded.db.put(key, loaded.keys.value_for(i)).expect("put");
    }
    let io = loaded.db.io() - before;
    let device = DeviceModel::disk();
    Measurement {
        ops: n,
        io,
        ios_per_op: (io.page_reads + io.page_writes) as f64 / n.max(1) as f64,
        latency_ms_per_op: device.latency_secs(&io) * 1e3 / n.max(1) as f64,
    }
}

/// Mixed zero-result-lookup/update phase (Figure 11(F)); returns modeled
/// throughput in operations/second on the disk device.
pub fn mixed_phase(loaded: &LoadedDb, lookup_fraction: f64, n: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let device = DeviceModel::disk();
    let before = loaded.db.io();
    for _ in 0..n {
        if rng.gen_bool(lookup_fraction) {
            let key = loaded.keys.random_missing(&mut rng);
            let _ = loaded.db.get(&key).expect("get");
        } else {
            let (i, key) = loaded.keys.random_existing(&mut rng);
            loaded.db.put(key, loaded.keys.value_for(i)).expect("put");
        }
    }
    let io = loaded.db.io() - before;
    let secs = device.latency_secs(&io).max(1e-12);
    n as f64 / secs
}

/// Merges one bench's section into the repo-root `BENCH_telemetry.json`
/// artifact — see [`emit_bench_artifact`].
pub fn emit_bench_telemetry(section: &str, value_json: &str) {
    emit_bench_artifact("BENCH_telemetry.json", section, value_json);
}

/// Logical cores the runner exposes (1 when the platform can't say).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether this runner can exhibit real parallelism. On a 1-core
/// container a sub-1× "speedup" is scheduling overhead, not a
/// regression — emitters flag such rows instead of reporting them as
/// regressions, and readers must discount them.
pub fn single_core_runner() -> bool {
    host_parallelism() == 1
}

/// JSON fragment appended to a parallel-speedup row when the runner
/// cannot exhibit parallelism (empty otherwise).
pub fn single_core_flag() -> &'static str {
    if single_core_runner() {
        ", \"flagged_single_core\": true"
    } else {
        ""
    }
}

/// Merges one bench's section into a repo-root `BENCH_*.json` artifact,
/// preserving sections written by other benches. The format is one
/// `"section": <single-line JSON value>` per line, so a plain line-based
/// merge suffices without a JSON parser. Every write refreshes a `host`
/// section recording `available_parallelism()` so any artifact can be
/// judged against the hardware that produced it.
pub fn emit_bench_artifact(file_name: &str, section: &str, value_json: &str) {
    let path = format!("{}/../../{file_name}", env!("CARGO_MANIFEST_DIR"));
    let mut sections: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('"') {
                continue; // the surrounding braces
            }
            if let Some((k, v)) = line.split_once(':') {
                let k = k.trim().trim_matches('"');
                if !k.is_empty() && k != section && k != "host" {
                    sections.push((k.to_string(), v.trim().to_string()));
                }
            }
        }
    }
    sections.insert(
        0,
        (
            "host".to_string(),
            format!(
                "{{\"available_parallelism\": {}, \"single_core\": {}}}",
                host_parallelism(),
                single_core_runner()
            ),
        ),
    );
    sections.push((section.to_string(), value_json.to_string()));
    let body = sections
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    std::fs::write(&path, format!("{{\n{body}\n}}\n"))
        .unwrap_or_else(|e| panic!("write {file_name}: {e}"));
}

/// Prints a CSV header line.
pub fn csv_header(cols: &[&str]) {
    println!("{}", cols.join(","));
}

/// Prints one CSV row.
pub fn csv_row(values: &[String]) {
    println!("{}", values.join(","));
}

/// Formats a float compactly for CSV.
pub fn f(x: f64) -> String {
    format!("{x:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            entries: 2000,
            entry_bytes: 64,
            page_bytes: 1024,
            buffer_bytes: 4096,
            size_ratio: 2,
            policy: MergePolicy::Leveling,
            filters: FilterKind::Monkey(5.0),
            variant: FilterVariant::Standard,
            cache_bytes: 0,
            telemetry: false,
        }
    }

    #[test]
    fn load_and_query_roundtrip() {
        let loaded = load(&tiny(), 1);
        assert_eq!(loaded.insertion_order.len(), 2000);
        let m = zero_result_lookups(&loaded, 500, 2);
        assert_eq!(m.ops, 500);
        assert!(
            m.ios_per_op < 1.0,
            "filters absorb most probes: {}",
            m.ios_per_op
        );
        let m = existing_lookups_temporal(&loaded, 0.5, 200, 3);
        assert!(m.ios_per_op >= 1.0, "found keys cost at least one read");
    }

    #[test]
    fn monkey_beats_uniform_on_zero_result_lookups() {
        let monkey = load(&tiny(), 1);
        let uniform = load(&tiny().with_filters(FilterKind::Uniform(5.0)), 1);
        let m = zero_result_lookups(&monkey, 2000, 2);
        let u = zero_result_lookups(&uniform, 2000, 2);
        assert!(
            m.ios_per_op < u.ios_per_op,
            "monkey {} vs uniform {}",
            m.ios_per_op,
            u.ios_per_op
        );
    }

    #[test]
    fn updates_measure_write_amplification() {
        let loaded = load(&tiny(), 1);
        let m = updates(&loaded, 2000, 4);
        assert!(m.io.page_writes > 0);
        assert!(m.ios_per_op > 0.0);
    }

    #[test]
    fn blocked_variant_loads_and_queries() {
        let loaded = load(&tiny().with_variant(FilterVariant::Blocked), 1);
        let m = zero_result_lookups(&loaded, 500, 2);
        assert!(
            m.ios_per_op < 1.0,
            "blocked filters still absorb most probes: {}",
            m.ios_per_op
        );
        let m = existing_lookups_temporal(&loaded, 0.5, 200, 3);
        assert!(m.ios_per_op >= 1.0);
    }

    #[test]
    fn filter_labels() {
        assert_eq!(FilterKind::None.label(), "none");
        assert_eq!(FilterKind::Uniform(5.0).label(), "uniform5");
        assert_eq!(FilterKind::Monkey(5.0).label(), "monkey5");
    }
}
