//! Shared dashboard plumbing for `monkey-top` and `monkey-stats`: the
//! frame/window renderers both bins print, plus the remote-attach side —
//! a dependency-free JSON reader and the reconstruction of a
//! [`TelemetryReport`] from the `/report.json` document served by a
//! store's embedded scrape endpoint
//! ([`DbOptions::obs_listen`](monkey::DbOptions)).
//!
//! The reconstruction is faithful for everything the dashboards render:
//! counters, latency summaries, per-level rows, per-op backend I/O
//! latency, shard gauges, and drift flags. The drained event and span
//! timelines are *not* rebuilt into typed [`monkey::Event`]/
//! [`monkey::Span`] values — a remote consumer reads those from
//! `/events.json` and `/spans.json` directly — so `events` and `spans`
//! come back empty and the renderers treat them as such.

use monkey::{
    http_get, DriftFlag, IoBackendReport, IoLatencyReport, IoLevelLatencyReport, LevelIoSnapshot,
    LevelLookupSnapshot, LevelReport, OpLatencyReport, ShardBreakdown, TelemetryReport,
    WindowRates,
};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// A minimal JSON reader. The obs crate's JSON module is emit-only by
// design (the engine never parses), so the remote-attach side of the
// dashboards carries its own reader rather than growing the engine or
// pulling in a dependency.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (read as `f64`; the reports never exceed 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as an unsigned counter.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n.max(0.0) as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    // Typed member accessors with defaults, for counter-dense documents.
    fn u64_of(&self, key: &str) -> u64 {
        self.get(key).and_then(Json::as_u64).unwrap_or(0)
    }

    fn f64_of(&self, key: &str) -> f64 {
        self.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }

    fn usize_of(&self, key: &str) -> usize {
        self.u64_of(key) as usize
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                expected as char, self.pos
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of document".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| "truncated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs never appear in the engine's
                            // own output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at offset {start}"))
    }
}

// ---------------------------------------------------------------------------
// Report reconstruction.
// ---------------------------------------------------------------------------

/// Maps a serialized op name back onto the engine's static name table, so
/// the rebuilt report can carry the same `&'static str` the in-process
/// one does. Unknown names (a newer server than this client) are leaked —
/// bounded by the handful of op kinds a server can emit.
fn static_op_name(name: &str) -> &'static str {
    const KNOWN: [&str; 10] = [
        "get",
        "put",
        "range",
        "flush",
        "cascade",
        "merge",
        "read_page",
        "read_page_sequential",
        "write_page",
        "sync",
    ];
    KNOWN
        .iter()
        .find(|k| **k == name)
        .copied()
        .unwrap_or_else(|| Box::leak(name.to_string().into_boxed_str()))
}

fn io_snapshot(v: &Json) -> LevelIoSnapshot {
    LevelIoSnapshot {
        reads: v.u64_of("reads"),
        writes: v.u64_of("writes"),
        read_bytes: v.u64_of("read_bytes"),
        write_bytes: v.u64_of("write_bytes"),
        cache_hits: v.u64_of("cache_hits"),
        cache_hit_bytes: v.u64_of("cache_hit_bytes"),
    }
}

/// Rebuilds a [`TelemetryReport`] from the JSON document `to_json()`
/// emits and `/report.json` serves. Everything the dashboards render
/// round-trips; the event/span timelines come back empty (see the module
/// docs).
pub fn report_from_json(text: &str) -> Result<TelemetryReport, String> {
    let doc = Json::parse(text)?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("report document is not a JSON object".into());
    }
    let arr = |key: &str| doc.get(key).and_then(Json::as_array).unwrap_or(&[]);

    let ops = arr("ops")
        .iter()
        .map(|o| OpLatencyReport {
            op: static_op_name(o.get("op").and_then(Json::as_str).unwrap_or("?")),
            ops: o.u64_of("ops"),
            sampled: o.u64_of("sampled"),
            mean_micros: o.f64_of("mean_micros"),
            p50_micros: o.f64_of("p50_micros"),
            p90_micros: o.f64_of("p90_micros"),
            p99_micros: o.f64_of("p99_micros"),
            p999_micros: o.f64_of("p999_micros"),
            max_micros: o.f64_of("max_micros"),
        })
        .collect();

    let levels = arr("levels")
        .iter()
        .map(|l| LevelReport {
            level: l.usize_of("level"),
            runs: l.usize_of("runs"),
            entries: l.u64_of("entries"),
            lookups: LevelLookupSnapshot {
                filter_probes: l.u64_of("filter_probes"),
                filter_negatives: l.u64_of("filter_negatives"),
                filter_false_positives: l.u64_of("filter_false_positives"),
                lookup_page_reads: l.u64_of("lookup_page_reads"),
            },
            io: l.get("io").map(io_snapshot).unwrap_or_default(),
            allocated_fpr: l.f64_of("allocated_fpr"),
            measured_fpr: l.f64_of("measured_fpr"),
            drift: if l.get("drifted").and_then(Json::as_bool).unwrap_or(false) {
                Some(DriftFlag {
                    deviation: l.f64_of("drift_deviation"),
                    bound: l.f64_of("drift_bound"),
                })
            } else {
                None
            },
        })
        .collect();

    let io = arr("io")
        .iter()
        .map(|o| IoLatencyReport {
            op: static_op_name(o.get("op").and_then(Json::as_str).unwrap_or("?")),
            ops: o.u64_of("ops"),
            sampled: o.u64_of("sampled"),
            mean_micros: o.f64_of("mean_micros"),
            p50_micros: o.f64_of("p50_micros"),
            p90_micros: o.f64_of("p90_micros"),
            p99_micros: o.f64_of("p99_micros"),
            p999_micros: o.f64_of("p999_micros"),
            max_micros: o.f64_of("max_micros"),
            cache_mode_ratio: o.f64_of("cache_mode_ratio"),
            mode_threshold_micros: o.f64_of("mode_threshold_micros"),
            levels: o
                .get("levels")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|l| IoLevelLatencyReport {
                    level: l.usize_of("level"),
                    sampled: l.u64_of("sampled"),
                    mean_micros: l.f64_of("mean_micros"),
                    p50_micros: l.f64_of("p50_micros"),
                    p90_micros: l.f64_of("p90_micros"),
                    p99_micros: l.f64_of("p99_micros"),
                    max_micros: l.f64_of("max_micros"),
                })
                .collect(),
        })
        .collect();

    let shards = arr("shards")
        .iter()
        .map(|s| ShardBreakdown {
            shard: s.usize_of("shard"),
            gets: s.u64_of("gets"),
            puts: s.u64_of("puts"),
            ranges: s.u64_of("ranges"),
            disk_entries: s.u64_of("disk_entries"),
            buffer_bytes: s.u64_of("buffer_bytes"),
            immutable_queue_depth: s.u64_of("immutable_queue_depth"),
            stalled_writers: s.u64_of("stalled_writers"),
            page_reads: s.u64_of("page_reads"),
            page_writes: s.u64_of("page_writes"),
            cache_hits: s.u64_of("cache_hits"),
        })
        .collect();

    Ok(TelemetryReport {
        uptime_micros: doc.u64_of("uptime_micros"),
        ops,
        levels,
        unattributed_io: doc
            .get("unattributed_io")
            .map(io_snapshot)
            .unwrap_or_default(),
        io,
        expected_zero_result_lookup_ios: doc.f64_of("expected_zero_result_lookup_ios"),
        measured_zero_result_lookup_ios: doc.f64_of("measured_zero_result_lookup_ios"),
        lookups: doc.u64_of("lookups"),
        events: Vec::new(),
        events_dropped: doc.u64_of("events_dropped"),
        immutable_queue_depth: doc.u64_of("immutable_queue_depth"),
        stalled_writers: doc.u64_of("stalled_writers"),
        last_merge_partitions: doc.u64_of("last_merge_partitions"),
        last_merge_threads: doc.u64_of("last_merge_threads"),
        shards,
        spans: Vec::new(),
        spans_started: doc.u64_of("spans_started"),
        spans_dropped: doc.u64_of("spans_dropped"),
        recorder_bytes: doc.u64_of("recorder_bytes"),
        io_backend: doc.get("io_backend").map(|b| IoBackendReport {
            requested: b
                .get("requested")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            kind: b
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            align: b.u64_of("align"),
            fallback: b.get("fallback").and_then(Json::as_str).map(str::to_string),
        }),
    })
}

/// One `GET /report.json` against a remote scrape endpoint, rebuilt into
/// a [`TelemetryReport`].
pub fn fetch_report(addr: &str) -> Result<TelemetryReport, String> {
    let (status, body) =
        http_get(addr, "/report.json").map_err(|e| format!("GET {addr}/report.json: {e}"))?;
    if status != 200 {
        return Err(format!(
            "{addr}/report.json answered {status}: {}",
            body.trim()
        ));
    }
    report_from_json(&body)
}

/// One `GET /advice.json` against a remote scrape endpoint, condensed
/// into the advisor line the dashboard prints. Mirrors the wording the
/// in-process path uses, minus the one-line design summary a remote
/// document cannot reproduce verbatim.
pub fn fetch_advice_line(addr: &str) -> String {
    let body = match http_get(addr, "/advice.json") {
        Ok((200, body)) => body,
        Ok((status, _)) => return format!("remote /advice.json answered {status}"),
        Err(e) => return format!("remote /advice.json unreachable: {e}"),
    };
    let doc = match Json::parse(&body) {
        Ok(doc) => doc,
        Err(e) => return format!("remote /advice.json unparseable: {e}"),
    };
    advice_line_from_json(&doc)
}

/// The advisor line for a parsed `/advice.json` document.
pub fn advice_line_from_json(doc: &Json) -> String {
    let advice = match doc.get("advice") {
        Some(a @ Json::Obj(_)) => a,
        _ => return "no advisor wired on the remote store".to_string(),
    };
    let samples = advice.u64_of("samples");
    let min_samples = advice.u64_of("min_samples");
    let windows = advice.u64_of("windows");
    let min_windows = advice.u64_of("min_windows");
    if samples < min_samples || windows < min_windows {
        return format!(
            "gathering evidence ({samples}/{min_samples} classified ops, \
             {windows}/{min_windows} windows)"
        );
    }
    match advice.get("recommended") {
        Some(rec @ Json::Obj(_)) => {
            let current_tp = advice
                .get("current")
                .map(|c| c.f64_of("worst_case_throughput"))
                .unwrap_or(0.0);
            let rec_tp = rec.f64_of("worst_case_throughput");
            let speedup = if current_tp > 0.0 {
                rec_tp / current_tp
            } else {
                1.0
            };
            format!(
                "{:<9} T={:<3.0} buffer={:.1} KiB  filters={:.0} bits  theta={:.4}  \
                 worst-case {:.1} ops/s  ({speedup:.2}x)",
                rec.get("policy").and_then(Json::as_str).unwrap_or("?"),
                rec.f64_of("size_ratio"),
                rec.f64_of("buffer_bytes") / 1024.0,
                rec.f64_of("filter_bits"),
                rec.f64_of("theta"),
                rec_tp,
            )
        }
        _ => "current design already optimal".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Frame rendering, shared by monkey-top (local and --connect) and the
// watch mode of monkey-stats.
// ---------------------------------------------------------------------------

/// Per-shard cumulative counters from the previous frame, so rates can be
/// rendered as deltas over the polling interval.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardPrev {
    /// Cumulative point lookups at the previous frame.
    pub gets: u64,
    /// Cumulative updates at the previous frame.
    pub puts: u64,
    /// Cumulative range scans at the previous frame.
    pub ranges: u64,
}

/// `1.5KiB` / `2.0MiB` style byte formatting for gauge columns.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Renders one dashboard frame — totals, tracing counters, per-shard
/// rates (updating `prev` in place), drift flags, and the advisor line —
/// as the text block both `monkey-top` modes print.
pub fn render_frame(
    report: &TelemetryReport,
    prev: &mut Vec<ShardPrev>,
    dt_secs: f64,
    frame: u64,
    advice_line: &str,
) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "monkey-top  frame {frame}  uptime {:.1}s  interval {:.1}s",
        report.uptime_micros as f64 / 1e6,
        dt_secs,
    ));
    let (mut gets, mut puts, mut ranges) = (0u64, 0u64, 0u64);
    for s in &report.shards {
        gets += s.gets;
        puts += s.puts;
        ranges += s.ranges;
    }
    prev.resize(report.shards.len(), ShardPrev::default());
    let delta_ops: u64 = report
        .shards
        .iter()
        .zip(prev.iter())
        .map(|(s, p)| (s.gets + s.puts + s.ranges).saturating_sub(p.gets + p.puts + p.ranges))
        .sum();
    line(format!(
        "ops          {:>9.0}/s   cumulative: {gets} gets  {puts} puts  {ranges} ranges",
        delta_ops as f64 / dt_secs.max(1e-9),
    ));
    line(format!(
        "lookup cost  R model {:.4}  measured {:.4}  ({} lookups)",
        report.expected_zero_result_lookup_ios,
        report.measured_zero_result_lookup_ios,
        report.lookups,
    ));
    line(format!(
        "tracing      {} spans started  {} dropped  recorder {}",
        report.spans_started,
        report.spans_dropped,
        fmt_bytes(report.recorder_bytes),
    ));
    line(
        "shard      get/s      put/s    range/s  queue  stall  cache-hit     entries    buffer"
            .to_string(),
    );
    for (s, p) in report.shards.iter().zip(prev.iter_mut()) {
        let dg = s.gets.saturating_sub(p.gets) as f64 / dt_secs.max(1e-9);
        let dp = s.puts.saturating_sub(p.puts) as f64 / dt_secs.max(1e-9);
        let dr = s.ranges.saturating_sub(p.ranges) as f64 / dt_secs.max(1e-9);
        let probes = s.cache_hits + s.page_reads;
        let hit = if probes > 0 {
            format!("{:>8.1}%", s.cache_hits as f64 / probes as f64 * 100.0)
        } else {
            format!("{:>9}", "-")
        };
        line(format!(
            "{:>5} {:>10.0} {:>10.0} {:>10.0} {:>6} {:>6} {hit} {:>11} {:>9}",
            s.shard,
            dg,
            dp,
            dr,
            s.immutable_queue_depth,
            s.stalled_writers,
            s.disk_entries,
            fmt_bytes(s.buffer_bytes),
        ));
        *p = ShardPrev {
            gets: s.gets,
            puts: s.puts,
            ranges: s.ranges,
        };
    }
    let drifted = report.drifted();
    if drifted.is_empty() {
        line("drift        none".to_string());
    } else {
        for l in drifted {
            let d = l.drift.expect("drifted() only returns flagged levels");
            line(format!(
                "drift        level {}: measured FPR {:.5} vs allocated {:.5} \
                 (dev {:.5} > bound {:.5})",
                l.level, l.measured_fpr, l.allocated_fpr, d.deviation, d.bound,
            ));
        }
    }
    line(format!("advisor      {advice_line}"));
    out
}

/// Renders one observatory window as the `# window N ...` rate line
/// `monkey-stats --watch` prints.
pub fn window_line(n: usize, w: &WindowRates) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "# window {n:>3}  {:>7.1} ms  {:>9.0} ops/s ({:>8.0} get/s {:>8.0} put/s \
         {:>6.0} range/s)  flush {:>9.0} B/s  stall {:>5.3}  write-amp {:>5.2}",
        w.span_secs * 1e3,
        w.ops_per_sec,
        w.gets_per_sec,
        w.puts_per_sec,
        w.ranges_per_sec,
        w.bytes_flushed_per_sec,
        w.stall_ratio,
        w.write_amp,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use monkey::{Db, DbOptions};

    #[test]
    fn json_reader_handles_the_grammar() {
        let doc = Json::parse(
            r#"{"a": 1, "b": [true, false, null], "c": {"nested": "va\"l\nue"},
                "d": -2.5e2, "e": "", "u": "A"}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("c").unwrap().get("nested").unwrap().as_str(),
            Some("va\"l\nue")
        );
        assert_eq!(doc.get("d").unwrap().as_f64(), Some(-250.0));
        assert_eq!(doc.get("u").unwrap().as_str(), Some("A"));
        assert!(Json::parse("{\"a\":1} junk").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,").is_err());
    }

    /// The acceptance loop: a real report, through `to_json()`, through
    /// the reader, re-rendered — the rebuilt report reproduces every
    /// field the dashboards consume, and its own `to_json()` matches the
    /// original modulo the drained timelines.
    #[test]
    fn report_round_trips_through_json() {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(1024)
                .buffer_capacity(8 << 10)
                .size_ratio(3)
                .shards(2)
                .telemetry(true),
        )
        .unwrap();
        for i in 0..1_500u64 {
            db.put(format!("key{i:08}").into_bytes(), vec![b'v'; 48] as Vec<u8>)
                .unwrap();
        }
        for i in 0..1_500u64 {
            db.get(format!("key{i:08}").as_bytes()).unwrap();
        }
        let original = db.telemetry_report().unwrap();
        let rebuilt = report_from_json(&original.to_json()).unwrap();

        assert_eq!(rebuilt.uptime_micros, original.uptime_micros);
        assert_eq!(rebuilt.lookups, original.lookups);
        assert_eq!(rebuilt.ops.len(), original.ops.len());
        for (r, o) in rebuilt.ops.iter().zip(&original.ops) {
            assert_eq!(r.op, o.op);
            assert_eq!(r.ops, o.ops);
        }
        assert_eq!(rebuilt.levels.len(), original.levels.len());
        for (r, o) in rebuilt.levels.iter().zip(&original.levels) {
            assert_eq!(r.level, o.level);
            assert_eq!(r.entries, o.entries);
            assert_eq!(r.io.writes, o.io.writes);
            assert_eq!(r.lookups.filter_probes, o.lookups.filter_probes);
        }
        assert_eq!(rebuilt.io.len(), original.io.len());
        for (r, o) in rebuilt.io.iter().zip(&original.io) {
            assert_eq!(r.op, o.op);
            assert_eq!(r.ops, o.ops);
            assert_eq!(r.levels.len(), o.levels.len());
        }
        assert_eq!(rebuilt.shards.len(), 2);
        for (r, o) in rebuilt.shards.iter().zip(&original.shards) {
            assert_eq!(r, o);
        }

        // A drained original renders the same JSON as the rebuilt report:
        // the only information the round trip drops is the timeline.
        let mut drained = original.clone();
        drained.events.clear();
        drained.spans.clear();
        assert_eq!(rebuilt.to_json(), drained.to_json());
    }

    #[test]
    fn advice_lines_cover_every_gate_state() {
        let gathering = Json::parse(
            r#"{"advice":{"samples":10,"min_samples":500,"windows":0,"min_windows":4}}"#,
        )
        .unwrap();
        assert!(advice_line_from_json(&gathering).contains("10/500"));

        let confident = Json::parse(
            r#"{"advice":{"samples":900,"min_samples":500,"windows":6,"min_windows":4,
                "current":{"worst_case_throughput":100.0},
                "recommended":{"policy":"tiering","size_ratio":4.0,"buffer_bytes":8192.0,
                               "filter_bits":65536.0,"theta":1.25,
                               "worst_case_throughput":150.0}}}"#,
        )
        .unwrap();
        let line = advice_line_from_json(&confident);
        assert!(line.contains("tiering"), "{line}");
        assert!(line.contains("(1.50x)"), "{line}");

        let optimal = Json::parse(
            r#"{"advice":{"samples":900,"min_samples":500,"windows":6,"min_windows":4,
                "current":{"worst_case_throughput":100.0},"recommended":null}}"#,
        )
        .unwrap();
        assert!(advice_line_from_json(&optimal).contains("already optimal"));

        let off = Json::parse(r#"{"advice":null}"#).unwrap();
        assert!(advice_line_from_json(&off).contains("no advisor"));
    }

    #[test]
    fn frame_renders_remote_and_local_reports_identically() {
        let db = Db::open(
            DbOptions::in_memory()
                .buffer_capacity(8 << 10)
                .shards(2)
                .telemetry(true)
                .obs_listen("127.0.0.1:0"),
        )
        .unwrap();
        for i in 0..400u64 {
            db.put(format!("k{i:06}").into_bytes(), vec![b'v'; 32] as Vec<u8>)
                .unwrap();
        }
        let addr = db.obs_addr().unwrap().to_string();
        let remote = fetch_report(&addr).unwrap();
        let local = db.telemetry_report().unwrap();
        let mut prev_a: Vec<ShardPrev> = Vec::new();
        let mut prev_b: Vec<ShardPrev> = Vec::new();
        let a = render_frame(&remote, &mut prev_a, 1.0, 1, "advice");
        let b = render_frame(&local, &mut prev_b, 1.0, 1, "advice");
        // Uptime differs between the two snapshots; every other line is
        // byte-identical.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("monkey-top "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
        assert!(a.contains("advisor      advice"));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(17), "17B");
        assert_eq!(fmt_bytes(1536), "1.5KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }
}
