//! Engine micro-benchmarks: the hot paths of the store under both merge
//! policies and filter allocations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use monkey::MergePolicy;
use monkey_bench::{load, zero_result_lookups, ExpConfig, FilterKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn small_cfg() -> ExpConfig {
    ExpConfig {
        entries: 1 << 13,
        ..ExpConfig::paper_default()
    }
}

fn bench_point_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_lookup");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for filters in [FilterKind::Uniform(5.0), FilterKind::Monkey(5.0)] {
        let loaded = load(&small_cfg().with_filters(filters), 1);
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(format!("hit/{}", filters.label()), |b| {
            b.iter(|| {
                let (_, k) = loaded.keys.random_existing(&mut rng);
                assert!(loaded.db.get(&k).unwrap().is_some());
            })
        });
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_function(format!("miss/{}", filters.label()), |b| {
            b.iter(|| {
                let k = loaded.keys.random_missing(&mut rng);
                assert!(loaded.db.get(&k).unwrap().is_none());
            })
        });
    }
    group.finish();
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, policy, t) in [
        ("leveling_t2", MergePolicy::Leveling, 2usize),
        ("tiering_t4", MergePolicy::Tiering, 4),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let cfg = ExpConfig {
                        policy,
                        size_ratio: t,
                        ..small_cfg()
                    };
                    (load(&cfg, 1), StdRng::seed_from_u64(4))
                },
                |(loaded, mut rng)| {
                    for _ in 0..1000 {
                        let (i, k) = loaded.keys.random_existing(&mut rng);
                        loaded.db.put(k, loaded.keys.value_for(i)).unwrap();
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_range_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_scan");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let loaded = load(&small_cfg(), 1);
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("scan_1pct", |b| {
        b.iter(|| {
            let start = rng.gen_range(0..loaded.keys.entries * 9 / 10);
            let lo = loaded.keys.existing_key(start);
            let hi = loaded.keys.existing_key(start + loaded.keys.entries / 100);
            let n = loaded.db.range(&lo, Some(&hi)).unwrap().count();
            assert!(n > 0);
        })
    });
    group.finish();
}

fn bench_zero_result_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("zero_result_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let loaded = load(&small_cfg().with_filters(FilterKind::Monkey(5.0)), 1);
    let mut seed = 100u64;
    group.bench_function("monkey_1000_lookups", |b| {
        b.iter(|| {
            seed += 1;
            zero_result_lookups(&loaded, 1000, seed)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_point_lookups,
    bench_inserts,
    bench_range_scan,
    bench_zero_result_batch
);
criterion_main!(benches);
