//! Block-cache benchmarks: hit-path latency of the lock-free cache against
//! a mutex-sharded LRU baseline (the pre-rewrite design), and point-lookup
//! hit ratio under a Zipfian get + periodic full-scan mix, LRU vs the
//! scan-resistant policy at equal capacity. Results merge into the
//! repo-root `BENCH_cache.json` artifact (EXPERIMENTS.md quotes them).

use bytes::Bytes;
use monkey_lsm::{Db, DbOptions};
use monkey_storage::{BlockCache, CacheConfig};
use monkey_workload::ZipfianSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---- baseline: the pre-rewrite mutex-sharded LRU hit path -----------------

/// Verbatim port of the old cache's hit path: 16 mutex shards, each a
/// `HashMap` into an intrusive LRU list, every hit taking the shard lock
/// to unlink/re-link its node, plus the old cache-global hit counter.
struct MutexLru {
    shards: Vec<Mutex<MutexShard>>,
    hits: AtomicU64,
}

const NO_NODE: usize = usize::MAX;

struct OldNode {
    #[allow(dead_code)] // eviction used it; kept so node size (and thus
    // memory traffic per touch) matches the old cache
    key: (u64, u32),
    data: Bytes,
    prev: usize,
    next: usize,
}

#[derive(Default)]
struct MutexShard {
    map: HashMap<(u64, u32), usize>,
    nodes: Vec<OldNode>,
    head: usize,
    tail: usize,
}

impl MutexShard {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NO_NODE {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NO_NODE {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NO_NODE;
        self.nodes[idx].next = self.head;
        if self.head != NO_NODE {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NO_NODE {
            self.tail = idx;
        }
    }
}

impl MutexLru {
    fn new() -> Self {
        Self {
            shards: (0..16)
                .map(|_| {
                    Mutex::new(MutexShard {
                        head: NO_NODE,
                        tail: NO_NODE,
                        ..MutexShard::default()
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
        }
    }

    fn get(&self, run: u64, page: u32) -> Option<Bytes> {
        let mut s = self.shards[BlockCache::shard_of(run, page)].lock().unwrap();
        let idx = *s.map.get(&(run, page))?;
        s.unlink(idx);
        s.push_front(idx);
        let data = s.nodes[idx].data.clone();
        drop(s);
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(data)
    }

    // Capacity enforcement elided: the bench working set is fully
    // resident in both caches, so only the hit path is exercised.
    fn insert(&self, run: u64, page: u32, data: Bytes) {
        let mut s = self.shards[BlockCache::shard_of(run, page)].lock().unwrap();
        let node = OldNode {
            key: (run, page),
            data,
            prev: NO_NODE,
            next: NO_NODE,
        };
        let idx = s.nodes.len();
        s.nodes.push(node);
        s.map.insert((run, page), idx);
        s.push_front(idx);
    }
}

// ---- hit-path latency -----------------------------------------------------

const PAGE: usize = 256;
const WORKING_SET: u32 = 1024;

fn fill_lockfree() -> Arc<BlockCache> {
    let cache = Arc::new(BlockCache::with_config(
        CacheConfig::lru(2 * WORKING_SET as usize * PAGE).with_page_size(PAGE),
    ));
    for p in 0..WORKING_SET {
        cache.insert(p as u64 % 8, p, Bytes::from(vec![p as u8; PAGE]));
    }
    cache
}

fn fill_mutex() -> Arc<MutexLru> {
    let cache = Arc::new(MutexLru::new());
    for p in 0..WORKING_SET {
        cache.insert(p as u64 % 8, p, Bytes::from(vec![p as u8; PAGE]));
    }
    cache
}

/// ns per hit across `threads` threads doing `iters` gets each. With
/// `hot_page`, every thread hammers the same page (one shard, the worst
/// contention case — exactly the hot-block shape a Zipfian read mix
/// produces); otherwise accesses spread over the whole working set.
fn hit_ns<C: Send + Sync + 'static>(
    cache: &Arc<C>,
    get: fn(&C, u64, u32) -> Option<Bytes>,
    threads: usize,
    iters: u64,
    hot_page: bool,
) -> f64 {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cache = Arc::clone(cache);
            std::thread::spawn(move || {
                let mut sink = 0u64;
                for i in 0..iters {
                    let p = if hot_page {
                        0
                    } else {
                        ((i.wrapping_mul(2654435761).wrapping_add(t as u64)) % WORKING_SET as u64)
                            as u32
                    };
                    let got = get(&cache, p as u64 % 8, p).expect("resident page");
                    sink = sink.wrapping_add(got[0] as u64);
                }
                sink
            })
        })
        .collect();
    let mut sink = 0u64;
    for h in handles {
        sink = sink.wrapping_add(h.join().expect("reader"));
    }
    std::hint::black_box(sink);
    t0.elapsed().as_nanos() as f64 / (threads as u64 * iters) as f64
}

// ---- mixed-workload hit ratio ---------------------------------------------

/// Runs Zipfian point gets interleaved with periodic full-range scans
/// against a real `Db` on cached in-memory storage, and returns the
/// point-phase cache hit ratio `hits / (hits + disk reads)`.
fn mixed_hit_ratio(scan_resistant: bool, keys: usize, rounds: usize, gets_per_round: usize) -> f64 {
    let mut opts = DbOptions::in_memory_cached(64 << 10)
        .page_size(1024)
        .buffer_capacity(16 << 10)
        .size_ratio(4)
        .uniform_filters(10.0);
    if scan_resistant {
        opts = opts.scan_resistant_cache();
    }
    let db = Db::open(opts).expect("open");
    for i in 0..keys {
        db.put(format!("key{i:08}").into_bytes(), vec![b'v'; 56])
            .expect("put");
    }
    let zipf = ZipfianSampler::new(keys as u64, 0.99);
    let mut rng = StdRng::seed_from_u64(42);
    // Warm the cache with one point phase before measuring.
    for _ in 0..gets_per_round {
        let k = zipf.sample(&mut rng);
        db.get(format!("key{k:08}").as_bytes()).expect("get");
    }
    let mut hits = 0u64;
    let mut reads = 0u64;
    for _ in 0..rounds {
        let before = db.io();
        for _ in 0..gets_per_round {
            let k = zipf.sample(&mut rng);
            db.get(format!("key{k:08}").as_bytes()).expect("get");
        }
        let d = db.io() - before;
        hits += d.cache_hits;
        reads += d.page_reads;
        // The cache-hostile phase: a full table scan.
        let mut n = 0usize;
        for kv in db.range(b"", None).expect("range") {
            kv.expect("scan entry");
            n += 1;
        }
        assert_eq!(n, keys, "scan covers the whole table");
    }
    hits as f64 / (hits + reads).max(1) as f64
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, keys, rounds, gets) = if test_mode {
        (200_000u64, 4_000usize, 2usize, 1_000usize)
    } else {
        (4_000_000u64, 20_000usize, 6usize, 8_000usize)
    };

    // Hit path: identical working set, resident in both caches.
    let lockfree = fill_lockfree();
    let mutexed = fill_mutex();
    let mut rows = Vec::new();
    for &(threads, hot, label) in &[(1usize, false, "1t"), (4, false, "4t"), (4, true, "4t_hot")] {
        let new_ns = hit_ns(&lockfree, |c, r, p| c.get(r, p), threads, iters, hot);
        let old_ns = hit_ns(&mutexed, |c, r, p| c.get(r, p), threads, iters, hot);
        println!(
            "hit_path {label:>6}: mutex-LRU {old_ns:>7.1} ns/hit   \
             lock-free {new_ns:>7.1} ns/hit   {:>5.2}x",
            old_ns / new_ns
        );
        rows.push(format!(
            "\"{label}\": {{\"mutex_ns\": {old_ns:.1}, \"lockfree_ns\": {new_ns:.1}, \
             \"speedup\": {:.3}}}",
            old_ns / new_ns
        ));
    }
    monkey_bench::emit_bench_artifact(
        "BENCH_cache.json",
        "hit_path",
        &format!(
            "{{\"iters\": {iters}, \"working_set_pages\": {WORKING_SET}, \"page_bytes\": {PAGE}, {}}}",
            rows.join(", ")
        ),
    );

    // Mixed workload: equal capacity, only the admission policy differs.
    let lru = mixed_hit_ratio(false, keys, rounds, gets);
    let s3 = mixed_hit_ratio(true, keys, rounds, gets);
    println!(
        "mixed_workload point-get hit ratio: LRU {:.3}   scan-resistant {:.3}",
        lru, s3
    );
    monkey_bench::emit_bench_artifact(
        "BENCH_cache.json",
        "mixed_workload",
        &format!(
            "{{\"keys\": {keys}, \"rounds\": {rounds}, \"gets_per_round\": {gets}, \
             \"cache_bytes\": {}, \"lru_hit_ratio\": {lru:.4}, \
             \"scan_resistant_hit_ratio\": {s3:.4}}}",
            64 << 10
        ),
    );
}
