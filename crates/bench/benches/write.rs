//! Write-path benchmarks: put throughput and put tail latency across the
//! two merge policies × the two flush schedules.
//!
//! In synchronous mode a put that fills the buffer pays for the whole
//! flush (and any merge cascade it triggers) inline, so the mean stays low
//! but the tail is the full cascade cost. With `background_compaction` the
//! rotating put only freezes the memtable and hands it to the worker; the
//! tail collapses to the rotation cost unless backpressure kicks in. The
//! throughput numbers come from the criterion harness (median ns/put); the
//! latency distribution is measured separately below because the offline
//! criterion stand-in reports no percentiles.

use criterion::{criterion_group, Criterion};
use monkey::{Db, DbOptions, DbOptionsExt, MergePolicy};
use std::time::{Duration, Instant};

const VALUE_LEN: usize = 64;

fn opts(policy: MergePolicy, background: bool) -> DbOptions {
    // The harness default shape (EXPERIMENTS.md): 1 KiB pages, 16 KiB
    // buffer, T=2 — deep enough that leveling cascades span many levels.
    DbOptions::in_memory()
        .page_size(1024)
        .buffer_capacity(16 << 10)
        .size_ratio(2)
        .merge_policy(policy)
        .monkey_filters(5.0)
        .background_compaction(background)
        .max_immutable_memtables(4)
}

fn configs() -> [(MergePolicy, bool, &'static str); 4] {
    [
        (MergePolicy::Leveling, false, "leveling_sync"),
        (MergePolicy::Leveling, true, "leveling_background"),
        (MergePolicy::Tiering, false, "tiering_sync"),
        (MergePolicy::Tiering, true, "tiering_background"),
    ]
}

fn bench_put_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("put_throughput");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (policy, background, label) in configs() {
        let db = Db::open(opts(policy, background)).unwrap();
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                    .unwrap();
            })
        });
        db.flush().unwrap();
    }
    group.finish();
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn us(d: Duration) -> String {
    format!("{:.1}us", d.as_nanos() as f64 / 1e3)
}

/// One fixed-size load per config, timing every individual put: the tail
/// is where the two flush schedules differ.
fn latency_distribution(n: usize) {
    println!("\nput_latency ({n} sequential puts, {VALUE_LEN} B values):");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}  stalls",
        "config", "p50", "p99", "p99.9", "max"
    );
    for (policy, background, label) in configs() {
        let db = Db::open(opts(policy, background)).unwrap();
        let mut lat = Vec::with_capacity(n);
        for i in 0..n {
            let key = format!("key{i:012}").into_bytes();
            let t0 = Instant::now();
            db.put(key, vec![b'v'; VALUE_LEN]).unwrap();
            lat.push(t0.elapsed());
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.disk_entries, n as u64, "{label}: no writes lost");
        lat.sort();
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9}  {}",
            label,
            us(percentile(&lat, 0.50)),
            us(percentile(&lat, 0.99)),
            us(percentile(&lat, 0.999)),
            us(lat[lat.len() - 1]),
            stats.pipeline.stalls,
        );
    }
}

/// Point-lookup tail latency while a writer saturates the put path:
/// lookups read an immutable version snapshot, so an in-flight flush or
/// merge cascade must not show up in the get tail (in either mode — only
/// the brief memtable-insert lock is shared).
fn get_latency_under_write_load(n: usize) {
    println!("\nget_latency_under_write_load ({n} gets vs a saturating writer):");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "config", "p50", "p99", "p99.9", "max"
    );
    for (policy, background, label) in configs() {
        let db = Db::open(opts(policy, background)).unwrap();
        for i in 0..20_000usize {
            db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                .unwrap();
        }
        db.flush().unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut lat = Vec::with_capacity(n);
        crossbeam::scope(|scope| {
            let (db_ref, stop_ref) = (&db, &stop);
            scope.spawn(move |_| {
                let mut i = 20_000u64;
                while !stop_ref.load(std::sync::atomic::Ordering::Acquire) {
                    db_ref
                        .put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                        .unwrap();
                    i += 1;
                }
            });
            for i in 0..n {
                let key = format!("key{:012}", i % 20_000);
                let t0 = Instant::now();
                assert!(db.get(key.as_bytes()).unwrap().is_some());
                lat.push(t0.elapsed());
            }
            stop.store(true, std::sync::atomic::Ordering::Release);
        })
        .unwrap();
        lat.sort();
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9}",
            label,
            us(percentile(&lat, 0.50)),
            us(percentile(&lat, 0.99)),
            us(percentile(&lat, 0.999)),
            us(lat[lat.len() - 1]),
        );
    }
}

/// Shard scaling: the same multi-writer put load against a single-shard
/// store and a 4-shard store, then single-threaded get p99 against each.
/// With one shard, concurrent writers serialize on the memtable insert
/// lock and the single flush pipeline; with four, the hash router gives
/// each writer an (almost always) uncontended shard. The numbers land in
/// the repo-root `BENCH_shards.json` — on a 1-core runner the speedup row
/// is flagged rather than reported as a regression, because there is no
/// parallelism to exhibit.
fn shard_scaling(n: usize) {
    const WRITERS: usize = 4;
    let run = |shards: usize| -> (f64, f64, f64) {
        let db = Db::open(opts(MergePolicy::Leveling, true).shards(shards)).unwrap();
        let t0 = Instant::now();
        crossbeam::scope(|scope| {
            for w in 0..WRITERS {
                let db_ref = &db;
                scope.spawn(move |_| {
                    for i in (w..n).step_by(WRITERS) {
                        db_ref
                            .put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let puts_per_sec = n as f64 / t0.elapsed().as_secs_f64();
        db.flush().unwrap();
        assert_eq!(db.stats().disk_entries, n as u64, "no writes lost");
        let gets = n.min(20_000);
        let mut lat = Vec::with_capacity(gets);
        for i in 0..gets {
            let key = format!("key{i:012}");
            let t0 = Instant::now();
            assert!(db.get(key.as_bytes()).unwrap().is_some());
            lat.push(t0.elapsed());
        }
        lat.sort();
        (
            puts_per_sec,
            percentile(&lat, 0.99).as_nanos() as f64 / 1e3,
            lat[lat.len() - 1].as_nanos() as f64 / 1e3,
        )
    };
    let (eps1, get_p99_1, get_max_1) = run(1);
    let (eps4, get_p99_4, get_max_4) = run(4);
    let speedup = eps4 / eps1;
    println!(
        "\nshard_scaling ({n} puts from {WRITERS} writers, then {} gets):",
        n.min(20_000)
    );
    println!(
        "  1 shard : {eps1:>10.0} puts/s   get p99 {get_p99_1:>7.1}us  max {get_max_1:>9.1}us"
    );
    println!(
        "  4 shards: {eps4:>10.0} puts/s   get p99 {get_p99_4:>7.1}us  max {get_max_4:>9.1}us"
    );
    println!("  put speedup: {speedup:.2}x");
    if monkey_bench::single_core_runner() {
        println!(
            "  note: single-core runner — no parallelism to exhibit; the speedup \
             row is flagged in the artifact, not a regression"
        );
    }
    monkey_bench::emit_bench_artifact(
        "BENCH_shards.json",
        "put_scaling",
        &format!(
            "{{\"writers\": {WRITERS}, \"puts\": {n}, \
             \"puts_per_s_1shard\": {eps1:.0}, \"puts_per_s_4shard\": {eps4:.0}, \
             \"speedup\": {speedup:.3}{}}}",
            monkey_bench::single_core_flag()
        ),
    );
    monkey_bench::emit_bench_artifact(
        "BENCH_shards.json",
        "get_tail",
        &format!(
            "{{\"gets\": {}, \"p99_us_1shard\": {get_p99_1:.1}, \"p99_us_4shard\": {get_p99_4:.1}, \
             \"max_us_1shard\": {get_max_1:.1}, \"max_us_4shard\": {get_max_4:.1}}}",
            n.min(20_000)
        ),
    );
}

/// Telemetry overhead on the put path (acceptance bound: <2%): identical
/// sequential loads against the same store shape with the hub off and on,
/// best of three rounds each to shed scheduler noise. The on-run's full
/// report (histogram percentiles included) lands in the repo-root
/// `BENCH_telemetry.json` artifact next to the throughput delta.
fn telemetry_overhead(n: usize) {
    let run = |telemetry: bool| -> (f64, Option<String>) {
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..3 {
            let db = Db::open(opts(MergePolicy::Leveling, false).telemetry(telemetry)).unwrap();
            let t0 = Instant::now();
            for i in 0..n {
                db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                    .unwrap();
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
            db.flush().unwrap();
            report = db.telemetry_report().map(|r| r.to_json());
        }
        (best, report)
    };
    let (off, _) = run(false);
    let (on, report) = run(true);
    let overhead = (on - off) / off * 100.0;
    println!("\ntelemetry_overhead (put path, {n} puts, best of 3):");
    println!("  telemetry off: {off:.1} ns/put");
    println!("  telemetry on:  {on:.1} ns/put   overhead {overhead:+.2}%");
    monkey_bench::emit_bench_telemetry(
        "write",
        &format!(
            "{{\"puts\": {n}, \"ns_per_put_off\": {off:.1}, \"ns_per_put_on\": {on:.1}, \
             \"overhead_pct\": {overhead:.2}, \"report\": {}}}",
            report.expect("telemetry report")
        ),
    );
}

/// Causal-tracing overhead on top of plain telemetry (acceptance bound:
/// <2% on put and get): identical sequential loads with the hub on, then
/// with the tracer also sampling at the default period. In-memory, so
/// this bounds the pure CPU cost of the sampler tick and span plumbing —
/// the strictest case; a directory-backed store amortizes it under WAL
/// writes (and its flight-recorder appends ride the flush slow path, not
/// the op path). The off/on rounds are interleaved so scheduler and
/// thermal drift hit both sides equally, with best-of-5 per side. The
/// deltas land in `BENCH_telemetry.json` next to the telemetry ones.
fn tracing_overhead(n: usize) {
    let round = |tracing: bool| -> (f64, f64) {
        let mut o = opts(MergePolicy::Leveling, false).telemetry(true);
        if tracing {
            o = o.tracing(true);
        }
        let db = Db::open(o).unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                .unwrap();
        }
        let put = t0.elapsed().as_nanos() as f64 / n as f64;
        db.flush().unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            assert!(db.get(format!("key{i:012}").as_bytes()).unwrap().is_some());
        }
        (put, t0.elapsed().as_nanos() as f64 / n as f64)
    };
    let (mut put_off, mut get_off) = (f64::INFINITY, f64::INFINITY);
    let (mut put_on, mut get_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let (p, g) = round(false);
        put_off = put_off.min(p);
        get_off = get_off.min(g);
        let (p, g) = round(true);
        put_on = put_on.min(p);
        get_on = get_on.min(g);
    }
    let put_overhead = (put_on - put_off) / put_off * 100.0;
    let get_overhead = (get_on - get_off) / get_off * 100.0;
    println!("\ntracing_overhead (telemetry on in both runs, {n} ops, interleaved best of 5):");
    println!("  puts: {put_off:.1} -> {put_on:.1} ns/op   overhead {put_overhead:+.2}%");
    println!("  gets: {get_off:.1} -> {get_on:.1} ns/op   overhead {get_overhead:+.2}%");
    monkey_bench::emit_bench_telemetry(
        "tracing",
        &format!(
            "{{\"ops\": {n}, \"ns_per_put_off\": {put_off:.1}, \"ns_per_put_on\": {put_on:.1}, \
             \"put_overhead_pct\": {put_overhead:.2}, \"ns_per_get_off\": {get_off:.1}, \
             \"ns_per_get_on\": {get_on:.1}, \"get_overhead_pct\": {get_overhead:.2}}}"
        ),
    );
}

/// Observatory overhead on top of plain telemetry: the same put load with
/// the hub on, then with the `monkey-obs-sampler` thread also cutting
/// windows — at a production-shaped 100ms interval and at an aggressive
/// 1ms one (the latter matters on few-core boxes, where a hyperactive
/// sampler thread competes with the writer for CPU, not because a tick
/// is expensive). The put path itself is identical in all three runs, so
/// the deltas bound the whole windowed-series machinery against the <2%
/// telemetry budget.
fn observatory_overhead(n: usize) {
    let run = |interval: Option<Duration>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut o = opts(MergePolicy::Leveling, false).telemetry(true);
            if let Some(interval) = interval {
                o = o.observatory_interval(interval).observatory_retention(256);
            }
            let db = Db::open(o).unwrap();
            let t0 = Instant::now();
            for i in 0..n {
                db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                    .unwrap();
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
            db.flush().unwrap();
        }
        best
    };
    let plain = run(None);
    let relaxed = run(Some(Duration::from_millis(100)));
    let aggressive = run(Some(Duration::from_millis(1)));
    println!("\nobservatory_overhead (put path, {n} puts, best of 3):");
    println!("  telemetry on, no sampler: {plain:.1} ns/put");
    println!(
        "  + 100ms sampler thread:   {relaxed:.1} ns/put   overhead {:+.2}%",
        (relaxed - plain) / plain * 100.0
    );
    println!(
        "  + 1ms sampler thread:     {aggressive:.1} ns/put   overhead {:+.2}%",
        (aggressive - plain) / plain * 100.0
    );
}

criterion_group!(benches, bench_put_throughput);

fn main() {
    // `cargo test --benches` passes `--test`: keep the smoke run cheap.
    let test_mode = std::env::args().any(|a| a == "--test");
    // `--overhead` runs only the overhead harnesses (repeat runs to map
    // the noise floor without paying for the full latency suites).
    let overhead_only = std::env::args().any(|a| a == "--overhead");
    if !overhead_only {
        benches();
        latency_distribution(if test_mode { 2_000 } else { 200_000 });
        get_latency_under_write_load(if test_mode { 2_000 } else { 100_000 });
        shard_scaling(if test_mode { 4_000 } else { 200_000 });
    }
    telemetry_overhead(if test_mode { 2_000 } else { 200_000 });
    tracing_overhead(if test_mode { 2_000 } else { 200_000 });
    observatory_overhead(if test_mode { 2_000 } else { 200_000 });
}
