//! End-to-end point-lookup benchmarks over the engine's fast path.
//!
//! Crosses the two filter allocations the paper compares (uniform vs
//! Monkey) with the two filter layouts (standard flat vs cache-line
//! blocked), for both zero-result and existing-key gets. The lookup path
//! hashes the key once and reuses the pair across every run's filter, so
//! these numbers measure the whole fast path: fence pre-check, shared
//! hash, filter probes, and any page reads.

use criterion::{criterion_group, criterion_main, Criterion};
use monkey::FilterVariant;
use monkey_bench::{load, ExpConfig, FilterKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn cfg() -> ExpConfig {
    ExpConfig {
        entries: 1 << 14,
        ..ExpConfig::paper_default()
    }
}

fn variants() -> [(FilterKind, FilterVariant, &'static str); 4] {
    [
        (
            FilterKind::Uniform(5.0),
            FilterVariant::Standard,
            "uniform_standard",
        ),
        (
            FilterKind::Uniform(5.0),
            FilterVariant::Blocked,
            "uniform_blocked",
        ),
        (
            FilterKind::Monkey(5.0),
            FilterVariant::Standard,
            "monkey_standard",
        ),
        (
            FilterKind::Monkey(5.0),
            FilterVariant::Blocked,
            "monkey_blocked",
        ),
    ]
}

fn bench_zero_result(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_zero_result");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (filters, variant, label) in variants() {
        let loaded = load(&cfg().with_filters(filters).with_variant(variant), 1);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let key = loaded.keys.random_missing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_none());
            })
        });
    }
    group.finish();
}

fn bench_existing(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_existing");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (filters, variant, label) in variants() {
        let loaded = load(&cfg().with_filters(filters).with_variant(variant), 1);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let (_, key) = loaded.keys.random_existing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zero_result, bench_existing);
criterion_main!(benches);
