//! End-to-end point-lookup benchmarks over the engine's fast path.
//!
//! Crosses the two filter allocations the paper compares (uniform vs
//! Monkey) with the two filter layouts (standard flat vs cache-line
//! blocked), for both zero-result and existing-key gets. The lookup path
//! hashes the key once and reuses the pair across every run's filter, so
//! these numbers measure the whole fast path: fence pre-check, shared
//! hash, filter probes, and any page reads.

use criterion::{criterion_group, Criterion};
use monkey::FilterVariant;
use monkey_bench::{load, ExpConfig, FilterKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn cfg() -> ExpConfig {
    ExpConfig {
        entries: 1 << 14,
        ..ExpConfig::paper_default()
    }
}

fn variants() -> [(FilterKind, FilterVariant, &'static str); 4] {
    [
        (
            FilterKind::Uniform(5.0),
            FilterVariant::Standard,
            "uniform_standard",
        ),
        (
            FilterKind::Uniform(5.0),
            FilterVariant::Blocked,
            "uniform_blocked",
        ),
        (
            FilterKind::Monkey(5.0),
            FilterVariant::Standard,
            "monkey_standard",
        ),
        (
            FilterKind::Monkey(5.0),
            FilterVariant::Blocked,
            "monkey_blocked",
        ),
    ]
}

fn bench_zero_result(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_zero_result");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (filters, variant, label) in variants() {
        let loaded = load(&cfg().with_filters(filters).with_variant(variant), 1);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let key = loaded.keys.random_missing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_none());
            })
        });
    }
    group.finish();
}

fn bench_existing(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_existing");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (filters, variant, label) in variants() {
        let loaded = load(&cfg().with_filters(filters).with_variant(variant), 1);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let (_, key) = loaded.keys.random_existing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_some());
            })
        });
    }
    group.finish();
}

/// Telemetry overhead on the lookup path (acceptance bound: <2%): the
/// same seeded zero-result workload against identically loaded stores
/// with the hub off and on, best of three rounds each. The on-run's
/// report (latency percentiles, per-level counters) is merged into the
/// repo-root `BENCH_telemetry.json` artifact with the throughput delta.
fn telemetry_overhead(n: u64) {
    let run = |telemetry: bool| -> (f64, Option<String>) {
        let loaded = load(&cfg().with_telemetry(telemetry), 1);
        let mut best = f64::INFINITY;
        for round in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(100 + round);
            let t0 = std::time::Instant::now();
            for _ in 0..n {
                let key = loaded.keys.random_missing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_none());
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
        }
        (best, loaded.db.telemetry_report().map(|r| r.to_json()))
    };
    let (off, _) = run(false);
    let (on, report) = run(true);
    let overhead = (on - off) / off * 100.0;
    println!("\ntelemetry_overhead (zero-result get, {n} lookups, best of 3):");
    println!("  telemetry off: {off:.1} ns/get");
    println!("  telemetry on:  {on:.1} ns/get   overhead {overhead:+.2}%");
    monkey_bench::emit_bench_telemetry(
        "lookup",
        &format!(
            "{{\"lookups\": {n}, \"ns_per_get_off\": {off:.1}, \"ns_per_get_on\": {on:.1}, \
             \"overhead_pct\": {overhead:.2}, \"report\": {}}}",
            report.expect("telemetry report")
        ),
    );
}

criterion_group!(benches, bench_zero_result, bench_existing);

fn main() {
    benches();
    // `cargo test --benches` passes `--test`: keep the smoke run cheap.
    let test_mode = std::env::args().any(|a| a == "--test");
    telemetry_overhead(if test_mode { 2_000 } else { 100_000 });
}
