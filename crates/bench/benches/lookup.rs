//! End-to-end point-lookup benchmarks over the engine's fast path.
//!
//! Crosses the two filter allocations the paper compares (uniform vs
//! Monkey) with the two filter layouts (standard flat vs cache-line
//! blocked), for both zero-result and existing-key gets. The lookup path
//! hashes the key once and reuses the pair across every run's filter, so
//! these numbers measure the whole fast path: fence pre-check, shared
//! hash, filter probes, and any page reads.

use criterion::{criterion_group, Criterion};
use monkey::FilterVariant;
use monkey_bench::{load, ExpConfig, FilterKind};
use monkey_lsm::page::{decode_page, search_page, PageBuilder, PageCursor};
use monkey_lsm::Entry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn cfg() -> ExpConfig {
    ExpConfig {
        entries: 1 << 14,
        ..ExpConfig::paper_default()
    }
}

fn variants() -> [(FilterKind, FilterVariant, &'static str); 4] {
    [
        (
            FilterKind::Uniform(5.0),
            FilterVariant::Standard,
            "uniform_standard",
        ),
        (
            FilterKind::Uniform(5.0),
            FilterVariant::Blocked,
            "uniform_blocked",
        ),
        (
            FilterKind::Monkey(5.0),
            FilterVariant::Standard,
            "monkey_standard",
        ),
        (
            FilterKind::Monkey(5.0),
            FilterVariant::Blocked,
            "monkey_blocked",
        ),
    ]
}

fn bench_zero_result(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_zero_result");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (filters, variant, label) in variants() {
        let loaded = load(&cfg().with_filters(filters).with_variant(variant), 1);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let key = loaded.keys.random_missing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_none());
            })
        });
    }
    group.finish();
}

fn bench_existing(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_existing");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (filters, variant, label) in variants() {
        let loaded = load(&cfg().with_filters(filters).with_variant(variant), 1);
        let mut rng = StdRng::seed_from_u64(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let (_, key) = loaded.keys.random_existing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_some());
            })
        });
    }
    group.finish();
}

/// Telemetry overhead on the lookup path (acceptance bound: <2%): the
/// same seeded zero-result workload against identically loaded stores
/// with the hub off and on, best of three rounds each. The on-run's
/// report (latency percentiles, per-level counters) is merged into the
/// repo-root `BENCH_telemetry.json` artifact with the throughput delta.
fn telemetry_overhead(n: u64) {
    let run = |telemetry: bool| -> (f64, Option<String>) {
        let loaded = load(&cfg().with_telemetry(telemetry), 1);
        let mut best = f64::INFINITY;
        for round in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(100 + round);
            let t0 = std::time::Instant::now();
            for _ in 0..n {
                let key = loaded.keys.random_missing(&mut rng);
                assert!(loaded.db.get(&key).expect("get").is_none());
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
        }
        (best, loaded.db.telemetry_report().map(|r| r.to_json()))
    };
    let (off, _) = run(false);
    let (on, report) = run(true);
    let overhead = (on - off) / off * 100.0;
    println!("\ntelemetry_overhead (zero-result get, {n} lookups, best of 3):");
    println!("  telemetry off: {off:.1} ns/get");
    println!("  telemetry on:  {on:.1} ns/get   overhead {overhead:+.2}%");
    monkey_bench::emit_bench_telemetry(
        "lookup",
        &format!(
            "{{\"lookups\": {n}, \"ns_per_get_off\": {off:.1}, \"ns_per_get_on\": {on:.1}, \
             \"overhead_pct\": {overhead:.2}, \"report\": {}}}",
            report.expect("telemetry report")
        ),
    );
}

/// The page-probe step of a point lookup in isolation: the old
/// materializing path (`decode_page` into a `Vec<Entry>` then binary
/// search) against the zero-copy `PageCursor::search` that
/// `Run::get_hashed` now uses. Same encoded page, same probe keys.
fn bench_page_probe(c: &mut Criterion) {
    let mut builder = PageBuilder::new(4096);
    let mut i = 0u32;
    while builder.fits(&Entry::put(
        format!("key{i:06}").into_bytes(),
        vec![b'v'; 24],
        i as u64,
    )) {
        builder
            .push(&Entry::put(
                format!("key{i:06}").into_bytes(),
                vec![b'v'; 24],
                i as u64,
            ))
            .expect("push");
        i += 1;
    }
    let page = bytes::Bytes::from(builder.finish());
    let n = i;
    let mut group = c.benchmark_group("page_probe");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let mut k = 0u32;
    group.bench_function("decode_vec_then_search", |b| {
        b.iter(|| {
            k = (k + 7) % n;
            let entries = decode_page(&page).expect("decode");
            assert!(search_page(&entries, format!("key{k:06}").as_bytes()).is_some());
        })
    });
    group.bench_function("zero_copy_cursor", |b| {
        b.iter(|| {
            k = (k + 7) % n;
            let hit = PageCursor::new(page.clone())
                .expect("cursor")
                .search(format!("key{k:06}").as_bytes())
                .expect("search");
            assert!(hit.is_some());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_zero_result, bench_existing, bench_page_probe);

fn main() {
    benches();
    // `cargo test --benches` passes `--test`: keep the smoke run cheap.
    let test_mode = std::env::args().any(|a| a == "--test");
    telemetry_overhead(if test_mode { 2_000 } else { 100_000 });
}
