//! Bloom filter micro-benchmarks: the per-probe cost that sits on every
//! point lookup's critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use monkey_bloom::{hash::xxh64, BloomFilter};
use std::time::Duration;

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    for len in [8usize, 64, 1024] {
        let data = vec![7u8; len];
        group.bench_function(format!("xxh64_{len}b"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                xxh64(&data, seed)
            })
        });
    }
    group.finish();
}

fn bench_filter_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    for bpe in [5.0, 10.0] {
        let n = 100_000u64;
        let mut filter = BloomFilter::with_bits_per_entry(n, bpe);
        for i in 0..n {
            filter.insert(&i.to_le_bytes());
        }
        let mut probe = 0u64;
        group.bench_function(format!("contains_hit_{bpe}bpe"), |b| {
            b.iter(|| {
                probe = (probe + 1) % n;
                assert!(filter.contains(&probe.to_le_bytes()));
            })
        });
        let mut probe = n;
        group.bench_function(format!("contains_miss_{bpe}bpe"), |b| {
            b.iter(|| {
                probe += 1;
                filter.contains(&probe.to_le_bytes())
            })
        });
    }
    let mut i = 0u64;
    group.bench_function("insert", |b| {
        let mut filter = BloomFilter::with_bits_per_entry(1 << 20, 10.0);
        b.iter(|| {
            i += 1;
            filter.insert(&i.to_le_bytes());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hash, bench_filter_ops);
criterion_main!(benches);
