//! Bloom filter micro-benchmarks: the per-probe cost that sits on every
//! point lookup's critical path.

use criterion::{criterion_group, criterion_main, Criterion};
use monkey_bloom::{hash::xxh64, hash_pair, BlockedBloomFilter, BloomFilter};
use std::time::Duration;

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for len in [8usize, 64, 1024] {
        let data = vec![7u8; len];
        group.bench_function(format!("xxh64_{len}b"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                xxh64(&data, seed)
            })
        });
    }
    group.finish();
}

fn bench_filter_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    for bpe in [5.0, 10.0] {
        let n = 100_000u64;
        let mut filter = BloomFilter::with_bits_per_entry(n, bpe);
        for i in 0..n {
            filter.insert(&i.to_le_bytes());
        }
        let mut probe = 0u64;
        group.bench_function(format!("contains_hit_{bpe}bpe"), |b| {
            b.iter(|| {
                probe = (probe + 1) % n;
                assert!(filter.contains(&probe.to_le_bytes()));
            })
        });
        let mut probe = n;
        group.bench_function(format!("contains_miss_{bpe}bpe"), |b| {
            b.iter(|| {
                probe += 1;
                filter.contains(&probe.to_le_bytes())
            })
        });
    }
    let mut i = 0u64;
    group.bench_function("insert", |b| {
        let mut filter = BloomFilter::with_bits_per_entry(1 << 20, 10.0);
        b.iter(|| {
            i += 1;
            filter.insert(&i.to_le_bytes());
        })
    });
    group.finish();
}

/// Standard vs blocked probe throughput, with the hash precomputed (the
/// engine's fast path) so the numbers isolate the memory-access pattern.
/// Sizes span in-cache (16 Ki entries at 10 bpe ≈ 20 KiB, fits in L1/L2)
/// to out-of-cache (8 Mi entries ≈ 10 MiB, larger than typical L3), where
/// the blocked layout's one-cache-line guarantee should pay off.
fn bench_variant_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("variant_probe");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (n, size_label) in [(1u64 << 14, "in_cache"), (1u64 << 23, "out_of_cache")] {
        let mut standard = BloomFilter::with_bits_per_entry(n, 10.0);
        let mut blocked = BlockedBloomFilter::with_bits_per_entry(n, 10.0);
        for i in 0..n {
            let pair = hash_pair(&i.to_le_bytes());
            standard.insert_hashed(pair);
            blocked.insert_hashed(pair);
        }
        // Pre-hash the miss keys: the benchmark measures probes, not hashing.
        let pairs: Vec<_> = (n..n + 4096).map(|i| hash_pair(&i.to_le_bytes())).collect();
        let mut i = 0usize;
        group.bench_function(format!("standard_miss_{size_label}"), |b| {
            b.iter(|| {
                i = (i + 1) & 4095;
                standard.contains_hashed(pairs[i])
            })
        });
        let mut i = 0usize;
        group.bench_function(format!("blocked_miss_{size_label}"), |b| {
            b.iter(|| {
                i = (i + 1) & 4095;
                blocked.contains_hashed(pairs[i])
            })
        });
    }
    group.finish();
}

/// Seed probe path vs the current one, isolated at the filter level. The
/// seed hashed the key on every probe and reduced positions with `%`; the
/// current path hashes once upstream and reduces with the multiply-shift
/// fast range. A legacy-format filter (decoded without the format magic)
/// still probes with `%`, giving an honest reproduction of the old cost on
/// identical bits.
fn bench_probe_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_scheme");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let n = 1u64 << 20;
    let mut filter = BloomFilter::with_bits_per_entry(n, 10.0);
    for i in 0..n {
        filter.insert(&i.to_le_bytes());
    }
    let mut buf = Vec::new();
    filter.encode(&mut buf);
    // Strip the 4-byte format magic: the remainder is a valid legacy
    // stream, and decoding it yields a filter that probes with `%`.
    let (legacy, _) = BloomFilter::decode(&buf[4..]).expect("legacy layout");
    let keys: Vec<[u8; 8]> = (n..n + 4096).map(|i| i.to_le_bytes()).collect();
    let pairs: Vec<_> = keys.iter().map(|k| hash_pair(k)).collect();
    let mut i = 0usize;
    group.bench_function("seed_hash_plus_modulus", |b| {
        b.iter(|| {
            i = (i + 1) & 4095;
            legacy.contains(&keys[i])
        })
    });
    let mut i = 0usize;
    group.bench_function("fastrange_keyed", |b| {
        b.iter(|| {
            i = (i + 1) & 4095;
            filter.contains(&keys[i])
        })
    });
    let mut i = 0usize;
    group.bench_function("fastrange_prehashed", |b| {
        b.iter(|| {
            i = (i + 1) & 4095;
            filter.contains_hashed(pairs[i])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash,
    bench_filter_ops,
    bench_variant_probe,
    bench_probe_scheme
);
criterion_main!(benches);
