//! Model micro-benchmarks: the cost of the analytical machinery itself —
//! the paper notes the tuner "runs in milliseconds" and the filter
//! autotuner "takes a fraction of a second".

use criterion::{criterion_group, criterion_main, Criterion};
use monkey_model::autotune::{autotune_filters, RunSpec};
use monkey_model::{
    optimal_fprs, optimal_fprs_for_run_sizes, tune, Environment, MemoryAllocation, MemoryStrategy,
    Params, Policy, TuningConstraints, Workload,
};
use std::time::Duration;

fn bench_assignments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fpr_assignment");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("optimal_fprs_L10", |b| {
        b.iter(|| optimal_fprs(10, 4.0, Policy::Leveling, 0.1))
    });
    let sizes: Vec<f64> = (0..10).map(|i| 1000.0 * 4f64.powi(i)).collect();
    group.bench_function("run_sizes_solver_10_runs", |b| {
        b.iter(|| optimal_fprs_for_run_sizes(&sizes, 5.0 * sizes.iter().sum::<f64>()))
    });
    group.finish();
}

fn bench_tuner(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuner");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let p = Params::new(1048576.0, 8192.0, 32768.0, 8388608.0, 2.0, Policy::Leveling);
    let strat = MemoryStrategy::Fixed(MemoryAllocation {
        buffer_bits: p.buffer_bits,
        filter_bits: 5.0 * p.entries,
    });
    let env = Environment::disk();
    let wl = Workload::lookups_vs_updates(0.7);
    group.bench_function("divide_and_conquer", |b| {
        b.iter(|| tune(&p, &strat, &wl, &env, &TuningConstraints::default()))
    });
    group.finish();
}

fn bench_autotune(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix_c");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("autotune_8_runs", |b| {
        b.iter(|| {
            let mut runs: Vec<RunSpec> =
                (0..8).map(|i| RunSpec::new(100.0 * 3f64.powi(i))).collect();
            autotune_filters(5.0 * runs.iter().map(|r| r.entries).sum::<f64>(), &mut runs)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_assignments, bench_tuner, bench_autotune);
criterion_main!(benches);
