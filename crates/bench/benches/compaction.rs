//! Merge-engine benchmarks: merge wall-clock throughput as a function of
//! `compaction_threads`, and the put-stall tail under saturating writes
//! with sequential vs parallel cascades. Results merge into the repo-root
//! `BENCH_compaction.json` artifact (EXPERIMENTS.md quotes them).
//!
//! The parallel merge is byte-identical to the sequential one and charges
//! the same `IoStats`, so thread count is *pure* wall-clock: these tables
//! are the whole observable difference. Speedup scales with physical
//! cores — on a single-core runner expect ~1.0×.

use monkey_lsm::compaction::build_run_from_sorted;
use monkey_lsm::merge::merge_runs_with;
use monkey_lsm::{Db, DbOptions, Entry, MergePolicy, Run};
use monkey_storage::Disk;
use std::sync::Arc;
use std::time::Instant;

/// `n_runs` runs with interleaved keys — every output page draws from all
/// inputs, the worst (and common) case for a leveled cascade merge.
fn build_inputs(disk: &Arc<Disk>, n_runs: usize, per_run: usize) -> Vec<Arc<Run>> {
    (0..n_runs)
        .map(|r| {
            let entries: Vec<Entry> = (0..per_run)
                .map(|i| {
                    let k = i * n_runs + r;
                    Entry::put(
                        format!("key{k:08}").into_bytes(),
                        vec![b'v'; 64],
                        (r * per_run + i) as u64,
                    )
                })
                .collect();
            build_run_from_sorted(disk, entries, false, 1, 10.0)
                .expect("build input run")
                .expect("non-empty run")
        })
        .collect()
}

/// Best-of-`rounds` wall-clock merge throughput (entries/s) per thread
/// count, with identical inputs rebuilt on a fresh in-memory disk each
/// round so cache state and run ids match across configurations.
fn merge_throughput(n_runs: usize, per_run: usize, rounds: usize) -> Vec<(usize, f64, u32)> {
    [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let mut best = f64::INFINITY;
            let mut partitions = 0;
            for _ in 0..rounds {
                let disk = Disk::mem(4096);
                let inputs = build_inputs(&disk, n_runs, per_run);
                let t0 = Instant::now();
                let (out, report) =
                    merge_runs_with(&disk, &inputs, false, 1, 10.0, threads).expect("merge");
                best = best.min(t0.elapsed().as_secs_f64());
                partitions = report.partitions;
                assert_eq!(
                    out.expect("output run").entries(),
                    (n_runs * per_run) as u64
                );
            }
            (threads, (n_runs * per_run) as f64 / best, partitions)
        })
        .collect()
}

/// Saturating-write put latencies against a background-compacting store:
/// every put timed individually, returns (p99, max) in microseconds.
/// Stalls happen when the immutable queue is full, i.e. exactly when the
/// cascade can't keep up — the tail is where merge throughput shows.
fn put_stall_tail(threads: usize, puts: usize) -> (f64, f64) {
    let db = Db::open(
        DbOptions::in_memory()
            .page_size(4096)
            .buffer_capacity(32 << 10)
            .size_ratio(3)
            .merge_policy(MergePolicy::Leveling)
            .compaction_threads(threads)
            .background_compaction(true)
            .max_immutable_memtables(4)
            .uniform_filters(10.0),
    )
    .expect("open");
    let mut lat_us: Vec<f64> = Vec::with_capacity(puts);
    for i in 0..puts {
        let key = format!("key{:08}", (i * 131) % (puts * 2)).into_bytes();
        let t0 = Instant::now();
        db.put(key, vec![b'w'; 64]).expect("put");
        lat_us.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
    }
    db.flush().expect("drain");
    lat_us.sort_by(f64::total_cmp);
    let p99 = lat_us[(lat_us.len() as f64 * 0.99) as usize - 1];
    (p99, *lat_us.last().expect("non-empty"))
}

fn main() {
    // `cargo test --benches` / `cargo bench -- --test`: keep the smoke
    // run cheap but exercise every code path, including real parallelism.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (n_runs, per_run, rounds, puts) = if test_mode {
        (3, 4_000, 1, 8_000)
    } else {
        (4, 60_000, 3, 120_000)
    };

    let rows = merge_throughput(n_runs, per_run, rounds);
    let base = rows[0].1;
    println!(
        "\nmerge_throughput ({} runs x {} entries, best of {rounds}):",
        n_runs, per_run
    );
    for &(threads, eps, partitions) in &rows {
        println!(
            "  {threads} thread(s): {:>10.0} entries/s   {:>5.2}x   ({partitions} partitions)",
            eps,
            eps / base
        );
    }
    if monkey_bench::single_core_runner() {
        println!(
            "  note: single-core runner — multi-thread rows measure scheduling \
             overhead, not speedup; flagged in the artifact, not a regression"
        );
    }

    let (p99_seq, max_seq) = put_stall_tail(1, puts);
    let (p99_par, max_par) = put_stall_tail(4, puts);
    println!("\nput_stall_tail ({puts} saturating puts, background cascades):");
    println!("  1 thread : p99 {p99_seq:>8.1} us   max {max_seq:>10.1} us");
    println!("  4 threads: p99 {p99_par:>8.1} us   max {max_par:>10.1} us");

    let threads_json = rows
        .iter()
        .map(|(t, eps, parts)| {
            format!(
                "\"{t}\": {{\"entries_per_s\": {eps:.0}, \"speedup\": {:.3}, \"partitions\": {parts}{}}}",
                eps / base,
                if *t > 1 { monkey_bench::single_core_flag() } else { "" }
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    monkey_bench::emit_bench_artifact(
        "BENCH_compaction.json",
        "merge_throughput",
        &format!(
            "{{\"runs\": {n_runs}, \"entries_per_run\": {per_run}, \"cores\": {}, {threads_json}}}",
            monkey_bench::host_parallelism()
        ),
    );
    monkey_bench::emit_bench_artifact(
        "BENCH_compaction.json",
        "put_stall",
        &format!(
            "{{\"puts\": {puts}, \"p99_us_1t\": {p99_seq:.1}, \"p99_us_4t\": {p99_par:.1}, \
             \"max_us_1t\": {max_seq:.1}, \"max_us_4t\": {max_par:.1}}}"
        ),
    );
}
