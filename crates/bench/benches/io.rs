//! Raw-speed I/O backend benchmarks: what the `O_DIRECT` (+ io_uring)
//! backend and WAL fsync batching buy on real files.
//!
//! Three measurements, each emitted into the repo-root `BENCH_io.json`
//! artifact:
//!
//! 1. **Cold-read latency** — point lookups against a freshly reopened
//!    directory store, per backend. Buffered reads answer from the OS
//!    page cache once it warms; direct reads pay the device every time,
//!    which is the whole point — the direct row is the device-true
//!    number the paper's lookup-cost figures want.
//! 2. **Merge throughput** — sustained load pushing merge cascades, per
//!    backend, exercising the batched readahead path (`read_scattered`
//!    windows of 8 pages per submission, io_uring when compiled in).
//! 3. **Syncs-per-commit** — saturating concurrent writers on a sharded
//!    store with `wal_sync_each_append`, fsync batching on vs off. With
//!    batching on, group commits coalesce onto shared fsync epochs and
//!    the ratio drops below 1; off, every group commit pays its own.
//!
//! Rows record the *active* backend kind (`buffered`, `direct`,
//! `direct+uring`) plus any fallback reason, so an artifact produced on
//! a filesystem without `O_DIRECT` support is self-describing.

use monkey::{Db, DbOptions, DbOptionsExt, IoBackend, MergePolicy};
use std::sync::Arc;
use std::time::Instant;

const VALUE_LEN: usize = 64;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("monkey-io-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(dir: &std::path::Path, backend: IoBackend) -> DbOptions {
    DbOptions::at_path(dir)
        .page_size(4096)
        .buffer_capacity(256 << 10)
        .size_ratio(3)
        .merge_policy(MergePolicy::Leveling)
        .monkey_filters(5.0)
        .io_backend(backend)
        .shards(1)
}

/// `"backend": ..., "fallback": ...` fragment describing what actually
/// served the I/O (the fallback ladder may have demoted the request).
fn backend_fragment(db: &Db) -> String {
    let info = db.io_backend_info();
    match &info.fallback {
        Some(reason) => format!(
            "\"backend\": \"{}\", \"fallback\": \"{}\"",
            info.kind,
            reason.replace('"', "'")
        ),
        None => format!("\"backend\": \"{}\"", info.kind),
    }
}

/// Point lookups against a reopened store: build once per backend, drop,
/// reopen, then read keys in a scrambled order. The first pass after
/// reopen is cold on both backends; later passes stay device-cold only
/// under direct I/O.
fn cold_read_latency(n: usize, reads: usize) {
    println!("\ncold_read_latency ({n} resident entries, {reads} point reads after reopen):");
    let mut rows = Vec::new();
    for backend in [IoBackend::Buffered, IoBackend::Direct] {
        let dir = tempdir(&format!("cold-{}", backend.name()));
        let db = Db::open(opts(&dir, backend)).unwrap();
        for i in 0..n {
            db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                .unwrap();
        }
        db.flush().unwrap();
        drop(db);
        let db = Db::open(opts(&dir, backend)).unwrap();
        let t0 = Instant::now();
        for r in 0..reads {
            let i = (r * 2_654_435_761) % n; // scrambled, full coverage
            assert!(db.get(format!("key{i:012}").as_bytes()).unwrap().is_some());
        }
        let micros = t0.elapsed().as_nanos() as f64 / 1e3 / reads as f64;
        let io = db.io();
        println!(
            "  {:<14} {micros:>8.2} us/get   ({} page reads, {} seeks)",
            db.io_backend_info().kind,
            io.page_reads,
            io.seeks
        );
        rows.push(format!(
            "{{{}, \"requested\": \"{}\", \"micros_per_get\": {micros:.2}, \
             \"page_reads\": {}, \"seeks\": {}}}",
            backend_fragment(&db),
            backend.name(),
            io.page_reads,
            io.seeks
        ));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    monkey_bench::emit_bench_artifact(
        "BENCH_io.json",
        "cold_read_latency",
        &format!(
            "{{\"entries\": {n}, \"reads\": {reads}, \"rows\": [{}]}}",
            rows.join(", ")
        ),
    );
}

/// Sustained puts driving merge cascades: throughput of the whole write
/// pipeline — memtable flush, batched-readahead merges, run builds — per
/// backend.
fn merge_throughput(n: usize) {
    println!("\nmerge_throughput ({n} puts through cascaded merges):");
    let mut rows = Vec::new();
    for backend in [IoBackend::Buffered, IoBackend::Direct] {
        let dir = tempdir(&format!("merge-{}", backend.name()));
        let db = Db::open(opts(&dir, backend)).unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            // Overwrite-heavy keyspace: keeps merges busy discarding.
            db.put(
                format!("key{:09}", (i * 31) % (n / 2).max(1)).into_bytes(),
                vec![b'v'; VALUE_LEN],
            )
            .unwrap();
        }
        db.flush().unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let kops = n as f64 / secs / 1e3;
        let io = db.io();
        println!(
            "  {:<14} {kops:>8.1} kops/s   ({} pages read, {} written)",
            db.io_backend_info().kind,
            io.page_reads,
            io.page_writes
        );
        rows.push(format!(
            "{{{}, \"requested\": \"{}\", \"kops_per_sec\": {kops:.1}, \
             \"page_reads\": {}, \"page_writes\": {}}}",
            backend_fragment(&db),
            backend.name(),
            io.page_reads,
            io.page_writes
        ));
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    monkey_bench::emit_bench_artifact(
        "BENCH_io.json",
        "merge_throughput",
        &format!("{{\"ops\": {n}, \"rows\": [{}]}}", rows.join(", ")),
    );
}

/// Saturating writers on a sharded store with fsync-per-append: physical
/// syncs per group commit, fsync batching on vs off. (Coalescing needs
/// overlapping committers, so on a single-core runner the on-row is
/// scheduling-limited — flagged accordingly.)
fn syncs_per_commit(threads: usize, per_thread: usize) {
    println!(
        "\nsyncs_per_commit ({threads} writers x {per_thread} puts, 4 shards, fsync per append):"
    );
    let round = |batching: bool| -> (u64, u64, f64) {
        let dir = tempdir(&format!("sync-{batching}"));
        let db = Arc::new(
            Db::open(
                DbOptions::at_path(&dir)
                    .page_size(4096)
                    .buffer_capacity(4 << 20)
                    .wal_sync_each_append(true)
                    .wal_fsync_batching(batching)
                    .shards(4),
            )
            .unwrap(),
        );
        std::thread::scope(|scope| {
            for t in 0..threads {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let seq = t * per_thread + i;
                        db.put(format!("key{seq:09}").into_bytes(), vec![b'v'; 24])
                            .unwrap();
                    }
                });
            }
        });
        let stats = db.pipeline_stats();
        let ratio = stats.wal_syncs as f64 / stats.wal_group_commits.max(1) as f64;
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
        (stats.wal_syncs, stats.wal_group_commits, ratio)
    };
    let (syncs_on, commits_on, ratio_on) = round(true);
    let (syncs_off, commits_off, ratio_off) = round(false);
    println!("  batching on:  {ratio_on:.3} syncs/commit ({syncs_on} syncs / {commits_on} group commits)");
    println!("  batching off: {ratio_off:.3} syncs/commit ({syncs_off} syncs / {commits_off} group commits)");
    monkey_bench::emit_bench_artifact(
        "BENCH_io.json",
        "syncs_per_commit",
        &format!(
            "{{\"threads\": {threads}, \"puts_per_thread\": {per_thread}, \"shards\": 4, \
             \"batching_on\": {{\"syncs\": {syncs_on}, \"group_commits\": {commits_on}, \
             \"syncs_per_commit\": {ratio_on:.3}}}, \
             \"batching_off\": {{\"syncs\": {syncs_off}, \"group_commits\": {commits_off}, \
             \"syncs_per_commit\": {ratio_off:.3}}}{}}}",
            monkey_bench::single_core_flag()
        ),
    );
}

fn main() {
    // `cargo test --benches` passes `--test`: keep the smoke run cheap.
    let test_mode = std::env::args().any(|a| a == "--test");
    cold_read_latency(
        if test_mode { 2_000 } else { 50_000 },
        if test_mode { 500 } else { 20_000 },
    );
    merge_throughput(if test_mode { 5_000 } else { 200_000 });
    syncs_per_commit(8, if test_mode { 100 } else { 2_000 });
}
