//! Observability-plane benchmarks: what the live scrape endpoint and the
//! device-level I/O timing cost.
//!
//! Three measurements, each emitted into the repo-root `BENCH_obsd.json`
//! artifact:
//!
//! 1. **I/O-timing overhead** — directory-backed put throughput with
//!    telemetry (and therefore the backend latency histograms on
//!    `write_page`/`sync`) off vs on. This is the device-level complement
//!    of the in-memory `telemetry_overhead` gate in `write.rs`; the same
//!    <2% budget applies.
//! 2. **Scrape latency** — full `GET /metrics` and `GET /report.json`
//!    round trips against a populated store's embedded endpoint,
//!    connection setup to body, p50/max over repeated scrapes.
//! 3. **Scrape interference** — put throughput alone vs with a scraper
//!    hammering `/metrics` in a loop: the cost a monitoring system
//!    imposes on the write path it observes.

use monkey::{http_get, Db, DbOptions, DbOptionsExt, MergePolicy};
use std::time::Instant;

const VALUE_LEN: usize = 64;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("monkey-obsd-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> DbOptions {
    DbOptions::in_memory()
        .page_size(1024)
        .buffer_capacity(16 << 10)
        .size_ratio(2)
        .merge_policy(MergePolicy::Leveling)
        .monkey_filters(5.0)
}

/// Put throughput on a directory-backed store (where `write_page` and
/// `sync` hit a real filesystem and are therefore timed when telemetry is
/// on), interleaved best-of-5 in both states.
fn io_timing_overhead(n: usize) {
    let round = |telemetry: bool, tag: &str| -> f64 {
        let dir = tempdir(tag);
        let db = Db::open(
            DbOptions::at_path(&dir)
                .page_size(1024)
                .buffer_capacity(16 << 10)
                .size_ratio(2)
                .merge_policy(MergePolicy::Leveling)
                .monkey_filters(5.0)
                .telemetry(telemetry),
        )
        .unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                .unwrap();
        }
        let ns = t0.elapsed().as_nanos() as f64 / n as f64;
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
        ns
    };
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        off = off.min(round(false, "off"));
        on = on.min(round(true, "on"));
    }
    let overhead = (on - off) / off * 100.0;
    println!("\nio_timing_overhead (directory-backed put path, {n} puts, best of 5):");
    println!("  telemetry+io timing off: {off:.1} ns/put");
    println!("  telemetry+io timing on:  {on:.1} ns/put   overhead {overhead:+.2}%");
    monkey_bench::emit_bench_artifact(
        "BENCH_obsd.json",
        "io_timing",
        &format!(
            "{{\"ops\": {n}, \"ns_per_put_off\": {off:.1}, \"ns_per_put_on\": {on:.1}, \
             \"put_overhead_pct\": {overhead:.2}}}"
        ),
    );
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() as f64 * p) as usize).min(sorted.len() - 1)]
}

/// Full scrape round trips (TCP connect + request + full body) against a
/// populated endpoint.
fn scrape_latency(entries: usize, scrapes: usize) {
    let db = Db::open(opts().telemetry(true).obs_listen("127.0.0.1:0")).unwrap();
    for i in 0..entries {
        db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
            .unwrap();
    }
    let addr = db.obs_addr().unwrap().to_string();
    println!("\nscrape_latency ({entries} resident entries, {scrapes} scrapes per route):");
    let mut sections = Vec::new();
    for path in ["/metrics", "/report.json"] {
        let mut micros = Vec::with_capacity(scrapes);
        let mut body_bytes = 0usize;
        for _ in 0..scrapes {
            let t0 = Instant::now();
            let (status, body) = http_get(&addr, path).unwrap();
            micros.push(t0.elapsed().as_nanos() as f64 / 1e3);
            assert_eq!(status, 200);
            body_bytes = body.len();
        }
        micros.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99, max) = (
            percentile(&micros, 0.50),
            percentile(&micros, 0.99),
            micros[micros.len() - 1],
        );
        println!(
            "  GET {path:<13} p50 {p50:>8.1}us  p99 {p99:>8.1}us  max {max:>8.1}us  \
             ({body_bytes} B body)"
        );
        sections.push(format!(
            "\"{path}\": {{\"p50_micros\": {p50:.1}, \"p99_micros\": {p99:.1}, \
             \"max_micros\": {max:.1}, \"body_bytes\": {body_bytes}}}"
        ));
    }
    monkey_bench::emit_bench_artifact(
        "BENCH_obsd.json",
        "scrape_latency",
        &format!("{{\"scrapes\": {scrapes}, {}}}", sections.join(", ")),
    );
}

/// Put throughput with and without a concurrent scraper polling
/// `/metrics` every 10ms — an order of magnitude hotter than any real
/// monitoring interval, so the measured delta bounds the interference a
/// scraper imposes on the write path it observes. (On a single-core
/// runner the delta is mostly scheduler time-slicing, not endpoint cost;
/// the artifact row carries the `flagged_single_core` marker.)
fn scrape_interference(n: usize) {
    let round = |scraped: bool| -> f64 {
        let db = Db::open(opts().telemetry(true).obs_listen("127.0.0.1:0")).unwrap();
        let addr = db.obs_addr().unwrap().to_string();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            if scraped {
                let stop = &stop;
                let addr = addr.clone();
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _ = http_get(&addr, "/metrics");
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    }
                });
            }
            let t0 = Instant::now();
            for i in 0..n {
                db.put(format!("key{i:012}").into_bytes(), vec![b'v'; VALUE_LEN])
                    .unwrap();
            }
            let ns = t0.elapsed().as_nanos() as f64 / n as f64;
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            ns
        })
    };
    let (mut alone, mut scraped) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        alone = alone.min(round(false));
        scraped = scraped.min(round(true));
    }
    let overhead = (scraped - alone) / alone * 100.0;
    println!("\nscrape_interference (put path, {n} puts, best of 3):");
    println!("  unobserved:           {alone:.1} ns/put");
    println!("  /metrics scrape loop: {scraped:.1} ns/put   overhead {overhead:+.2}%");
    monkey_bench::emit_bench_artifact(
        "BENCH_obsd.json",
        "scrape_interference",
        &format!(
            "{{\"ops\": {n}, \"ns_per_put_alone\": {alone:.1}, \
             \"ns_per_put_scraped\": {scraped:.1}, \"overhead_pct\": {overhead:.2}{}}}",
            monkey_bench::single_core_flag()
        ),
    );
}

fn main() {
    // `cargo test --benches` passes `--test`: keep the smoke run cheap.
    let test_mode = std::env::args().any(|a| a == "--test");
    io_timing_overhead(if test_mode { 2_000 } else { 100_000 });
    scrape_latency(
        if test_mode { 2_000 } else { 20_000 },
        if test_mode { 20 } else { 200 },
    );
    scrape_interference(if test_mode { 2_000 } else { 100_000 });
}
