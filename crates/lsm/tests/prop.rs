//! Property-based tests for the LSM engine: arbitrary operation sequences
//! against a reference `BTreeMap` model, across merge policies, size
//! ratios, and filter budgets.

use bytes::Bytes;
use monkey_lsm::{Db, DbOptions, MergePolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Action {
    Put(u16, u8),
    Delete(u16),
    Get(u16),
    Scan(u16, u16),
    Flush,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Action::Put(k % 512, v)),
        2 => any::<u16>().prop_map(|k| Action::Delete(k % 512)),
        3 => any::<u16>().prop_map(|k| Action::Get(k % 768)), // may be missing
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Action::Scan(a % 600, b % 600)),
        1 => Just(Action::Flush),
    ]
}

fn key(k: u16) -> Vec<u8> {
    format!("k{k:05}").into_bytes()
}

fn value(k: u16, v: u8) -> Vec<u8> {
    // Length varies with v so that, under value separation with a 24-byte
    // threshold, roughly half the values are separated and half inline.
    let mut val = format!("v{k:05}-{v:03}").into_bytes();
    val.resize(10 + (v as usize % 30), b'p');
    val
}

fn check_model(
    policy: MergePolicy,
    t: usize,
    bpe: f64,
    actions: &[Action],
) -> Result<(), TestCaseError> {
    check_model_opts(policy, t, bpe, false, actions)
}

fn check_model_opts(
    policy: MergePolicy,
    t: usize,
    bpe: f64,
    separate_values: bool,
    actions: &[Action],
) -> Result<(), TestCaseError> {
    let opts = DbOptions::in_memory()
        .page_size(256)
        .buffer_capacity(512)
        .size_ratio(t)
        .merge_policy(policy)
        .uniform_filters(bpe);
    let opts = if separate_values {
        opts.value_separation(24)
    } else {
        opts
    };
    let db = Db::open(opts).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    for action in actions {
        match action {
            Action::Put(k, v) => {
                db.put(key(*k), value(*k, *v)).unwrap();
                model.insert(key(*k), value(*k, *v));
            }
            Action::Delete(k) => {
                db.delete(key(*k)).unwrap();
                model.remove(&key(*k));
            }
            Action::Get(k) => {
                let got = db.get(&key(*k)).unwrap().map(|b| b.to_vec());
                prop_assert_eq!(&got, &model.get(&key(*k)).cloned(), "get {}", k);
            }
            Action::Scan(a, b) => {
                let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
                let got: Vec<(Bytes, Bytes)> = db
                    .range(&key(lo), Some(&key(hi)))
                    .unwrap()
                    .map(|kv| kv.unwrap())
                    .collect();
                let want: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(key(lo)..key(hi))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got.len(), want.len(), "scan [{}, {}) length", lo, hi);
                for ((gk, gv), (wk, wv)) in got.iter().zip(&want) {
                    prop_assert_eq!(gk.as_ref(), &wk[..]);
                    prop_assert_eq!(gv.as_ref(), &wv[..]);
                }
            }
            Action::Flush => db.flush().unwrap(),
        }
    }

    // Terminal full scan matches the model exactly.
    let got: Vec<Vec<u8>> = db
        .range(b"", None)
        .unwrap()
        .map(|kv| kv.unwrap().0.to_vec())
        .collect();
    let want: Vec<Vec<u8>> = model.keys().cloned().collect();
    prop_assert_eq!(got, want, "terminal full scan");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn leveling_t2_matches_model(actions in proptest::collection::vec(arb_action(), 1..300)) {
        check_model(MergePolicy::Leveling, 2, 8.0, &actions)?;
    }

    #[test]
    fn leveling_t5_matches_model(actions in proptest::collection::vec(arb_action(), 1..300)) {
        check_model(MergePolicy::Leveling, 5, 8.0, &actions)?;
    }

    #[test]
    fn tiering_t3_matches_model(actions in proptest::collection::vec(arb_action(), 1..300)) {
        check_model(MergePolicy::Tiering, 3, 8.0, &actions)?;
    }

    #[test]
    fn unfiltered_matches_model(actions in proptest::collection::vec(arb_action(), 1..200)) {
        check_model(MergePolicy::Tiering, 2, 0.0, &actions)?;
    }

    /// Key-value separation mode obeys the same external contract: values
    /// straddle the 24-byte threshold (the generator produces both inline
    /// and separated ones), and every lookup/scan resolves correctly.
    #[test]
    fn kv_separation_matches_model(actions in proptest::collection::vec(arb_action(), 1..250)) {
        check_model_opts(MergePolicy::Leveling, 3, 8.0, true, &actions)?;
    }

    /// Recovery property: any committed prefix of operations survives a
    /// crash (drop without shutdown) on a directory-backed store.
    #[test]
    fn recovery_preserves_committed_operations(
        actions in proptest::collection::vec(arb_action(), 1..120),
        case in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "monkey-prop-rec-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = || {
            DbOptions::at_path(&dir)
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(2)
                .merge_policy(MergePolicy::Leveling)
                .uniform_filters(8.0)
        };
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        {
            let db = Db::open(opts()).unwrap();
            for action in &actions {
                match action {
                    Action::Put(k, v) => {
                        db.put(key(*k), value(*k, *v)).unwrap();
                        model.insert(key(*k), value(*k, *v));
                    }
                    Action::Delete(k) => {
                        db.delete(key(*k)).unwrap();
                        model.remove(&key(*k));
                    }
                    Action::Flush => db.flush().unwrap(),
                    _ => {}
                }
            }
            // crash: drop without flush
        }
        let db = Db::open(opts()).unwrap();
        let got: Vec<(Vec<u8>, Vec<u8>)> = db
            .range(b"", None)
            .unwrap()
            .map(|kv| {
                let (k, v) = kv.unwrap();
                (k.to_vec(), v.to_vec())
            })
            .collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(got, want);
    }
}
