//! Key-value separation (WiscKey mode, §6 of the paper): values live in an
//! append-only log, the tree merges only keys + 14-byte pointers.

use monkey_lsm::{Db, DbOptions, MergePolicy};
use std::sync::Arc;

fn open(separate: bool) -> Arc<Db> {
    let opts = DbOptions::in_memory()
        .page_size(1024)
        .buffer_capacity(4096)
        .size_ratio(2)
        .merge_policy(MergePolicy::Leveling)
        .uniform_filters(8.0);
    let opts = if separate {
        opts.value_separation(64)
    } else {
        opts
    };
    Db::open(opts).unwrap()
}

fn big_value(i: u32) -> Vec<u8> {
    let mut v = format!("big-{i}-").into_bytes();
    v.resize(200, b'.');
    v
}

#[test]
fn separated_values_roundtrip() {
    let db = open(true);
    for i in 0..500u32 {
        db.put(format!("k{i:04}").into_bytes(), big_value(i))
            .unwrap();
    }
    db.put(&b"small"[..], &b"inline"[..]).unwrap(); // below threshold
    db.flush().unwrap();
    for i in (0..500).step_by(7) {
        assert_eq!(
            db.get(format!("k{i:04}").as_bytes()).unwrap().unwrap(),
            big_value(i)
        );
    }
    assert_eq!(db.get(b"small").unwrap().unwrap().as_ref(), b"inline");
}

#[test]
fn scans_resolve_pointers() {
    let db = open(true);
    for i in 0..300u32 {
        db.put(format!("k{i:04}").into_bytes(), big_value(i))
            .unwrap();
    }
    let rows: Vec<(Vec<u8>, Vec<u8>)> = db
        .range(b"k0100", Some(b"k0105"))
        .unwrap()
        .map(|kv| {
            let (k, v) = kv.unwrap();
            (k.to_vec(), v.to_vec())
        })
        .collect();
    assert_eq!(rows.len(), 5);
    for (j, (k, v)) in rows.iter().enumerate() {
        assert_eq!(k, format!("k{:04}", 100 + j).as_bytes());
        assert_eq!(*v, big_value(100 + j as u32));
    }
}

#[test]
fn separation_slashes_merge_write_volume() {
    // The WiscKey claim: merges rewrite pointers, not values. Load the
    // same data with and without separation and compare total page writes.
    let mut writes = Vec::new();
    for separate in [false, true] {
        let db = open(separate);
        for i in 0..1500u32 {
            db.put(format!("k{i:05}").into_bytes(), big_value(i))
                .unwrap();
        }
        writes.push(db.io().page_writes);
    }
    let (inline, separated) = (writes[0], writes[1]);
    assert!(
        (separated as f64) < inline as f64 * 0.55,
        "separation should at least halve write volume: {separated} vs {inline}"
    );
}

#[test]
fn lookups_pay_one_extra_io() {
    let db = open(true);
    for i in 0..800u32 {
        db.put(format!("k{i:05}").into_bytes(), big_value(i))
            .unwrap();
    }
    db.flush().unwrap();
    db.reset_io();
    let lookups = 300u64;
    for i in 0..lookups {
        let k = format!("k{:05}", (i * 7) % 800);
        assert!(db.get(k.as_bytes()).unwrap().is_some());
    }
    let reads = db.io().page_reads;
    // Each found lookup: ~1 tree read + 1 log read (plus rare false
    // positives above the found level).
    assert!(
        reads >= 2 * lookups,
        "expected ≥2 I/Os per lookup, got {reads}"
    );
    assert!(reads < 3 * lookups, "but not much more: {reads}");
}

#[test]
fn deletes_and_overwrites_of_separated_values() {
    let db = open(true);
    db.put(&b"k"[..], big_value(1)).unwrap();
    db.put(&b"k"[..], big_value(2)).unwrap(); // overwrite: new log slot
    assert_eq!(db.get(b"k").unwrap().unwrap(), big_value(2));
    db.delete(&b"k"[..]).unwrap();
    assert!(db.get(b"k").unwrap().is_none());
    db.flush().unwrap();
    assert!(db.get(b"k").unwrap().is_none());
    // Shrinking below the threshold switches back to inline storage.
    db.put(&b"k"[..], &b"tiny"[..]).unwrap();
    db.flush().unwrap();
    assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"tiny");
}

#[test]
fn recovery_preserves_separated_values() {
    let dir = std::env::temp_dir().join(format!("monkey-kvsep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || {
        DbOptions::at_path(&dir)
            .page_size(1024)
            .buffer_capacity(4096)
            .size_ratio(2)
            .uniform_filters(8.0)
            .value_separation(64)
    };
    {
        let db = Db::open(opts()).unwrap();
        for i in 0..400u32 {
            db.put(format!("k{i:04}").into_bytes(), big_value(i))
                .unwrap();
        }
        // crash without shutdown
    }
    let db = Db::open(opts()).unwrap();
    for i in (0..400).step_by(13) {
        assert_eq!(
            db.get(format!("k{i:04}").as_bytes()).unwrap().unwrap(),
            big_value(i),
            "key {i} after recovery"
        );
    }
    assert_eq!(db.range(b"", None).unwrap().count(), 400);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn migrate_acts_as_value_log_gc() {
    let db = open(true);
    // Overwrite every key many times: the log accumulates dead versions.
    for round in 0..6u32 {
        for i in 0..300u32 {
            let mut v = format!("r{round}-").into_bytes();
            v.resize(200, b'.');
            db.put(format!("k{i:04}").into_bytes(), v).unwrap();
        }
    }
    let disk = db.disk();
    let bloated: u64 = disk
        .list_runs()
        .into_iter()
        .map(|r| disk.run_pages(r).unwrap_or(0) as u64)
        .collect::<Vec<_>>()
        .iter()
        .sum();
    let fresh = db
        .migrate_to(
            DbOptions::in_memory()
                .page_size(1024)
                .buffer_capacity(4096)
                .uniform_filters(8.0)
                .value_separation(64),
        )
        .unwrap();
    assert_eq!(fresh.range(b"", None).unwrap().count(), 300);
    let fdisk = fresh.disk();
    let compact: u64 = fdisk
        .list_runs()
        .into_iter()
        .map(|r| fdisk.run_pages(r).unwrap_or(0) as u64)
        .sum();
    assert!(
        compact * 2 < bloated,
        "GC should reclaim most dead value pages: {compact} pages vs bloated {bloated}"
    );
    // All values are the last round's.
    let v = fresh.get(b"k0000").unwrap().unwrap();
    assert!(v.starts_with(b"r5-"));
}

#[test]
fn verify_passes_with_separation() {
    let db = open(true);
    for i in 0..600u32 {
        db.put(format!("k{i:04}").into_bytes(), big_value(i))
            .unwrap();
    }
    db.flush().unwrap();
    let n = db.verify().unwrap();
    assert_eq!(n, db.stats().disk_entries);
}
