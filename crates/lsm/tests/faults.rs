//! Failure injection: the engine must surface storage errors without
//! corrupting its in-memory state, losing committed data, or leaking
//! half-built runs — and must recover once the fault clears.

use monkey_lsm::{Db, DbOptions, LsmError, MergePolicy};
use monkey_storage::{Backend, BlockCache, Disk, FaultKind, FlakyBackend, MemBackend};
use std::sync::Arc;

fn flaky_db(kind: FaultKind) -> (Arc<Db>, Arc<FlakyBackend<MemBackend>>) {
    let backend = FlakyBackend::new(MemBackend::new(), kind);
    let disk = Disk::with_backend(backend.clone() as Arc<dyn Backend>, 256, None);
    // Build options whose storage we bypass: open an in-memory Db, then
    // rebuild with our counted flaky disk via the same configuration.
    let opts = DbOptions::in_memory()
        .page_size(256)
        .buffer_capacity(512)
        .size_ratio(2)
        .merge_policy(MergePolicy::Leveling)
        .uniform_filters(8.0);
    let db = Db::open_with_disk(opts, disk).unwrap();
    (db, backend)
}

#[test]
fn write_fault_surfaces_and_recovers() {
    let (db, backend) = flaky_db(FaultKind::Writes);
    // Fill the tree a little.
    for i in 0..200 {
        db.put(format!("k{i:04}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    // Arm: the very next page write fails — the flush that a future put
    // triggers must return an error.
    backend.arm(0);
    let mut saw_error = false;
    for i in 200..400 {
        if let Err(e) = db.put(format!("k{i:04}").into_bytes(), vec![b'v'; 32]) {
            assert!(matches!(e, LsmError::Storage(_)), "unexpected error {e}");
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "an armed write fault must surface");
    assert!(backend.injected() >= 1);

    // Previously committed data is still readable.
    backend.disarm();
    for i in 0..200 {
        assert!(
            db.get(format!("k{i:04}").as_bytes()).unwrap().is_some(),
            "key {i} must survive the failed flush"
        );
    }
    // And the engine keeps working once the fault clears.
    for i in 400..500 {
        db.put(format!("k{i:04}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    assert!(db.get(b"k0450").unwrap().is_some());
}

#[test]
fn read_fault_surfaces_on_lookup_and_scan() {
    let (db, backend) = flaky_db(FaultKind::Reads);
    for i in 0..300 {
        db.put(format!("k{i:04}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    db.flush().unwrap();
    backend.arm(0);
    // A lookup that needs an I/O errors instead of lying.
    let mut errored = false;
    for i in 0..300 {
        match db.get(format!("k{i:04}").as_bytes()) {
            Err(_) => {
                errored = true;
                break;
            }
            Ok(Some(_)) => {} // served from memtable: fine
            Ok(None) => panic!("a stored key must never read as absent"),
        }
    }
    assert!(errored, "a read fault must surface as an error");

    // Scans propagate the error through the iterator.
    let scan_err = db
        .range(b"", None)
        .map(|iter| iter.filter_map(|kv| kv.err()).count())
        .map(|errs| errs > 0)
        .unwrap_or(true);
    assert!(scan_err, "scan must report the injected fault");

    backend.disarm();
    assert!(db.get(b"k0100").unwrap().is_some(), "recovers after disarm");
}

#[test]
fn failed_merge_does_not_leak_runs() {
    let (db, backend) = flaky_db(FaultKind::Writes);
    for i in 0..300 {
        db.put(format!("k{i:04}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    let runs_before = db.stats().runs;
    let live_before = db.disk().list_runs().len();
    // Every write fails now: the next flush/merge dies mid-build.
    backend.arm(0);
    let mut failures = 0;
    for i in 300..600 {
        if db
            .put(format!("k{i:04}").into_bytes(), vec![b'v'; 32])
            .is_err()
        {
            failures += 1;
        }
    }
    assert!(failures > 0);
    backend.disarm();
    // Half-built runs were cleaned up: live storage runs equals the
    // tree's run count (the aborted builder deleted its partial output).
    let stats = db.stats();
    let live_after = db.disk().list_runs().len();
    assert!(
        live_after <= stats.runs + 1,
        "no leaked storage: {live_after} live vs {} tracked (was {live_before}/{runs_before})",
        stats.runs
    );
}

#[test]
fn cache_masks_read_faults_for_hot_pages() {
    // A warm block cache serves hot pages even while the backend is down —
    // the availability bonus the paper's Figure 12 setup implies.
    let backend = FlakyBackend::new(MemBackend::new(), FaultKind::Reads);
    let disk = Disk::with_backend(
        backend.clone() as Arc<dyn Backend>,
        256,
        Some(BlockCache::new(1 << 20)),
    );
    let opts = DbOptions::in_memory()
        .page_size(256)
        .buffer_capacity(512)
        .size_ratio(2)
        .merge_policy(MergePolicy::Leveling)
        .uniform_filters(8.0);
    let db = Db::open_with_disk(opts, disk).unwrap();
    for i in 0..100 {
        db.put(format!("k{i:04}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    db.flush().unwrap();
    // Warm the cache.
    assert!(db.get(b"k0050").unwrap().is_some());
    backend.arm(0);
    // The same lookup is now served from the cache despite the dead disk.
    assert!(
        db.get(b"k0050").unwrap().is_some(),
        "cache hit needs no I/O"
    );
}
