//! The parallel partitioned merge engine must be *invisible* except for
//! wall-clock time: for any inputs and any thread count the output run is
//! byte-identical to the sequential merge, the `IoStats` ledger is equal,
//! failures abort the cascade without installing partial output, and
//! readers keep making progress while a multi-threaded cascade runs.

use monkey_lsm::compaction::build_run_from_sorted;
use monkey_lsm::merge::merge_runs_with;
use monkey_lsm::{Db, DbOptions, Entry, LsmError, MergePolicy, Run};
use monkey_storage::{Backend, Disk, FaultKind, FlakyBackend, MemBackend};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Build one sorted run per key set (key → tombstone?, last write wins on
/// duplicate keys). Later runs get higher sequence numbers, mimicking the
/// age order of a real cascade.
fn build_inputs(disk: &Arc<Disk>, runs: &[Vec<(u16, bool)>]) -> Vec<Arc<Run>> {
    runs.iter()
        .enumerate()
        .filter_map(|(r, keys)| {
            let entries: Vec<Entry> = keys
                .iter()
                .copied()
                .collect::<BTreeMap<u16, bool>>()
                .iter()
                .map(|(&k, &dead)| {
                    let key = format!("key{k:05}").into_bytes();
                    let seq = ((r as u64) << 32) | k as u64;
                    if dead {
                        Entry::tombstone(key, seq)
                    } else {
                        Entry::put(key, format!("value-{r}-{k:05}").into_bytes(), seq)
                    }
                })
                .collect();
            build_run_from_sorted(disk, entries, false, 1, 10.0).unwrap()
        })
        .collect()
}

fn raw_pages(disk: &Arc<Disk>, run: &Run) -> Vec<bytes::Bytes> {
    (0..run.pages())
        .map(|p| disk.read_page(run.id(), p).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary inputs, any partition count 1–8, and both tombstone
    /// modes (the last-level/leveling "drop" mode and the upper-level/
    /// tiering "keep" mode), the parallel merge writes the exact same
    /// bytes as the sequential merge and charges the exact same I/O.
    #[test]
    fn parallel_merge_is_equivalent(
        runs in collection::vec(
            collection::vec((0u16..400, any::<bool>()), 1..120),
            2..5,
        ),
        threads in 1usize..=8,
        drop_tombstones in any::<bool>(),
    ) {
        let seq_disk = Disk::mem(128);
        let par_disk = Disk::mem(128);
        let seq_inputs = build_inputs(&seq_disk, &runs);
        let par_inputs = build_inputs(&par_disk, &runs);
        prop_assert!(!seq_inputs.is_empty());
        seq_disk.reset_io();
        par_disk.reset_io();
        let (seq_out, _) =
            merge_runs_with(&seq_disk, &seq_inputs, drop_tombstones, 1, 10.0, 1).unwrap();
        let (par_out, _) =
            merge_runs_with(&par_disk, &par_inputs, drop_tombstones, 1, 10.0, threads).unwrap();
        let (s, p) = (seq_disk.io(), par_disk.io());
        prop_assert_eq!(s.page_reads, p.page_reads, "same pages read");
        prop_assert_eq!(s.seeks, p.seeks, "same seeks charged");
        prop_assert_eq!(s.page_writes, p.page_writes, "same pages written");
        match (seq_out, par_out) {
            (None, None) => {} // everything annihilated either way
            (Some(seq_out), Some(par_out)) => {
                prop_assert_eq!(seq_out.entries(), par_out.entries());
                prop_assert_eq!(seq_out.pages(), par_out.pages());
                prop_assert_eq!(
                    raw_pages(&seq_disk, &seq_out),
                    raw_pages(&par_disk, &par_out),
                    "output must be byte-identical page-for-page"
                );
            }
            (seq_out, par_out) => prop_assert!(
                false,
                "one merge produced a run, the other none: {:?} vs {:?}",
                seq_out.map(|r| r.entries()),
                par_out.map(|r| r.entries())
            ),
        }
    }
}

/// Every byte a `Db` has on disk, keyed by run id.
fn disk_image(db: &Db) -> BTreeMap<u64, Vec<bytes::Bytes>> {
    let disk = db.disk();
    let mut image = BTreeMap::new();
    for id in disk.list_runs() {
        let pages = disk.run_pages(id).unwrap();
        let bytes: Vec<_> = (0..pages).map(|p| disk.read_page(id, p).unwrap()).collect();
        image.insert(id, bytes);
    }
    image
}

/// A full engine workload — flushes, cascaded merges, deletes — must leave
/// an identical on-disk state whether compactions run on 1 thread or 4,
/// under both merge policies.
#[test]
fn db_state_is_thread_count_invariant_under_both_policies() {
    for policy in [MergePolicy::Leveling, MergePolicy::Tiering] {
        let open = |threads: usize| {
            Db::open(
                DbOptions::in_memory()
                    .page_size(256)
                    .buffer_capacity(1024)
                    .size_ratio(3)
                    .merge_policy(policy)
                    .compaction_threads(threads)
                    .uniform_filters(10.0),
            )
            .unwrap()
        };
        let (seq_db, par_db) = (open(1), open(4));
        for db in [&seq_db, &par_db] {
            for i in 0..1500u32 {
                let k = (i * 37) % 700; // revisits keys: updates + deletes
                if i % 6 == 5 {
                    db.delete(format!("k{k:05}").into_bytes()).unwrap();
                } else {
                    db.put(
                        format!("k{k:05}").into_bytes(),
                        format!("v{i:06}").into_bytes(),
                    )
                    .unwrap();
                }
            }
            db.flush().unwrap();
        }
        assert_eq!(
            disk_image(&seq_db),
            disk_image(&par_db),
            "{policy:?}: on-disk state must not depend on compaction_threads"
        );
        let seq_scan: Vec<_> = seq_db
            .range(b"", None)
            .unwrap()
            .map(Result::unwrap)
            .collect();
        let par_scan: Vec<_> = par_db
            .range(b"", None)
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(seq_scan, par_scan);
    }
}

/// A storage fault inside a worker-pool merge must fail the cascade
/// cleanly: the error reaches the foreground via `background_errors`, no
/// partial output run is installed or leaked, and the inputs stay live so
/// a retry after the fault clears loses nothing.
#[test]
fn worker_pool_merge_fault_fails_cascade_cleanly() {
    let backend = FlakyBackend::new(MemBackend::new(), FaultKind::Writes);
    let disk = Disk::with_backend(backend.clone() as Arc<dyn Backend>, 256, None);
    let db = Db::open_with_disk(
        DbOptions::in_memory()
            .page_size(256)
            .buffer_capacity(512)
            .size_ratio(2)
            .merge_policy(MergePolicy::Leveling)
            .compaction_threads(4)
            .background_compaction(true)
            .max_immutable_memtables(8)
            .uniform_filters(10.0),
        disk,
    )
    .unwrap();
    // Build a deep enough tree that the queued rotations trigger a real
    // multi-level cascade, then hold the worker off while arming the fault.
    for i in 0..400u32 {
        db.put(format!("k{i:05}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    db.flush().unwrap();
    let committed = db.range(b"", None).unwrap().count();
    // Queue a few rotations — but stay under `max_immutable_memtables`, or
    // a put would block forever on the paused worker.
    db.pause_compaction();
    for i in 400..450u32 {
        db.put(format!("k{i:05}").into_bytes(), vec![b'v'; 32])
            .unwrap();
    }
    let tracked_before = db.stats().runs;
    let live_before = db.disk().list_runs().len();
    backend.arm(0); // every page write now fails
    db.resume_compaction();
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.pipeline_stats().background_errors == 0 {
        assert!(Instant::now() < deadline, "worker never reported the fault");
        std::thread::sleep(Duration::from_millis(5));
    }
    backend.disarm();
    // No partial run was installed or leaked while the fault was armed.
    assert_eq!(db.stats().runs, tracked_before, "no partial run installed");
    assert!(
        db.disk().list_runs().len() <= live_before,
        "aborted builders must delete their unsealed output"
    );
    // The deferred error surfaces on the next foreground call...
    let err = db.flush().unwrap_err();
    assert!(matches!(err, LsmError::Background(_)), "got {err}");
    // ...and the inputs were still live: a retry loses nothing.
    db.flush().unwrap();
    assert!(db.range(b"", None).unwrap().count() >= committed);
    for i in (0..450u32).step_by(13) {
        assert!(
            db.get(format!("k{i:05}").as_bytes()).unwrap().is_some(),
            "key {i} lost across the failed cascade"
        );
    }
}

/// Readers must keep completing against the immutable version snapshot
/// while a large parallel cascade churns in the background.
#[test]
fn readers_progress_during_parallel_cascade() {
    let db = Db::open(
        DbOptions::in_memory()
            .page_size(256)
            .buffer_capacity(1024)
            .size_ratio(2)
            .merge_policy(MergePolicy::Leveling)
            .compaction_threads(4)
            .background_compaction(true)
            .max_immutable_memtables(4)
            .uniform_filters(10.0),
    )
    .unwrap();
    // Commit a stable prefix the reader will hammer.
    for i in 0..300u32 {
        db.put(format!("stable{i:05}").into_bytes(), vec![b's'; 24])
            .unwrap();
    }
    db.flush().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let (db, stop) = (db.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let i = (reads * 17) % 300;
                let got = db.get(format!("stable{i:05}").as_bytes()).unwrap();
                assert!(got.is_some(), "stable key {i} vanished mid-cascade");
                reads += 1;
            }
            reads
        })
    };
    // Saturating writes drive repeated multi-level parallel cascades.
    for i in 0..4000u32 {
        db.put(format!("churn{i:06}").into_bytes(), vec![b'c'; 48])
            .unwrap();
    }
    db.flush().unwrap();
    stop.store(true, Ordering::Relaxed);
    let reads = reader.join().unwrap();
    assert!(
        reads > 100,
        "reader starved during the cascade: only {reads} lookups"
    );
    assert!(db.compaction_stats().merges > 0, "cascades actually ran");
    assert!(
        db.compaction_stats().last_merge_threads >= 1,
        "merge gauges populated"
    );
}
