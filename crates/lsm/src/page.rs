//! Page encoding: how entries are packed into fixed-size disk pages.
//!
//! Layout of one page:
//!
//! ```text
//! [u16 entry_count][u64 checksum]
//! entry_count × [u16 key_len][u32 val_len][u64 seq][u8 kind][key][value]
//! [zero padding to the page size]
//! ```
//!
//! The checksum is XXH64 over everything after it (count and padding
//! included by construction of the encoder), so any bit flipped at rest or
//! in flight surfaces as [`LsmError::Corruption`] instead of wrong data.
//!
//! Entries within a page are sorted by internal order, so a point lookup
//! that has fenced to the right page finds its key with a binary search in
//! memory — the page read is the only I/O.

use crate::entry::{Entry, EntryKind, ENTRY_HEADER_LEN};
use crate::error::{LsmError, Result};
use bytes::Bytes;
use monkey_bloom::hash::xxh64;

const PAGE_SEED: u64 = 0x5041_4745_4D4F_4E4B; // "PAGEMONK"

/// Bytes of per-page header: entry count (u16) + checksum (u64).
pub const PAGE_HEADER_LEN: usize = 2 + 8;

/// Maximum encoded entry size for a given page size.
pub fn max_entry_len(page_size: usize) -> usize {
    page_size.saturating_sub(PAGE_HEADER_LEN)
}

/// An in-construction page buffer.
pub struct PageBuilder {
    buf: Vec<u8>,
    count: u16,
    page_size: usize,
}

impl PageBuilder {
    /// Starts an empty page of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > PAGE_HEADER_LEN, "page too small: {page_size}");
        let mut buf = Vec::with_capacity(page_size);
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum patched in finish()
        Self {
            buf,
            count: 0,
            page_size,
        }
    }

    /// Whether `entry` fits in the remaining space.
    pub fn fits(&self, entry: &Entry) -> bool {
        self.buf.len() + entry.encoded_len() <= self.page_size
    }

    /// Number of entries appended so far.
    pub fn count(&self) -> u16 {
        self.count
    }

    /// Appends an entry.
    ///
    /// Returns [`LsmError::EntryTooLarge`] if the entry can never fit in an
    /// empty page, [`LsmError::KeyTooLarge`] for keys over the u16 limit.
    /// Callers check [`fits`](Self::fits) first to close full pages.
    pub fn push(&mut self, entry: &Entry) -> Result<()> {
        if entry.key.len() > u16::MAX as usize {
            return Err(LsmError::KeyTooLarge(entry.key.len()));
        }
        let encoded = entry.encoded_len();
        if encoded > max_entry_len(self.page_size) {
            return Err(LsmError::EntryTooLarge {
                encoded,
                max: max_entry_len(self.page_size),
            });
        }
        debug_assert!(self.fits(entry), "caller must close full pages first");
        self.buf
            .extend_from_slice(&(entry.key.len() as u16).to_le_bytes());
        self.buf
            .extend_from_slice(&(entry.value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&entry.seq.to_le_bytes());
        self.buf.push(entry.kind.to_byte());
        self.buf.extend_from_slice(&entry.key);
        self.buf.extend_from_slice(&entry.value);
        self.count += 1;
        self.buf[0..2].copy_from_slice(&self.count.to_le_bytes());
        Ok(())
    }

    /// True when no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pads to the page size, stamps the checksum, and returns the finished
    /// page buffer, leaving the builder ready for the next page.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut page = std::mem::replace(&mut self.buf, Vec::with_capacity(self.page_size));
        page.resize(self.page_size, 0);
        let checksum = xxh64(
            &page[PAGE_HEADER_LEN..],
            PAGE_SEED ^ page[0] as u64 ^ ((page[1] as u64) << 8),
        );
        page[2..10].copy_from_slice(&checksum.to_le_bytes());
        self.buf.extend_from_slice(&0u16.to_le_bytes());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
        self.count = 0;
        page
    }
}

/// Verifies a page's header and checksum, returning the entry count.
fn verify_page(page: &Bytes) -> Result<usize> {
    if page.len() < PAGE_HEADER_LEN {
        return Err(LsmError::Corruption("page shorter than header".into()));
    }
    let count = u16::from_le_bytes(page[0..2].try_into().unwrap()) as usize;
    let stored = u64::from_le_bytes(page[2..10].try_into().unwrap());
    let computed = xxh64(
        &page[PAGE_HEADER_LEN..],
        PAGE_SEED ^ page[0] as u64 ^ ((page[1] as u64) << 8),
    );
    if stored != computed {
        return Err(LsmError::Corruption(format!(
            "page checksum mismatch: stored {stored:#x}, computed {computed:#x}"
        )));
    }
    Ok(count)
}

/// A streaming cursor over one encoded page: validates the checksum once,
/// then yields entries lazily, without materializing a `Vec<Entry>` for
/// the whole page. Entry keys/values are `Bytes` slices into the page
/// buffer (refcount bumps, no copies).
///
/// Merge inputs and the point-lookup hot path use this; [`decode_page`]
/// stays as the eager equivalent for compatibility and tests.
pub struct PageCursor {
    page: Bytes,
    off: usize,
    /// Entries not yet yielded.
    remaining: usize,
    /// Index of the next entry (for corruption messages).
    index: usize,
}

impl PageCursor {
    /// Opens a cursor, verifying the page header and checksum.
    pub fn new(page: Bytes) -> Result<Self> {
        let count = verify_page(&page)?;
        Ok(Self {
            page,
            off: PAGE_HEADER_LEN,
            remaining: count,
            index: 0,
        })
    }

    /// Entries not yet yielded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Borrows the key of the next entry without decoding it — the probe
    /// primitive of [`search`](Self::search): no `Bytes` refcount traffic,
    /// no value slicing.
    pub fn peek_key(&self) -> Result<Option<&[u8]>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let (klen, _) = self.header()?;
        let start = self.off + ENTRY_HEADER_LEN;
        Ok(Some(&self.page[start..start + klen]))
    }

    /// Decodes the next entry and advances.
    pub fn next_entry(&mut self) -> Result<Option<Entry>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let (klen, vlen) = self.header()?;
        let off = self.off;
        let seq = u64::from_le_bytes(self.page[off + 6..off + 14].try_into().unwrap());
        let kind = EntryKind::from_byte(self.page[off + 14]).ok_or_else(|| {
            LsmError::Corruption(format!("entry {} has bad kind byte", self.index))
        })?;
        let body = off + ENTRY_HEADER_LEN;
        let key = self.page.slice(body..body + klen);
        let value = self.page.slice(body + klen..body + klen + vlen);
        self.advance(klen, vlen);
        Ok(Some(Entry {
            key,
            value,
            seq,
            kind,
        }))
    }

    /// Skips the next entry without decoding its body.
    pub fn skip_entry(&mut self) -> Result<bool> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let (klen, vlen) = self.header()?;
        self.advance(klen, vlen);
        Ok(true)
    }

    /// Finds the newest version of `key` in the page.
    ///
    /// Entries are in internal order (key asc, seq desc), so the scan
    /// compares key slices in place and stops as soon as it passes `key` —
    /// the first match is the newest version, and nothing before or after
    /// it is ever decoded into an owned [`Entry`].
    pub fn search(mut self, key: &[u8]) -> Result<Option<Entry>> {
        while let Some(k) = self.peek_key()? {
            match k.cmp(key) {
                std::cmp::Ordering::Less => {
                    self.skip_entry()?;
                }
                std::cmp::Ordering::Equal => return self.next_entry(),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Header of the next entry, bounds-checked: `(key_len, value_len)`.
    fn header(&self) -> Result<(usize, usize)> {
        let off = self.off;
        if off + ENTRY_HEADER_LEN > self.page.len() {
            return Err(LsmError::Corruption(format!(
                "entry {} header truncated",
                self.index
            )));
        }
        let klen = u16::from_le_bytes(self.page[off..off + 2].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(self.page[off + 2..off + 6].try_into().unwrap()) as usize;
        if off + ENTRY_HEADER_LEN + klen + vlen > self.page.len() {
            return Err(LsmError::Corruption(format!(
                "entry {} body truncated",
                self.index
            )));
        }
        Ok((klen, vlen))
    }

    fn advance(&mut self, klen: usize, vlen: usize) {
        self.off += ENTRY_HEADER_LEN + klen + vlen;
        self.remaining -= 1;
        self.index += 1;
    }
}

/// Decodes every entry of a page.
pub fn decode_page(page: &Bytes) -> Result<Vec<Entry>> {
    let mut cursor = PageCursor::new(page.clone())?;
    let mut entries = Vec::with_capacity(cursor.remaining());
    while let Some(entry) = cursor.next_entry()? {
        entries.push(entry);
    }
    Ok(entries)
}

/// Binary-searches a decoded page for the newest version of `key`.
///
/// Entries are in internal order (key asc, seq desc), so the first entry
/// with a matching key is the newest.
pub fn search_page<'e>(entries: &'e [Entry], key: &[u8]) -> Option<&'e Entry> {
    let idx = entries.partition_point(|e| e.key.as_ref() < key);
    entries.get(idx).filter(|e| e.key.as_ref() == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: &str, v: &str, seq: u64) -> Entry {
        Entry::put(k.as_bytes().to_vec(), v.as_bytes().to_vec(), seq)
    }

    #[test]
    fn build_and_decode_roundtrip() {
        let mut b = PageBuilder::new(256);
        let entries = vec![
            entry("alpha", "1", 10),
            entry("beta", "2", 11),
            entry("gamma", "", 12),
        ];
        for e in &entries {
            assert!(b.fits(e));
            b.push(e).unwrap();
        }
        let page = Bytes::from(b.finish());
        assert_eq!(page.len(), 256);
        let decoded = decode_page(&page).unwrap();
        assert_eq!(decoded, entries);
    }

    #[test]
    fn tombstones_roundtrip() {
        let mut b = PageBuilder::new(128);
        let t = Entry::tombstone(b"dead".to_vec(), 99);
        b.push(&t).unwrap();
        let decoded = decode_page(&Bytes::from(b.finish())).unwrap();
        assert_eq!(decoded, vec![t]);
    }

    #[test]
    fn fits_respects_page_size() {
        let mut b = PageBuilder::new(64);
        let e = entry("0123456789", "0123456789", 1); // 15 + 20 = 35 bytes
        assert!(b.fits(&e));
        b.push(&e).unwrap();
        assert!(!b.fits(&e), "second copy would exceed 64 bytes");
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut b = PageBuilder::new(64);
        let e = entry("key", &"v".repeat(100), 1);
        assert!(matches!(b.push(&e), Err(LsmError::EntryTooLarge { .. })));
    }

    #[test]
    fn huge_key_rejected() {
        let mut b = PageBuilder::new(1 << 20);
        let e = Entry::put(vec![0u8; 70_000], Vec::new(), 1);
        assert!(matches!(b.push(&e), Err(LsmError::KeyTooLarge(70_000))));
    }

    #[test]
    fn finish_resets_builder() {
        let mut b = PageBuilder::new(128);
        b.push(&entry("a", "1", 1)).unwrap();
        let first = b.finish();
        assert!(b.is_empty());
        b.push(&entry("b", "2", 2)).unwrap();
        let second = b.finish();
        assert_ne!(first, second);
        assert_eq!(
            decode_page(&Bytes::from(second)).unwrap()[0].key.as_ref(),
            b"b"
        );
    }

    #[test]
    fn decode_rejects_corrupt_pages() {
        // Count says 1 but no entry bytes follow.
        let mut page = vec![0u8; 64];
        page[0..2].copy_from_slice(&1u16.to_le_bytes());
        page.truncate(3);
        assert!(decode_page(&Bytes::from(page)).is_err());

        // Any single flipped bit in the payload trips the checksum.
        let mut b = PageBuilder::new(64);
        b.push(&entry("k", "v", 1)).unwrap();
        let good = b.finish();
        for bit in [0usize, 7, 100, 300] {
            let mut page = good.clone();
            page[PAGE_HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
            let err = decode_page(&Bytes::from(page)).unwrap_err();
            assert!(err.to_string().contains("checksum"), "bit {bit}: {err}");
        }

        // Bad kind byte.
        let mut b = PageBuilder::new(64);
        b.push(&entry("k", "v", 1)).unwrap();
        let mut page = b.finish();
        page[PAGE_HEADER_LEN + 14] = 9; // kind byte of first entry
        assert!(decode_page(&Bytes::from(page)).is_err());

        // Body length overflows the page.
        let mut b = PageBuilder::new(64);
        b.push(&entry("k", "v", 1)).unwrap();
        let mut page = b.finish();
        page[PAGE_HEADER_LEN + 2..PAGE_HEADER_LEN + 6].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(decode_page(&Bytes::from(page)).is_err());
    }

    #[test]
    fn search_finds_newest_version() {
        // Internal order: key asc, seq desc.
        let entries = vec![
            entry("a", "new", 9),
            entry("a", "old", 3),
            entry("b", "x", 5),
        ];
        assert_eq!(search_page(&entries, b"a").unwrap().value.as_ref(), b"new");
        assert_eq!(search_page(&entries, b"b").unwrap().seq, 5);
        assert!(search_page(&entries, b"c").is_none());
        assert!(search_page(&entries, b"0").is_none());
    }

    #[test]
    fn empty_page_decodes_empty() {
        let mut b = PageBuilder::new(32);
        let page = Bytes::from(b.finish());
        assert!(decode_page(&page).unwrap().is_empty());
    }

    #[test]
    fn cursor_streams_the_same_entries_decode_page_returns() {
        let mut b = PageBuilder::new(256);
        let entries = vec![
            entry("alpha", "1", 10),
            entry("beta", "2", 11),
            Entry::tombstone(b"gamma".to_vec(), 12),
        ];
        for e in &entries {
            b.push(e).unwrap();
        }
        let page = Bytes::from(b.finish());
        let mut cursor = PageCursor::new(page.clone()).unwrap();
        assert_eq!(cursor.remaining(), 3);
        let mut streamed = Vec::new();
        while let Some(e) = cursor.next_entry().unwrap() {
            streamed.push(e);
        }
        assert_eq!(streamed, decode_page(&page).unwrap());
        assert_eq!(cursor.remaining(), 0);
        assert!(cursor.next_entry().unwrap().is_none());
    }

    #[test]
    fn cursor_peek_and_skip_do_not_decode() {
        let mut b = PageBuilder::new(256);
        b.push(&entry("a", "1", 1)).unwrap();
        b.push(&entry("b", "2", 2)).unwrap();
        let mut cursor = PageCursor::new(Bytes::from(b.finish())).unwrap();
        assert_eq!(cursor.peek_key().unwrap(), Some(b"a".as_slice()));
        assert!(cursor.skip_entry().unwrap());
        assert_eq!(cursor.peek_key().unwrap(), Some(b"b".as_slice()));
        assert_eq!(cursor.next_entry().unwrap().unwrap().key.as_ref(), b"b");
        assert_eq!(cursor.peek_key().unwrap(), None);
        assert!(!cursor.skip_entry().unwrap());
    }

    #[test]
    fn cursor_search_matches_search_page() {
        // Internal order: key asc, seq desc — duplicates keep newest first.
        let entries = vec![
            entry("a", "new", 9),
            entry("a", "old", 3),
            entry("b", "x", 5),
            entry("d", "y", 7),
        ];
        let mut b = PageBuilder::new(256);
        for e in &entries {
            b.push(e).unwrap();
        }
        let page = Bytes::from(b.finish());
        for probe in [b"a".as_slice(), b"b", b"c", b"d", b"0", b"z"] {
            let eager = search_page(&entries, probe).cloned();
            let streamed = PageCursor::new(page.clone())
                .unwrap()
                .search(probe)
                .unwrap();
            assert_eq!(eager, streamed, "probe {probe:?}");
        }
        assert_eq!(
            PageCursor::new(page.clone())
                .unwrap()
                .search(b"a")
                .unwrap()
                .unwrap()
                .seq,
            9,
            "newest version wins"
        );
    }

    #[test]
    fn cursor_rejects_corrupt_pages() {
        let mut b = PageBuilder::new(64);
        b.push(&entry("k", "v", 1)).unwrap();
        let good = b.finish();
        let mut bad = good.clone();
        bad[PAGE_HEADER_LEN + 20] ^= 1;
        assert!(PageCursor::new(Bytes::from(bad)).is_err(), "checksum trips");
    }
}
