//! Merge (compaction) operations.
//!
//! Merging sort-merges a set of runs into one new run: duplicate keys keep
//! only the newest version, and tombstones are dropped when the output
//! lands on the **last** level (nothing deeper can hold a superseded
//! version, so the tombstone has done its job). This is the machinery
//! behind both merge policies; the placement logic lives in the `Db`.

use crate::entry::Entry;
use crate::error::Result;
use crate::level::{level_capacity_bytes, Version};
use crate::merge::{merge_runs_with, tag_destination, MergeReport};
use crate::options::DbOptions;
use crate::policy::FilterContext;
use crate::run::{FilterParams, Run, RunBuilder};
use monkey_obs::{OpKind, Telemetry};
use monkey_storage::Disk;
use std::sync::Arc;
use std::time::Instant;

/// What a flush's merge cascade did, for the engine's lifetime counters.
#[derive(Debug, Default, Clone)]
pub(crate) struct CascadeOutcome {
    /// Merge operations performed.
    pub merges: u64,
    /// Entries read-and-rewritten by those merges.
    pub entries_rewritten: u64,
    /// Most key-range partitions any single merge was cut into (0 when the
    /// cascade performed no merge).
    pub max_partitions: u32,
    /// Most worker threads any single merge used (0 when no merge ran).
    pub max_threads: u32,
    /// Ids of every run consumed across the cascade's merges, in merge
    /// order — the input lineage a cascade trace span links to.
    pub input_runs: Vec<u64>,
}

impl CascadeOutcome {
    fn absorb(&mut self, report: MergeReport) {
        self.max_partitions = self.max_partitions.max(report.partitions);
        self.max_threads = self.max_threads.max(report.threads);
        self.input_runs.extend(report.input_runs);
    }
}

/// Runs one merge through the partitioned merge engine, timing it into the
/// `merge` latency histogram when telemetry is on.
#[allow(clippy::too_many_arguments)]
fn timed_merge(
    disk: &Arc<Disk>,
    inputs: &[Arc<Run>],
    drop_tombstones: bool,
    level: usize,
    filter: FilterParams,
    threads: usize,
    telemetry: Option<&Telemetry>,
    outcome: &mut CascadeOutcome,
) -> Result<Option<Arc<Run>>> {
    let started = telemetry.map(|_| Instant::now());
    let (output, report) = merge_runs_with(disk, inputs, drop_tombstones, level, filter, threads)?;
    if let (Some(t), Some(started)) = (telemetry, started) {
        t.record_nanos(OpKind::Merge, started.elapsed().as_nanos() as u64);
    }
    outcome.absorb(report);
    Ok(output)
}

/// Builds the filter parameters for a run of `run_entries` entries landing
/// at `level`: bits-per-entry from the filter policy, layout variant from
/// the options. At every call site, `version` holds exactly the runs that
/// will coexist with the new run (merge inputs have already been taken out
/// of their levels). `extra_entries` counts memory-resident entries not in
/// any run — zero during a flush cascade (the frozen memtable being built
/// *is* the new run), the memtable sizes during a filter rebuild.
pub(crate) fn filter_params_for(
    opts: &DbOptions,
    version: &Version,
    level: usize,
    run_entries: u64,
    extra_entries: u64,
) -> FilterParams {
    let other_run_entries: Vec<u64> = version
        .levels()
        .iter()
        .flat_map(|l| l.runs().iter().map(|r| r.entries()))
        .collect();
    let ctx = FilterContext {
        level,
        num_levels: version.deepest().max(level),
        run_entries,
        total_entries: run_entries + other_run_entries.iter().sum::<u64>() + extra_entries,
        other_run_entries,
        size_ratio: opts.size_ratio,
        merge_policy: opts.merge_policy,
    };
    FilterParams::new(opts.filter_policy.bits_per_entry(&ctx), opts.filter_variant)
}

/// Leveling (§2): the arriving run sort-merges with the resident run of
/// level 1; whenever a level exceeds its capacity, its (single) run moves
/// down and merges with the next level's resident run. Mutates `version`
/// in place — callers hand in a private, not-yet-published clone, so a
/// failure part-way leaves the *published* tree untouched.
pub(crate) fn install_leveling(
    disk: &Arc<Disk>,
    opts: &DbOptions,
    version: &mut Version,
    run: Arc<Run>,
    outcome: &mut CascadeOutcome,
    telemetry: Option<&Telemetry>,
) -> Result<()> {
    let mut carry = run;
    let mut lvl = 1usize;
    loop {
        version.ensure_levels(lvl);
        let deepest = version.deepest().max(lvl);
        if !version.levels()[lvl - 1].is_empty() {
            let mut inputs = vec![carry];
            inputs.extend(version.levels_mut()[lvl - 1].take_all());
            let drop_tombstones = lvl >= deepest;
            let input_entries: u64 = inputs.iter().map(|r| r.entries()).sum();
            let params = filter_params_for(opts, version, lvl, input_entries, 0);
            outcome.merges += 1;
            outcome.entries_rewritten += input_entries;
            let merged = timed_merge(
                disk,
                &inputs,
                drop_tombstones,
                lvl,
                params,
                opts.compaction_threads,
                telemetry,
                outcome,
            )?;
            match merged {
                Some(merged) => carry = merged,
                None => return Ok(()), // merge annihilated everything
            }
        }
        version.levels_mut()[lvl - 1].push_youngest(carry);
        let capacity = level_capacity_bytes(opts.buffer_capacity, opts.size_ratio, lvl);
        if version.levels()[lvl - 1].bytes() <= capacity {
            return Ok(());
        }
        // Over capacity: the run moves to the next level.
        let mut moved = version.levels_mut()[lvl - 1].take_all();
        debug_assert_eq!(moved.len(), 1);
        carry = moved.pop().expect("level had a run");
        lvl += 1;
    }
}

/// Tiering (§2): runs accumulate at a level; the arrival of the `T`-th
/// merges them all into a single run at the next level. Same private-clone
/// contract as [`install_leveling`].
pub(crate) fn install_tiering(
    disk: &Arc<Disk>,
    opts: &DbOptions,
    version: &mut Version,
    run: Arc<Run>,
    outcome: &mut CascadeOutcome,
    telemetry: Option<&Telemetry>,
) -> Result<()> {
    version.ensure_levels(1);
    version.levels_mut()[0].push_youngest(run);
    let t = opts.size_ratio;
    let mut lvl = 1usize;
    loop {
        if version.levels()[lvl - 1].run_count() < t {
            return Ok(());
        }
        let inputs = version.levels_mut()[lvl - 1].take_all();
        // Tombstones can be dropped when nothing deeper than this level
        // holds data: the merged run lands at lvl+1 as its deepest data.
        let drop_tombstones = version.deepest() <= lvl;
        let input_entries: u64 = inputs.iter().map(|r| r.entries()).sum();
        let params = filter_params_for(opts, version, lvl + 1, input_entries, 0);
        outcome.merges += 1;
        outcome.entries_rewritten += input_entries;
        let merged = timed_merge(
            disk,
            &inputs,
            drop_tombstones,
            lvl + 1,
            params,
            opts.compaction_threads,
            telemetry,
            outcome,
        )?;
        version.ensure_levels(lvl + 1);
        if let Some(merged) = merged {
            version.levels_mut()[lvl].push_youngest(merged);
        }
        lvl += 1;
    }
}

/// Sort-merges `inputs` into a single new run landing at `level`, on the
/// calling thread. This is [`merge_runs_with`] at one thread — see the
/// `merge` module for the parallel partitioned engine and its guarantees.
pub fn merge_runs(
    disk: &Arc<Disk>,
    inputs: &[Arc<Run>],
    drop_tombstones: bool,
    level: usize,
    filter: impl Into<FilterParams>,
) -> Result<Option<Arc<Run>>> {
    merge_runs_with(disk, inputs, drop_tombstones, level, filter, 1).map(|(run, _)| run)
}

/// Builds a run directly from pre-sorted, pre-deduplicated entries (the
/// buffer flush path: a memtable drain is already sorted and unique).
/// `level` is the 1-based destination level for I/O attribution, exactly as
/// in [`merge_runs`].
pub fn build_run_from_sorted(
    disk: &Arc<Disk>,
    entries: Vec<Entry>,
    drop_tombstones: bool,
    level: usize,
    filter: impl Into<FilterParams>,
) -> Result<Option<Arc<Run>>> {
    let mut builder = RunBuilder::new(Arc::clone(disk));
    tag_destination(disk, &builder, level);
    let run_id = builder.run_id();
    for entry in entries {
        if drop_tombstones && entry.is_tombstone() {
            continue;
        }
        builder.push(entry)?;
    }
    let output = builder.finish(filter)?.map(Arc::new);
    if output.is_none() {
        if let Some(attr) = disk.attribution() {
            attr.untag_run(run_id);
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::EntryKind;

    fn run_of(disk: &Arc<Disk>, entries: Vec<Entry>) -> Arc<Run> {
        build_run_from_sorted(disk, entries, false, 1, 10.0)
            .unwrap()
            .unwrap()
    }

    fn put(k: &str, v: &str, seq: u64) -> Entry {
        Entry::put(k.as_bytes().to_vec(), v.as_bytes().to_vec(), seq)
    }

    #[test]
    fn merge_dedups_newest_wins() {
        let disk = Disk::mem(128);
        let old = run_of(&disk, vec![put("a", "old", 1), put("b", "b1", 2)]);
        let new = run_of(&disk, vec![put("a", "new", 5), put("c", "c1", 6)]);
        let merged = merge_runs(&disk, &[new, old], false, 1, 10.0)
            .unwrap()
            .unwrap();
        assert_eq!(merged.entries(), 3);
        assert_eq!(merged.get(b"a").unwrap().unwrap().value.as_ref(), b"new");
        assert_eq!(merged.get(b"b").unwrap().unwrap().value.as_ref(), b"b1");
        assert_eq!(merged.get(b"c").unwrap().unwrap().value.as_ref(), b"c1");
    }

    #[test]
    fn merge_reclaims_input_storage() {
        let disk = Disk::mem(128);
        let a = run_of(&disk, vec![put("a", "1", 1)]);
        let b = run_of(&disk, vec![put("b", "2", 2)]);
        let (ida, idb) = (a.id(), b.id());
        let merged = merge_runs(&disk, &[a, b], false, 1, 10.0).unwrap().unwrap();
        // Inputs dropped at the end of merge_runs' caller scope — here the
        // Arcs moved into the call were the last references.
        assert!(disk.run_pages(ida).is_err());
        assert!(disk.run_pages(idb).is_err());
        assert!(disk.run_pages(merged.id()).is_ok());
    }

    #[test]
    fn tombstones_survive_intermediate_merges() {
        let disk = Disk::mem(128);
        let young = run_of(&disk, vec![Entry::tombstone(b"k".to_vec(), 9)]);
        let old = run_of(&disk, vec![put("k", "v", 1)]);
        let merged = merge_runs(&disk, &[young, old], false, 1, 10.0)
            .unwrap()
            .unwrap();
        let e = merged.get(b"k").unwrap().unwrap();
        assert_eq!(
            e.kind,
            EntryKind::Delete,
            "tombstone still masks older versions below"
        );
        assert_eq!(merged.entries(), 1, "the superseded put is gone");
    }

    #[test]
    fn tombstones_dropped_at_last_level() {
        let disk = Disk::mem(128);
        let young = run_of(
            &disk,
            vec![Entry::tombstone(b"k".to_vec(), 9), put("live", "v", 8)],
        );
        let old = run_of(&disk, vec![put("k", "v", 1)]);
        let merged = merge_runs(&disk, &[young, old], true, 1, 10.0)
            .unwrap()
            .unwrap();
        assert_eq!(merged.entries(), 1);
        assert!(merged.get(b"k").unwrap().is_none());
        assert!(merged.get(b"live").unwrap().is_some());
    }

    #[test]
    fn all_tombstone_merge_yields_none() {
        let disk = Disk::mem(128);
        let young = run_of(&disk, vec![Entry::tombstone(b"k".to_vec(), 9)]);
        let old = run_of(&disk, vec![put("k", "v", 1)]);
        let merged = merge_runs(&disk, &[young, old], true, 1, 10.0).unwrap();
        assert!(merged.is_none(), "nothing left to write");
        assert!(disk.list_runs().is_empty(), "all storage reclaimed");
    }

    #[test]
    fn merge_io_cost_reads_inputs_writes_output() {
        let disk = Disk::mem(64);
        let entries_a: Vec<Entry> = (0..20)
            .map(|i| put(&format!("a{i:02}"), "xxxx", i))
            .collect();
        let entries_b: Vec<Entry> = (0..20)
            .map(|i| put(&format!("b{i:02}"), "yyyy", 100 + i))
            .collect();
        let a = run_of(&disk, entries_a);
        let b = run_of(&disk, entries_b);
        let in_pages = (a.pages() + b.pages()) as u64;
        disk.reset_io();
        let merged = merge_runs(&disk, &[a, b], false, 1, 10.0).unwrap().unwrap();
        let io = disk.io();
        assert_eq!(
            io.page_reads, in_pages,
            "reads the original runs (Eq. 10 accounting)"
        );
        assert_eq!(io.page_writes, merged.pages() as u64);
    }

    #[test]
    fn build_run_from_sorted_drops_tombstones_when_asked() {
        let disk = Disk::mem(128);
        let entries = vec![
            put("a", "1", 1),
            Entry::tombstone(b"b".to_vec(), 2),
            put("c", "3", 3),
        ];
        let run = build_run_from_sorted(&disk, entries, true, 1, 10.0)
            .unwrap()
            .unwrap();
        assert_eq!(run.entries(), 2);
        assert_eq!(run.tombstones(), 0);
    }
}
