//! A concurrent skiplist keyed by `Bytes`, specialized for the memtable.
//!
//! The engine's write path is already serialized (every `put` holds the
//! shard's write lock while it appends to the WAL and buffer), so this
//! list optimizes for the other side: **readers never take a lock**.
//! Point lookups, frozen-memtable scans, and the observatory's
//! classification hooks all traverse the towers with `Acquire` loads
//! while a writer may be splicing nodes in.
//!
//! The usual skiplist hazards are sidestepped structurally rather than
//! with epochs or hazard pointers:
//!
//! - **Nodes are never unlinked.** The memtable only ever inserts or
//!   replaces; deletes are tombstone values. Every published node stays
//!   reachable until the whole list drops.
//! - **Replaced values are retired, not freed.** An in-place update
//!   (§2: "only the latest one survives") swaps the node's value
//!   pointer and parks the old allocation on a garbage list that is
//!   only freed in `Drop`, so a reader that loaded the old pointer can
//!   keep dereferencing it. Callers hold the memtable via `Arc`, so
//!   `Drop` cannot race a reader.
//! - **Writers serialize on an internal mutex**, which also guards the
//!   deterministic tower-height RNG and the garbage list.
//!
//! Tower heights come from a fixed-seed xorshift so that rebuilding the
//! same op trace rebuilds the same structure — nothing in the engine
//! depends on that, but it keeps replays reproducible when debugging.

use bytes::Bytes;
use std::fmt;
use std::ptr;
use std::sync::atomic::{
    AtomicPtr, AtomicUsize,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::Mutex;

/// Tallest tower. With p = 1/2 this is comfortable for the few hundred
/// thousand entries a large write buffer can hold.
const MAX_HEIGHT: usize = 16;

struct Node<V> {
    key: Bytes,
    /// Current value; swapped on in-place replacement.
    value: AtomicPtr<V>,
    /// `next[lvl]` is the successor at level `lvl` for levels the node's
    /// tower reaches; null above (and at the tail).
    next: [AtomicPtr<Node<V>>; MAX_HEIGHT],
}

impl<V> Node<V> {
    fn new(key: Bytes, value: V) -> Box<Self> {
        Box::new(Self {
            key,
            value: AtomicPtr::new(Box::into_raw(Box::new(value))),
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
        })
    }
}

struct WriterState<V> {
    /// xorshift64 state for tower heights; fixed seed, deterministic.
    rng: u64,
    /// Value allocations displaced by in-place replacement; freed in
    /// `Drop` (readers may still hold pointers to them until then).
    retired: Vec<*mut V>,
}

/// Concurrent sorted map: lock-free reads, mutex-serialized writes.
pub(crate) struct SkipList<V> {
    /// Sentinel with an empty key; never matched, only traversed.
    head: Box<Node<V>>,
    writer: Mutex<WriterState<V>>,
    len: AtomicUsize,
}

unsafe impl<V: Send> Send for SkipList<V> {}
unsafe impl<V: Send + Sync> Sync for SkipList<V> {}

impl<V> Default for SkipList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> fmt::Debug for SkipList<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipList")
            .field("len", &self.len())
            .finish()
    }
}

impl<V> SkipList<V> {
    pub fn new() -> Self {
        Self {
            head: Box::new(Node {
                key: Bytes::new(),
                value: AtomicPtr::new(ptr::null_mut()),
                next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            }),
            writer: Mutex::new(WriterState {
                rng: 0x9E37_79B9_7F4A_7C15,
                retired: Vec::new(),
            }),
            len: AtomicUsize::new(0),
        }
    }

    pub fn len(&self) -> usize {
        self.len.load(Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `value` under `key`, or replaces in place when the key is
    /// already present. Returns a reference to the **displaced** value
    /// if there was one — valid until the list drops, because retired
    /// allocations are only freed then.
    pub fn insert(&self, key: Bytes, value: V) -> Option<&V> {
        let mut writer = self.writer.lock().unwrap();
        let mut preds: [*const Node<V>; MAX_HEIGHT] = [&*self.head; MAX_HEIGHT];
        let mut node: *const Node<V> = &*self.head;
        let mut found: *const Node<V> = ptr::null();
        for lvl in (0..MAX_HEIGHT).rev() {
            loop {
                // Acquire pairs with the Release splice below so a fully
                // initialized node is visible once its pointer is.
                let next = unsafe { (*node).next[lvl].load(Acquire) };
                if next.is_null() {
                    break;
                }
                match unsafe { (*next).key.as_ref() }.cmp(key.as_ref()) {
                    std::cmp::Ordering::Less => node = next,
                    std::cmp::Ordering::Equal => {
                        found = next;
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            preds[lvl] = node;
        }

        if !found.is_null() {
            // In-place replacement: publish the new value, retire the old.
            let fresh = Box::into_raw(Box::new(value));
            let old = unsafe { (*found).value.swap(fresh, Release) };
            writer.retired.push(old);
            // Safe: retired allocations outlive every borrow of `self`.
            return Some(unsafe { &*old });
        }

        // New key: deterministic geometric height (p = 1/2).
        writer.rng ^= writer.rng << 13;
        writer.rng ^= writer.rng >> 7;
        writer.rng ^= writer.rng << 17;
        let height = ((writer.rng.trailing_zeros() as usize) + 1).min(MAX_HEIGHT);

        let node = Box::into_raw(Node::new(key, value));
        for (lvl, pred) in preds.iter().enumerate().take(height) {
            let succ = unsafe { (**pred).next[lvl].load(Relaxed) };
            unsafe { (*node).next[lvl].store(succ, Relaxed) };
            // Release publishes the node's key, value, and next pointers.
            unsafe { (**pred).next[lvl].store(node, Release) };
        }
        self.len.fetch_add(1, Relaxed);
        None
    }

    /// Lock-free point lookup.
    pub fn get(&self, key: &[u8]) -> Option<(&Bytes, &V)> {
        let mut node: *const Node<V> = &*self.head;
        for lvl in (0..MAX_HEIGHT).rev() {
            loop {
                let next = unsafe { (*node).next[lvl].load(Acquire) };
                if next.is_null() {
                    break;
                }
                match unsafe { (*next).key.as_ref() }.cmp(key) {
                    std::cmp::Ordering::Less => node = next,
                    std::cmp::Ordering::Equal => {
                        let value = unsafe { (*next).value.load(Acquire) };
                        return Some(unsafe { (&(*next).key, &*value) });
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        None
    }

    /// Lock-free in-order walk of every entry from the first key `>= lo`
    /// (or the front when `lo` is `None`). Entries spliced in while the
    /// iterator is live may or may not be observed.
    pub fn iter_from(&self, lo: Option<&[u8]>) -> Iter<'_, V> {
        let mut node: *const Node<V> = &*self.head;
        if let Some(lo) = lo {
            for lvl in (0..MAX_HEIGHT).rev() {
                loop {
                    let next = unsafe { (*node).next[lvl].load(Acquire) };
                    if next.is_null() || unsafe { (*next).key.as_ref() } >= lo {
                        break;
                    }
                    node = next;
                }
            }
        }
        Iter {
            next: unsafe { (*node).next[0].load(Acquire) },
            _list: self,
        }
    }

    /// Lock-free in-order walk of every entry.
    pub fn iter(&self) -> Iter<'_, V> {
        self.iter_from(None)
    }
}

impl<V> Drop for SkipList<V> {
    fn drop(&mut self) {
        let mut node = *self.head.next[0].get_mut();
        while !node.is_null() {
            let boxed = unsafe { Box::from_raw(node) };
            drop(unsafe { Box::from_raw(boxed.value.load(Relaxed)) });
            node = boxed.next[0].load(Relaxed);
        }
        let writer = self.writer.get_mut().unwrap();
        for retired in writer.retired.drain(..) {
            drop(unsafe { Box::from_raw(retired) });
        }
    }
}

/// Level-0 walk; see [`SkipList::iter_from`].
pub(crate) struct Iter<'a, V> {
    next: *const Node<V>,
    _list: &'a SkipList<V>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (&'a Bytes, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next.is_null() {
            return None;
        }
        let node = self.next;
        self.next = unsafe { (*node).next[0].load(Acquire) };
        let value = unsafe { (*node).value.load(Acquire) };
        Some(unsafe { (&(*node).key, &*value) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_get_replace() {
        let list: SkipList<u32> = SkipList::new();
        assert!(list.insert(b("b"), 2).is_none());
        assert!(list.insert(b("a"), 1).is_none());
        assert_eq!(list.insert(b("b"), 20), Some(&2));
        assert_eq!(list.len(), 2);
        assert_eq!(list.get(b"a"), Some((&b("a"), &1)));
        assert_eq!(list.get(b"b"), Some((&b("b"), &20)));
        assert_eq!(list.get(b"c"), None);
    }

    #[test]
    fn iter_is_sorted_and_bounded() {
        let list: SkipList<u32> = SkipList::new();
        for (i, k) in ["d", "a", "c", "b", "e"].iter().enumerate() {
            list.insert(b(k), i as u32);
        }
        let keys: Vec<&Bytes> = list.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b("a"), &b("b"), &b("c"), &b("d"), &b("e")]);
        let from_c: Vec<&Bytes> = list.iter_from(Some(b"c")).map(|(k, _)| k).collect();
        assert_eq!(from_c, vec![&b("c"), &b("d"), &b("e")]);
        assert_eq!(list.iter_from(Some(b"z")).count(), 0);
    }

    #[test]
    fn many_keys_stay_sorted() {
        let list: SkipList<usize> = SkipList::new();
        for i in 0..2000usize {
            list.insert(b(&format!("key{:05}", (i * 7919) % 2000)), i);
        }
        assert_eq!(list.len(), 2000);
        let keys: Vec<Vec<u8>> = list.iter().map(|(k, _)| k.to_vec()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let list: Arc<SkipList<u64>> = Arc::new(SkipList::new());
        let stop = Arc::new(AtomicUsize::new(0));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut hits = 0u64;
                while stop.load(Acquire) == 0 {
                    for i in (0..512).step_by(7) {
                        if let Some((k, v)) = list.get(format!("k{i:04}").as_bytes()) {
                            // A replaced value is always >= the original.
                            assert!(*v >= (i as u64), "key {k:?} regressed");
                            hits += 1;
                        }
                    }
                    let mut prev: Option<Vec<u8>> = None;
                    for (k, _) in list.iter() {
                        if let Some(p) = &prev {
                            assert!(k.as_ref() > p.as_slice(), "iteration out of order");
                        }
                        prev = Some(k.to_vec());
                    }
                }
                hits
            }));
        }
        for round in 0..8u64 {
            for i in 0..512u64 {
                list.insert(b(&format!("k{i:04}")), i + round * 1000);
            }
        }
        stop.store(1, Release);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(list.len(), 512);
        assert_eq!(*list.get(b"k0000").unwrap().1, 7000);
    }
}
