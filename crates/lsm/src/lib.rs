//! A complete LSM-tree storage engine — the substrate of the Monkey
//! reproduction.
//!
//! This crate plays the role LevelDB plays in the paper: a full LSM-tree
//! key-value store with
//!
//! * an in-memory **buffer** (memtable, Level 0 in the paper's terms) of
//!   configurable capacity `M_buffer = P·B·E`,
//! * an optional **write-ahead log** for durability of buffered updates,
//! * immutable sorted **runs** laid out in fixed-size pages with in-memory
//!   **fence pointers** (first key of every page), so probing a run costs
//!   exactly one page I/O (§2 of the paper),
//! * a Bloom **filter per run**, with the bits-per-entry decided by a
//!   pluggable [`FilterPolicy`] — uniform allocation reproduces the
//!   state-of-the-art baseline; the `monkey` crate plugs in the paper's
//!   optimal allocation,
//! * both **merge policies**: *leveling* (one run per level, eager merge)
//!   and *tiering* (up to `T−1` resident runs per level, merge on the
//!   arrival of the `T`-th), with any size ratio `T ≥ 2`,
//! * point lookups, range scans (via a k-way merge iterator), deletes
//!   (tombstones), crash recovery from WAL + manifest, and full memory- and
//!   I/O-footprint introspection.
//!
//! Merge scheduling is configurable. By default flushes and compactions
//! happen inline on the write path, so every experiment's I/O counts are
//! deterministic (the paper's §6 notes that merge *scheduling* is orthogonal
//! to Monkey's contribution). With
//! [`background_compaction`](DbOptions::background_compaction) the write
//! path hands full memtables to a dedicated flush/compaction worker through
//! a bounded immutable queue, the WAL group-commits concurrent appends, and
//! puts stall only when the queue hits its configured limit. In **both**
//! modes reads are served from an immutable version snapshot
//! ([`level::Version`]) and never block on an in-flight merge.
//!
//! # Example
//!
//! ```
//! use monkey_lsm::{Db, DbOptions, MergePolicy};
//!
//! let db = Db::open(DbOptions::in_memory()
//!     .buffer_capacity(4 << 10)
//!     .size_ratio(4)
//!     .merge_policy(MergePolicy::Leveling)).unwrap();
//! db.put(b"key".to_vec(), b"value".to_vec()).unwrap();
//! assert_eq!(db.get(b"key").unwrap().as_deref(), Some(&b"value"[..]));
//! db.delete(b"key".to_vec()).unwrap();
//! assert_eq!(db.get(b"key").unwrap(), None);
//! ```

#![warn(missing_docs)]

pub mod compaction;
pub mod entry;
pub mod iter;
pub mod level;
pub mod manifest;
pub mod memtable;
pub mod merge;
pub mod page;
pub mod policy;
pub mod run;
pub(crate) mod skiplist;
pub mod stats;
pub mod vlog;
pub mod wal;

mod db;
mod error;
mod options;

pub use db::{AdviceProvider, CompactionStats, Db};
pub use entry::{Entry, EntryKind};
pub use error::{LsmError, Result};
pub use iter::RangeIter;
pub use merge::MergeReport;
pub use monkey_bloom::FilterVariant;
pub use monkey_obs::{
    decode_segment, http_get, mode_split, DecodedFlight, DriftFlag, Event, EventKind,
    FlightRecorder, HotKey, IoBackendReport, IoLatency, IoLatencyReport, IoLevelLatencyReport,
    IoOp, LevelIoRates, LevelIoSnapshot, LevelLookupSnapshot, LevelReport, MeasuredWorkload,
    ModeSplit, OpKind, OpLatencyReport, RecorderRecord, ShardBreakdown, SmoothedRates, Span,
    SpanKind, Telemetry, TelemetryReport, TelemetrySnapshot, Tracer, WindowRates, WindowedSeries,
    WorkloadCharacterizer, IO_OPS,
};
pub use monkey_storage::{BackendInfo, CachePolicy, CacheStats, IoBackend};
pub use options::DbOptions;
pub use policy::{FilterContext, FilterPolicy, MergePolicy, UniformFilterPolicy};
pub use run::{FilterParams, Run, RunLookup};
pub use stats::{DbStats, LevelStats, LookupStats, PipelineGauges, PipelineStats};
pub use vlog::{ValueLog, ValuePointer};
pub use wal::{SyncStats, WalStats, WalSyncCoordinator};
