//! Levels: the exponentially growing tiers of the tree.
//!
//! Level `i` (1-based, disk-resident) has a capacity of `M_buffer · Tⁱ`
//! bytes. Under leveling it holds at most one run; under tiering up to
//! `T−1` resident runs, ordered youngest first so lookups probe the most
//! recent data first (§2).

use crate::run::Run;
use std::sync::Arc;

/// One disk level: its runs, youngest first.
#[derive(Debug, Default, Clone)]
pub struct Level {
    runs: Vec<Arc<Run>>,
}

impl Level {
    /// Creates an empty level.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs in the level, youngest (most recently created) first.
    pub fn runs(&self) -> &[Arc<Run>] {
        &self.runs
    }

    /// Adds a freshly created run as the youngest.
    pub fn push_youngest(&mut self, run: Arc<Run>) {
        self.runs.insert(0, run);
    }

    /// Removes and returns all runs (for a tiering merge or a leveling
    /// cascade), oldest last.
    pub fn take_all(&mut self) -> Vec<Arc<Run>> {
        std::mem::take(&mut self.runs)
    }

    /// Replaces the run at `idx` (same data, e.g. a rebuilt filter).
    pub fn replace_run(&mut self, idx: usize, run: Arc<Run>) {
        self.runs[idx] = run;
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// True when the level holds no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total entries across the level's runs.
    pub fn entries(&self) -> u64 {
        self.runs.iter().map(|r| r.entries()).sum()
    }

    /// Total payload bytes across the level's runs.
    pub fn bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.bytes()).sum()
    }
}

/// An immutable snapshot of the tree's disk-resident shape: the level/run
/// lists at one instant.
///
/// The engine keeps the current version behind an `Arc` and publishes
/// changes by building a *new* version off to the side and swapping the
/// pointer — readers that cloned the `Arc` keep iterating their snapshot
/// while a merge cascade installs its successor, so `get`/`range` never
/// block on compaction. Runs are themselves `Arc`ed and copy-on-write at
/// the level granularity, so cloning a version is cheap (a `Vec` of
/// refcount bumps).
#[derive(Debug, Default, Clone)]
pub struct Version {
    levels: Vec<Level>,
}

impl Version {
    /// A version with no disk levels (fresh database).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A version wrapping existing levels (recovery path).
    pub fn from_levels(levels: Vec<Level>) -> Self {
        Self { levels }
    }

    /// Disk levels, shallowest first. Index 0 is the paper's level 1.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Mutable access for cascade construction (only ever called on a
    /// private clone that has not been published yet).
    pub fn levels_mut(&mut self) -> &mut Vec<Level> {
        &mut self.levels
    }

    /// Ensures at least `n` levels exist, growing with empty ones.
    pub fn ensure_levels(&mut self, n: usize) {
        while self.levels.len() < n {
            self.levels.push(Level::new());
        }
    }

    /// Number of disk levels (including empty trailing ones).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Deepest non-empty level (1-based), 0 when the disk is empty.
    pub fn deepest(&self) -> usize {
        self.levels
            .iter()
            .rposition(|l| !l.is_empty())
            .map_or(0, |i| i + 1)
    }

    /// Total entries across all disk runs.
    pub fn disk_entries(&self) -> u64 {
        self.levels.iter().map(|l| l.entries()).sum()
    }

    /// Total runs across all levels.
    pub fn run_count(&self) -> usize {
        self.levels.iter().map(|l| l.run_count()).sum()
    }
}

/// Capacity in bytes of disk level `i` (1-based): `buffer_bytes · Tⁱ`
/// (Figure 2's `P·B·Tⁱ` schedule, expressed in bytes so entry sizes may
/// vary).
pub fn level_capacity_bytes(buffer_bytes: usize, size_ratio: usize, level: usize) -> u64 {
    let mut cap = buffer_bytes as u64;
    for _ in 0..level {
        cap = cap.saturating_mul(size_ratio as u64);
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;
    use crate::run::RunBuilder;
    use monkey_storage::Disk;

    fn tiny_run(disk: &Arc<Disk>, key: &str) -> Arc<Run> {
        let mut b = RunBuilder::new(Arc::clone(disk));
        b.push(Entry::put(key.as_bytes().to_vec(), b"v".to_vec(), 0))
            .unwrap();
        Arc::new(b.finish(10.0).unwrap().unwrap())
    }

    #[test]
    fn youngest_first_ordering() {
        let disk = Disk::mem(64);
        let mut level = Level::new();
        let a = tiny_run(&disk, "a");
        let b = tiny_run(&disk, "b");
        level.push_youngest(a);
        level.push_youngest(Arc::clone(&b));
        assert_eq!(level.run_count(), 2);
        assert_eq!(level.runs()[0].id(), b.id(), "youngest run probed first");
    }

    #[test]
    fn take_all_empties_level() {
        let disk = Disk::mem(64);
        let mut level = Level::new();
        level.push_youngest(tiny_run(&disk, "a"));
        level.push_youngest(tiny_run(&disk, "b"));
        let taken = level.take_all();
        assert_eq!(taken.len(), 2);
        assert!(level.is_empty());
    }

    #[test]
    fn aggregates() {
        let disk = Disk::mem(64);
        let mut level = Level::new();
        level.push_youngest(tiny_run(&disk, "a"));
        level.push_youngest(tiny_run(&disk, "b"));
        assert_eq!(level.entries(), 2);
        assert!(level.bytes() > 0);
    }

    #[test]
    fn capacity_schedule_is_exponential() {
        // Figure 2: level i holds P·B·T^i entries; in bytes, buffer · T^i.
        assert_eq!(level_capacity_bytes(1000, 3, 1), 3_000);
        assert_eq!(level_capacity_bytes(1000, 3, 2), 9_000);
        assert_eq!(level_capacity_bytes(1000, 3, 3), 27_000);
        assert_eq!(level_capacity_bytes(1000, 2, 10), 1_024_000);
    }

    #[test]
    fn capacity_saturates_instead_of_overflowing() {
        let cap = level_capacity_bytes(usize::MAX, 1000, 10);
        assert_eq!(cap, u64::MAX);
    }

    #[test]
    fn version_snapshot_is_immutable_under_successor_edits() {
        let disk = Disk::mem(64);
        let mut v = Version::empty();
        v.ensure_levels(2);
        v.levels_mut()[0].push_youngest(tiny_run(&disk, "a"));
        let snapshot = v.clone();
        // Mutating the successor must not disturb the snapshot.
        v.levels_mut()[0].take_all();
        v.levels_mut()[1].push_youngest(tiny_run(&disk, "b"));
        assert_eq!(snapshot.levels()[0].run_count(), 1);
        assert_eq!(snapshot.disk_entries(), 1);
        assert_eq!(v.levels()[0].run_count(), 0);
        assert_eq!(v.run_count(), 1);
        assert_eq!(v.depth(), 2);
    }
}
