//! Error type for the LSM engine.

use monkey_storage::StorageError;

/// Errors surfaced by the LSM engine.
#[derive(Debug)]
pub enum LsmError {
    /// A storage-layer failure.
    Storage(StorageError),
    /// An entry too large to fit in one page with its header.
    EntryTooLarge {
        /// Combined encoded size of the entry.
        encoded: usize,
        /// Maximum encoded entry size for this page size.
        max: usize,
    },
    /// A key longer than the format's 64 KiB limit.
    KeyTooLarge(usize),
    /// WAL or manifest contents failed a structural check.
    Corruption(String),
    /// An operating-system error outside the paged store (WAL, manifest).
    Io(std::io::Error),
    /// A deferred failure from the background flush/compaction worker,
    /// surfaced on the next foreground call (the original error is not
    /// `Clone`, so the worker records its rendering).
    Background(String),
}

impl std::fmt::Display for LsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage: {e}"),
            Self::EntryTooLarge { encoded, max } => {
                write!(
                    f,
                    "entry encodes to {encoded} bytes, page fits at most {max}"
                )
            }
            Self::KeyTooLarge(n) => write!(f, "key is {n} bytes, limit is 65535"),
            Self::Corruption(msg) => write!(f, "corruption: {msg}"),
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::Background(msg) => write!(f, "background worker: {msg}"),
        }
    }
}

impl std::error::Error for LsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for LsmError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<std::io::Error> for LsmError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Convenience alias used across the engine.
pub type Result<T> = std::result::Result<T, LsmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = LsmError::EntryTooLarge {
            encoded: 5000,
            max: 4000,
        };
        assert!(e.to_string().contains("5000"));
        let e: LsmError = StorageError::NotFound { run: 1, page: None }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = LsmError::KeyTooLarge(70_000);
        assert!(e.to_string().contains("70000"));
        let e = LsmError::Corruption("bad".into());
        assert!(e.to_string().contains("bad"));
        let e: LsmError = std::io::Error::other("x").into();
        assert!(std::error::Error::source(&e).is_some());
        let e = LsmError::Background("flush failed".into());
        assert!(e.to_string().contains("flush failed"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
