//! The manifest: durable record of the tree's structure.
//!
//! After every structural change (flush, merge cascade) the engine writes a
//! complete snapshot of the level layout — which run ids live at which
//! level, in age order — plus the sequence-number high-water mark and the
//! tuning parameters the layout was built with. The snapshot is written to
//! a temp file and atomically renamed, so a crash leaves either the old or
//! the new manifest, never a torn one.
//!
//! The format is plain text for debuggability:
//!
//! ```text
//! monkey-manifest v1
//! seq <next-seq>
//! policy <leveling|tiering>
//! ratio <T>
//! run <id> <level> <age> <filter-bits-per-entry> [<filter-flavor>]
//! ```
//!
//! The trailing filter-flavor field (`standard` or `blocked`) was added
//! with the blocked-filter variant; manifests written before it omit the
//! field and parse as `standard`, so old stores recover unchanged.

use crate::error::{LsmError, Result};
use crate::policy::MergePolicy;
use monkey_bloom::FilterVariant;
use std::io::Write;
use std::path::PathBuf;

/// One run's position in the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Storage id of the run.
    pub id: u64,
    /// 1-based level index.
    pub level: usize,
    /// Age within the level: 0 = youngest.
    pub age: usize,
    /// Bits-per-entry the run's Bloom filter was built with, so recovery
    /// reproduces the exact allocation (Monkey's varies per level).
    pub bits_per_entry: f64,
    /// Filter layout the run was built with, so recovery rebuilds the same
    /// variant (absent in pre-flavor manifests ⇒ standard).
    pub flavor: FilterVariant,
}

/// A decoded manifest snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ManifestState {
    /// Next sequence number to assign.
    pub next_seq: u64,
    /// Merge policy the layout was built with.
    pub policy: Option<MergePolicy>,
    /// Size ratio the layout was built with.
    pub size_ratio: Option<usize>,
    /// Every run in the tree.
    pub runs: Vec<RunRecord>,
}

/// Writer/reader for the manifest file.
pub struct Manifest {
    path: PathBuf,
}

impl Manifest {
    /// Creates a manifest handle at `path` (file need not exist yet).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// Loads the current snapshot; `None` when no manifest exists yet.
    pub fn load(&self) -> Result<Option<ManifestState>> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        parse(&text).map(Some)
    }

    /// Atomically replaces the manifest with `state`.
    pub fn store(&self, state: &ManifestState) -> Result<()> {
        let mut text = String::from("monkey-manifest v1\n");
        text.push_str(&format!("seq {}\n", state.next_seq));
        if let Some(policy) = state.policy {
            text.push_str(&format!("policy {}\n", policy.name()));
        }
        if let Some(ratio) = state.size_ratio {
            text.push_str(&format!("ratio {ratio}\n"));
        }
        for run in &state.runs {
            text.push_str(&format!(
                "run {} {} {} {} {}\n",
                run.id,
                run.level,
                run.age,
                run.bits_per_entry,
                run.flavor.name()
            ));
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

fn parse(text: &str) -> Result<ManifestState> {
    let mut lines = text.lines();
    match lines.next() {
        Some("monkey-manifest v1") => {}
        other => {
            return Err(LsmError::Corruption(format!(
                "bad manifest header: {other:?}"
            )))
        }
    }
    let mut state = ManifestState::default();
    for (no, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || LsmError::Corruption(format!("bad manifest line {}: {line:?}", no + 2));
        match parts.next() {
            Some("seq") => {
                state.next_seq = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            }
            Some("policy") => {
                state.policy = Some(parts.next().and_then(MergePolicy::parse).ok_or_else(bad)?);
            }
            Some("ratio") => {
                state.size_ratio = Some(parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?);
            }
            Some("run") => {
                let id = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let level = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let age = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let bits_per_entry = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
                let flavor = match parts.next() {
                    None => FilterVariant::Standard, // pre-flavor manifest
                    Some(s) => FilterVariant::parse(s).ok_or_else(bad)?,
                };
                state.runs.push(RunRecord {
                    id,
                    level,
                    age,
                    bits_per_entry,
                    flavor,
                });
            }
            _ => return Err(bad()),
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("monkey-manifest-{}-{name}", std::process::id()))
    }

    fn sample() -> ManifestState {
        ManifestState {
            next_seq: 42,
            policy: Some(MergePolicy::Tiering),
            size_ratio: Some(4),
            runs: vec![
                RunRecord {
                    id: 7,
                    level: 1,
                    age: 0,
                    bits_per_entry: 12.5,
                    flavor: FilterVariant::Standard,
                },
                RunRecord {
                    id: 3,
                    level: 1,
                    age: 1,
                    bits_per_entry: 0.1875,
                    flavor: FilterVariant::Blocked,
                },
                RunRecord {
                    id: 1,
                    level: 2,
                    age: 0,
                    bits_per_entry: 0.0,
                    flavor: FilterVariant::Standard,
                },
            ],
        }
    }

    #[test]
    fn store_load_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let m = Manifest::at(&path);
        assert!(m.load().unwrap().is_none());
        m.store(&sample()).unwrap();
        assert_eq!(m.load().unwrap().unwrap(), sample());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_overwrites_atomically() {
        let path = tmp("overwrite");
        let _ = std::fs::remove_file(&path);
        let m = Manifest::at(&path);
        m.store(&sample()).unwrap();
        let mut next = sample();
        next.next_seq = 100;
        next.runs.clear();
        m.store(&next).unwrap();
        assert_eq!(m.load().unwrap().unwrap(), next);
        assert!(!path.with_extension("tmp").exists(), "temp file cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse("not a manifest\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(parse("monkey-manifest v1\nseq notanumber\n").is_err());
        assert!(parse("monkey-manifest v1\nrun 1\n").is_err());
        assert!(
            parse("monkey-manifest v1\nrun 1 2 0\n").is_err(),
            "missing bpe field"
        );
        assert!(
            parse("monkey-manifest v1\nrun 1 2 0 5.0 sideways\n").is_err(),
            "bad flavor"
        );
        assert!(parse("monkey-manifest v1\nwhatever 1 2\n").is_err());
        assert!(parse("monkey-manifest v1\npolicy sideways\n").is_err());
    }

    #[test]
    fn pre_flavor_manifest_parses_as_standard() {
        // A manifest written before the filter-flavor field existed.
        let state = parse("monkey-manifest v1\nseq 9\nrun 4 1 0 7.5\n").unwrap();
        assert_eq!(state.runs.len(), 1);
        assert_eq!(state.runs[0].bits_per_entry, 7.5);
        assert_eq!(state.runs[0].flavor, FilterVariant::Standard);
    }

    #[test]
    fn minimal_manifest_parses() {
        let state = parse("monkey-manifest v1\nseq 0\n").unwrap();
        assert_eq!(state.next_seq, 0);
        assert!(state.runs.is_empty());
        assert!(state.policy.is_none());
    }

    #[test]
    fn blank_lines_ignored() {
        let state = parse("monkey-manifest v1\n\nseq 5\n\nrun 1 1 0 2.5\n").unwrap();
        assert_eq!(state.next_seq, 5);
        assert_eq!(state.runs.len(), 1);
    }
}
