//! Tuning policies: merge policy and Bloom-filter allocation.
//!
//! The merge policy and size ratio `T` navigate the paper's Figure 4
//! trade-off continuum; the filter policy decides the bits-per-entry of
//! each newly built run and is the knob Monkey's contribution turns. The
//! engine ships the state-of-the-art **uniform** policy; the `monkey` crate
//! provides the optimal allocation on top of the model crate.

/// How runs of similar sizes are merged (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// At most one run per level; an arriving run is immediately
    /// sort-merged with the resident run. Lookup-friendly.
    Leveling,
    /// Up to `T−1` resident runs per level; the arrival of the `T`-th
    /// triggers a merge of all of them into the next level. Update-friendly.
    Tiering,
}

impl MergePolicy {
    /// Short lowercase name (for CSV output and manifests).
    pub fn name(self) -> &'static str {
        match self {
            Self::Leveling => "leveling",
            Self::Tiering => "tiering",
        }
    }

    /// Parses [`name`](Self::name)'s output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "leveling" => Some(Self::Leveling),
            "tiering" => Some(Self::Tiering),
            _ => None,
        }
    }
}

/// Everything a filter policy may consider when allocating bits for one new
/// run.
#[derive(Debug, Clone)]
pub struct FilterContext {
    /// 1-based level index from the shallowest disk level (the paper's `i`).
    pub level: usize,
    /// Current number of occupied disk levels (the paper's `L`).
    pub num_levels: usize,
    /// Entries in the run being built.
    pub run_entries: u64,
    /// Total entries across the tree (the paper's `N`).
    pub total_entries: u64,
    /// Entry counts of the *other* runs that will coexist with the new run
    /// (the inputs a merge is replacing are excluded). Lets a policy solve
    /// the allocation over the actual tree instead of the idealized
    /// capacity schedule.
    pub other_run_entries: Vec<u64>,
    /// Size ratio `T` between adjacent levels.
    pub size_ratio: usize,
    /// The merge policy in force.
    pub merge_policy: MergePolicy,
}

/// Decides the Bloom-filter budget of each newly built run.
pub trait FilterPolicy: Send + Sync {
    /// Bits per entry for the run described by `ctx`. Zero or negative
    /// means no filter (the degenerate always-positive filter).
    fn bits_per_entry(&self, ctx: &FilterContext) -> f64;

    /// Human-readable policy name.
    fn name(&self) -> &str;
}

/// The state of the art (§2): "all LSM-tree based key-value stores use the
/// same number of bits-per-entry across all Bloom filters."
#[derive(Debug, Clone)]
pub struct UniformFilterPolicy {
    bits_per_entry: f64,
}

impl UniformFilterPolicy {
    /// Uniform allocation at `bits_per_entry` (LevelDB's default is 10; the
    /// paper's experiments use 5).
    pub fn new(bits_per_entry: f64) -> Self {
        Self { bits_per_entry }
    }
}

impl FilterPolicy for UniformFilterPolicy {
    fn bits_per_entry(&self, _ctx: &FilterContext) -> f64 {
        self.bits_per_entry
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_policy_names_roundtrip() {
        for p in [MergePolicy::Leveling, MergePolicy::Tiering] {
            assert_eq!(MergePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(MergePolicy::parse("bogus"), None);
    }

    #[test]
    fn uniform_ignores_context() {
        let p = UniformFilterPolicy::new(5.0);
        let shallow = FilterContext {
            level: 1,
            num_levels: 5,
            run_entries: 10,
            total_entries: 1000,
            other_run_entries: vec![100, 890],
            size_ratio: 2,
            merge_policy: MergePolicy::Leveling,
        };
        let deep = FilterContext {
            level: 5,
            run_entries: 800,
            ..shallow.clone()
        };
        assert_eq!(p.bits_per_entry(&shallow), 5.0);
        assert_eq!(p.bits_per_entry(&deep), 5.0);
        assert_eq!(p.name(), "uniform");
    }
}
