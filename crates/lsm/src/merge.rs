//! The partitioned parallel merge engine.
//!
//! A merge sort-merges a set of runs into one output run. Sequentially
//! that is a single k-way merge; here the merged *key space* is first cut
//! into disjoint key-range partitions along the input runs' existing
//! fence pointers, the partitions are merged concurrently by a small
//! worker pool, and the coordinator concatenates the partition outputs —
//! in partition order — into one [`RunBuilder`].
//!
//! # Byte identity
//!
//! The parallel merge produces output **byte-identical** to the
//! sequential merge, with identical `IoStats` totals:
//!
//! * Partitions are disjoint, contiguous key ranges `[b_{p-1}, b_p)`
//!   covering the whole key space, so every version of a key lands in
//!   exactly one partition. Dedup (newest version wins) and tombstone
//!   dropping are per-key decisions, hence identical to the sequential
//!   merge, and the concatenation of the partition outputs is exactly the
//!   sequential merge's entry sequence.
//! * All output pages are packed by the single coordinator-owned
//!   `RunBuilder` from that sequence, so page boundaries, fences, and the
//!   filter are identical.
//! * Every input page is read exactly once: a boundary either falls on a
//!   page edge (a fence key) of a run, or *straddles* one page of it, and
//!   straddled pages are pre-read once by the coordinator, which hands
//!   the decoded entries to the adjacent partitions in memory. Page 0 of
//!   each run is read with a seek (`read_page`) by whoever reads it —
//!   coordinator or worker — and every other page with
//!   `read_page_sequential`, so seeks == number of input runs and reads
//!   == number of input pages, exactly as in the sequential merge.
//!
//! # Failure
//!
//! Any worker error aborts the whole merge: the coordinator stops
//! consuming (workers unblock on their closed channels), the partially
//! written output run is deleted by `RunWriter`'s drop, the inputs are
//! *not* marked obsolete, and the first error propagates to the caller.

use crate::entry::Entry;
use crate::error::{LsmError, Result};
use crate::iter::{EntrySource, MergingIter};
use crate::page::{decode_page, PageCursor};
use crate::run::{FilterParams, Run, RunBuilder};
use bytes::Bytes;
use monkey_storage::Disk;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};

/// Entries per batch a worker hands to the coordinator.
const BATCH_ENTRIES: usize = 1024;
/// Bounded channel depth, in batches, per partition — workers merging
/// ahead of the coordinator park after this much lookahead.
const CHANNEL_BATCHES: usize = 4;

/// How a merge was executed, for telemetry gauges and trace lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Key-range partitions the merge was cut into (1 = sequential).
    pub partitions: u32,
    /// Worker threads that merged them (1 = sequential).
    pub threads: u32,
    /// Ids of the input runs consumed, in merge order — the causal lineage
    /// a cascade span records so a trace can say which runs fed a merge.
    pub input_runs: Vec<u64>,
}

/// Pre-registers the run under construction at its destination `level` in
/// the disk's I/O attribution table (when one is attached), so the build's
/// own page writes are charged to the level the run will land on. A no-op
/// without telemetry. Stale tags from failed builds are harmless — the run
/// id is never reused for I/O — and every version install retags from the
/// authoritative tree anyway.
pub(crate) fn tag_destination(disk: &Disk, builder: &RunBuilder, level: usize) {
    if let Some(attr) = disk.attribution() {
        attr.tag_run(builder.run_id(), level);
    }
}

/// Sort-merges `inputs` into a single new run landing at `level`, using up
/// to `threads` worker threads (see the module docs; `threads == 1` is the
/// fully sequential merge).
///
/// * Duplicate keys are resolved newest-wins (by sequence number).
/// * With `drop_tombstones`, tombstones are not written to the output.
/// * Inputs are marked obsolete on success; their storage is reclaimed when
///   the last reference (e.g. a concurrent cursor) drops.
/// * `level` is the 1-based destination level, used only for per-level I/O
///   attribution when telemetry is enabled (the caller still places the run
///   in the tree itself).
///
/// Returns `None` when the merge produces no entries at all (e.g. only
/// tombstones merged into the last level).
pub fn merge_runs_with(
    disk: &Arc<Disk>,
    inputs: &[Arc<Run>],
    drop_tombstones: bool,
    level: usize,
    filter: impl Into<FilterParams>,
    threads: usize,
) -> Result<(Option<Arc<Run>>, MergeReport)> {
    debug_assert!(!inputs.is_empty());
    debug_assert!(threads >= 1);
    let mut builder = RunBuilder::new(Arc::clone(disk));
    tag_destination(disk, &builder, level);
    let run_id = builder.run_id();
    let mut report = feed_merge(&mut builder, inputs, drop_tombstones, threads)?;
    report.input_runs = inputs.iter().map(|r| r.id()).collect();
    let output = builder.finish(filter)?.map(Arc::new);
    if output.is_none() {
        if let Some(attr) = disk.attribution() {
            attr.untag_run(run_id);
        }
    }
    for input in inputs {
        input.mark_obsolete();
    }
    Ok((output, report))
}

/// Streams the merged (deduped, optionally tombstone-dropped) entry
/// sequence of `inputs` into `builder`, sequentially or partitioned.
fn feed_merge(
    builder: &mut RunBuilder,
    inputs: &[Arc<Run>],
    drop_tombstones: bool,
    threads: usize,
) -> Result<MergeReport> {
    let partitions = if threads > 1 {
        plan_partitions(inputs, threads)?
    } else {
        Vec::new()
    };
    if partitions.len() <= 1 {
        let sources: Vec<EntrySource> = inputs
            .iter()
            .map(|run| Box::new(run.iter_for_merge()) as EntrySource)
            .collect();
        for item in MergingIter::new(sources, true)? {
            let entry: Entry = item?;
            if drop_tombstones && entry.is_tombstone() {
                continue;
            }
            builder.push(entry)?;
        }
        return Ok(MergeReport {
            partitions: 1,
            threads: 1,
            input_runs: Vec::new(),
        });
    }
    let nparts = partitions.len() as u32;
    let workers = threads.min(partitions.len()) as u32;
    feed_parallel(builder, partitions, drop_tombstones, workers as usize)?;
    Ok(MergeReport {
        partitions: nparts,
        threads: workers,
        input_runs: Vec::new(),
    })
}

/// One partition's slice of one input run: optional decoded entries from a
/// straddled page on either side of a range of whole pages.
struct RunSlice {
    run: Arc<Run>,
    /// Entries (already in key order) preceding `pages`, cut from a
    /// straddle page the coordinator pre-read.
    head: Vec<Entry>,
    /// Pages wholly inside the partition, read by the worker itself.
    pages: Range<u32>,
    /// Entries following `pages`, cut from a straddle page.
    tail: Vec<Entry>,
}

impl RunSlice {
    fn is_empty(&self) -> bool {
        self.head.is_empty() && self.pages.is_empty() && self.tail.is_empty()
    }

    fn into_source(self) -> EntrySource {
        let range = PageRangeIter::new(self.run, self.pages);
        Box::new(
            self.head
                .into_iter()
                .map(Ok)
                .chain(range)
                .chain(self.tail.into_iter().map(Ok)),
        )
    }
}

/// One key-range partition of the merge: a slice of every input run, in
/// input order.
struct Partition {
    slices: Vec<RunSlice>,
}

/// Pages per batched readahead submission on the merge path. One
/// multi-page submission (a chained io_uring SQE batch on the direct
/// backend, one scatter call elsewhere) replaces this many single-page
/// round trips, while the window stays small enough that decode keeps
/// overlapping I/O and memory stays bounded per run slice.
const MERGE_READAHEAD_PAGES: u32 = 8;

/// Batched readahead over a run's page range `[start, end)`: page 0 of
/// the run costs a seek + read, every other page a sequential read —
/// byte-identical `IoStats` to reading one page at a time — but pages are
/// fetched [`MERGE_READAHEAD_PAGES`] at a time in one backend submission,
/// and draining the window refills it so decode overlaps I/O. Every page
/// in the range is read exactly once.
struct PageRangeIter {
    run: Arc<Run>,
    next_page: u32,
    end: u32,
    cursor: Option<PageCursor>,
    window: std::collections::VecDeque<Bytes>,
    done: bool,
}

impl PageRangeIter {
    fn new(run: Arc<Run>, pages: Range<u32>) -> Self {
        Self {
            run,
            next_page: pages.start,
            end: pages.end.max(pages.start),
            cursor: None,
            window: std::collections::VecDeque::new(),
            done: false,
        }
    }

    /// Issues the next readahead batch. Page 0 (wherever it is claimed)
    /// carries the run's single seek; everything else is sequential.
    /// Streaming admission throughout: merge inputs must not flush a
    /// scan-resistant cache's protected segment.
    fn fill_window(&mut self) -> Result<()> {
        let count = MERGE_READAHEAD_PAGES.min(self.end.saturating_sub(self.next_page));
        if count == 0 {
            return Ok(());
        }
        let reqs: Vec<(monkey_storage::RunId, u32, bool)> = (self.next_page
            ..self.next_page + count)
            .map(|p| (self.run.id(), p, p == 0))
            .collect();
        let pages = self.run.disk().read_scattered(&reqs)?;
        self.next_page += count;
        self.window.extend(pages);
        Ok(())
    }

    fn advance(&mut self) -> Result<Option<Entry>> {
        loop {
            if let Some(cursor) = &mut self.cursor {
                if let Some(entry) = cursor.next_entry()? {
                    return Ok(Some(entry));
                }
                self.cursor = None;
            }
            if self.window.is_empty() {
                if self.done || self.next_page >= self.end {
                    self.done = true;
                    return Ok(None);
                }
                self.fill_window()?;
            }
            let Some(page) = self.window.pop_front() else {
                self.done = true;
                return Ok(None);
            };
            self.cursor = Some(PageCursor::new(page)?);
        }
    }
}

impl Iterator for PageRangeIter {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Err(e) => {
                self.done = true;
                self.cursor = None;
                self.window.clear();
                Some(Err(e))
            }
            Ok(next) => next.map(Ok),
        }
    }
}

/// Where one partition boundary cuts one run.
struct Cut {
    /// Pages `0..left_end` hold only keys below the boundary.
    left_end: u32,
    /// Pages `right_start..` hold only keys at or above the boundary. When
    /// `right_start == left_end + 1`, page `left_end` straddles the
    /// boundary; otherwise the boundary falls on a page edge.
    right_start: u32,
}

/// Cuts the merged key space into up to `want` contiguous partitions along
/// the input runs' fence keys, balancing input pages per partition, and
/// pre-reads every straddled page (exactly once) to distribute its entries
/// to the adjacent partitions.
fn plan_partitions(inputs: &[Arc<Run>], want: usize) -> Result<Vec<Partition>> {
    let total_pages: u64 = inputs.iter().map(|r| r.pages() as u64).sum();
    let want = want.min(total_pages.max(1) as usize);
    if want <= 1 {
        return Ok(Vec::new());
    }
    // Candidate boundaries are fence keys — each is a clean page edge of
    // the run that owns it. Each fence carries the weight of its one page;
    // walking them in key order and cutting every `total/want` pages
    // balances input pages per partition.
    let mut fences: Vec<&Bytes> = inputs.iter().flat_map(|r| r.fences().iter()).collect();
    fences.sort_unstable();
    let stride = total_pages as f64 / want as f64;
    let mut boundaries: Vec<Bytes> = Vec::with_capacity(want - 1);
    for (i, fence) in fences.iter().enumerate() {
        if boundaries.len() == want - 1 {
            break;
        }
        let consumed = (i + 1) as f64;
        let next_target = stride * (boundaries.len() + 1) as f64;
        if consumed >= next_target
            && boundaries
                .last()
                .is_none_or(|b| b.as_ref() < fence.as_ref())
        {
            boundaries.push((*fence).clone());
        }
    }
    if boundaries.is_empty() {
        return Ok(Vec::new());
    }
    let nparts = boundaries.len() + 1;
    let mut partitions: Vec<Partition> = (0..nparts)
        .map(|_| Partition { slices: Vec::new() })
        .collect();
    for run in inputs {
        let m = run.pages();
        let fences = run.fences();
        let cuts: Vec<Cut> = boundaries
            .iter()
            .map(|b| {
                let right_start = fences.partition_point(|f| f.as_ref() < b.as_ref()) as u32;
                let left_end = if run.max_key().as_ref() < b.as_ref() {
                    m
                } else {
                    // Page q holds only keys < f_{q+1}; it is wholly left
                    // of b when f_{q+1} <= b.
                    fences[1..].partition_point(|f| f.as_ref() <= b.as_ref()) as u32
                };
                debug_assert!(left_end <= right_start && right_start <= left_end + 1);
                Cut {
                    left_end,
                    right_start,
                }
            })
            .collect();
        // Pre-read each straddled page once, in ascending page order.
        let mut straddle: BTreeMap<u32, Vec<Entry>> = BTreeMap::new();
        for cut in &cuts {
            if cut.left_end < cut.right_start {
                straddle.entry(cut.left_end).or_default();
            }
        }
        // One batched submission per run covers every straddled page
        // (addresses are distinct BTreeMap keys, ascending): same ledger
        // as reading them one at a time — page 0 carries the seek.
        let addrs: Vec<(monkey_storage::RunId, u32, bool)> = straddle
            .keys()
            .map(|&page_no| (run.id(), page_no, page_no == 0))
            .collect();
        if !addrs.is_empty() {
            let pages = run.disk().read_scattered(&addrs)?;
            for ((_, entries), page) in straddle.iter_mut().zip(&pages) {
                *entries = decode_page(page)?;
            }
        }
        for (p, partition) in partitions.iter_mut().enumerate() {
            let lo = (p > 0).then(|| &boundaries[p - 1]);
            let hi = (p + 1 < nparts).then(|| &boundaries[p]);
            let start = lo.map_or(0, |_| cuts[p - 1].right_start);
            let end = hi.map_or(m, |_| cuts[p].left_end);
            let straddler = |cut: &Cut| (cut.left_end < cut.right_start).then_some(cut.left_end);
            let s_lo = lo.and_then(|_| straddler(&cuts[p - 1]));
            let s_hi = hi.and_then(|_| straddler(&cuts[p]));
            let mut head = Vec::new();
            let mut tail = Vec::new();
            if let Some(s) = s_lo {
                let lo = lo.expect("s_lo implies a lower bound");
                head = straddle[&s]
                    .iter()
                    .filter(|e| {
                        e.key.as_ref() >= lo.as_ref()
                            && (s_hi != Some(s)
                                || e.key.as_ref() < hi.expect("s_hi implies a bound").as_ref())
                    })
                    .cloned()
                    .collect();
            }
            if let Some(s) = s_hi {
                if s_lo != Some(s) {
                    // Page s sits at or after `start`, so its keys are all
                    // >= the lower boundary already.
                    let hi = hi.expect("s_hi implies an upper bound");
                    tail = straddle[&s]
                        .iter()
                        .filter(|e| e.key.as_ref() < hi.as_ref())
                        .cloned()
                        .collect();
                }
            }
            let slice = RunSlice {
                run: Arc::clone(run),
                head,
                pages: start..end.max(start),
                tail,
            };
            if !slice.is_empty() {
                partition.slices.push(slice);
            }
        }
    }
    Ok(partitions)
}

type EntryBatch = std::result::Result<Vec<Entry>, LsmError>;

/// A partition waiting to be claimed by a worker, paired with the sender
/// its entry batches flow through. `None` once claimed (or skipped).
type PartitionSlot = Mutex<Option<(Partition, SyncSender<EntryBatch>)>>;

/// Merges `partitions` on `workers` scoped threads, pushing the entries —
/// in partition order — into `builder` on the calling thread.
fn feed_parallel(
    builder: &mut RunBuilder,
    partitions: Vec<Partition>,
    drop_tombstones: bool,
    workers: usize,
) -> Result<()> {
    let nparts = partitions.len();
    let abort = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<PartitionSlot> = Vec::with_capacity(nparts);
    let mut receivers: Vec<Receiver<EntryBatch>> = Vec::with_capacity(nparts);
    for partition in partitions {
        let (tx, rx) = std::sync::mpsc::sync_channel(CHANNEL_BATCHES);
        slots.push(Mutex::new(Some((partition, tx))));
        receivers.push(rx);
    }
    let mut first_err: Option<LsmError> = None;
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| worker_loop(&slots, &next, &abort, drop_tombstones));
        }
        // Consume partitions strictly in order; workers run ahead into
        // their bounded channels. Claims are handed out in the same order,
        // so the partition being drained is always being produced.
        for rx in receivers {
            if first_err.is_some() {
                continue; // dropping rx unblocks any parked producer
            }
            'drain: for batch in rx.iter() {
                match batch {
                    Ok(entries) => {
                        for entry in entries {
                            if let Err(e) = builder.push(entry) {
                                first_err = Some(e);
                                break 'drain;
                            }
                        }
                    }
                    Err(e) => {
                        first_err = Some(e);
                        break 'drain;
                    }
                }
            }
            if first_err.is_some() {
                abort.store(true, Ordering::Relaxed);
            }
        }
    });
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn worker_loop(
    slots: &[PartitionSlot],
    next: &AtomicUsize,
    abort: &AtomicBool,
    drop_tombstones: bool,
) {
    loop {
        let p = next.fetch_add(1, Ordering::Relaxed);
        if p >= slots.len() {
            return;
        }
        let (partition, tx) = slots[p]
            .lock()
            .expect("slot mutex poisoned")
            .take()
            .expect("each partition is claimed exactly once");
        if abort.load(Ordering::Relaxed) {
            continue; // dropping tx ends the coordinator's drain of p
        }
        merge_partition(partition, tx, abort, drop_tombstones);
    }
}

/// Runs one partition's k-way merge, streaming batches to the coordinator.
/// A send error means the coordinator aborted and dropped the receiver.
fn merge_partition(
    partition: Partition,
    tx: SyncSender<EntryBatch>,
    abort: &AtomicBool,
    drop_tombstones: bool,
) {
    let sources: Vec<EntrySource> = partition
        .slices
        .into_iter()
        .map(RunSlice::into_source)
        .collect();
    let merged = match MergingIter::new(sources, true) {
        Ok(m) => m,
        Err(e) => {
            let _ = tx.send(Err(e));
            return;
        }
    };
    let mut batch = Vec::with_capacity(BATCH_ENTRIES);
    for item in merged {
        match item {
            Ok(entry) => {
                if drop_tombstones && entry.is_tombstone() {
                    continue;
                }
                batch.push(entry);
                if batch.len() >= BATCH_ENTRIES {
                    if tx.send(Ok(std::mem::take(&mut batch))).is_err()
                        || abort.load(Ordering::Relaxed)
                    {
                        return;
                    }
                    batch.reserve(BATCH_ENTRIES);
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
    if !batch.is_empty() {
        let _ = tx.send(Ok(batch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::build_run_from_sorted;

    fn put(k: &str, v: &str, seq: u64) -> Entry {
        Entry::put(k.as_bytes().to_vec(), v.as_bytes().to_vec(), seq)
    }

    fn run_of(disk: &Arc<Disk>, entries: Vec<Entry>) -> Arc<Run> {
        build_run_from_sorted(disk, entries, false, 1, 10.0)
            .unwrap()
            .unwrap()
    }

    fn keyed_runs(disk: &Arc<Disk>, n_runs: usize, per_run: usize) -> Vec<Arc<Run>> {
        (0..n_runs)
            .map(|r| {
                let entries: Vec<Entry> = (0..per_run)
                    .map(|i| {
                        let k = i * n_runs + r;
                        put(&format!("key{k:06}"), &format!("val-{r}-{i}"), k as u64)
                    })
                    .collect();
                run_of(disk, entries)
            })
            .collect()
    }

    /// Reads every page of `run` back as raw bytes.
    fn raw_pages(disk: &Arc<Disk>, run: &Run) -> Vec<Bytes> {
        (0..run.pages())
            .map(|p| disk.read_page(run.id(), p).unwrap())
            .collect()
    }

    #[test]
    fn partition_plan_covers_every_page_exactly_once() {
        let disk = Disk::mem(128);
        let inputs = keyed_runs(&disk, 3, 200);
        for want in 2..=8 {
            let partitions = plan_partitions(&inputs, want).unwrap();
            assert!(partitions.len() <= want);
            // Per run: whole-page ranges + straddle pages = all pages once.
            for run in &inputs {
                let mut covered = vec![0u32; run.pages() as usize];
                let mut straddle_entries = 0usize;
                for part in &partitions {
                    for slice in &part.slices {
                        if slice.run.id() != run.id() {
                            continue;
                        }
                        for page in slice.pages.clone() {
                            covered[page as usize] += 1;
                        }
                        straddle_entries += slice.head.len() + slice.tail.len();
                    }
                }
                let uncovered = covered.iter().filter(|&&c| c == 0).count();
                assert!(
                    covered.iter().all(|&c| c <= 1),
                    "a page assigned to two partitions"
                );
                // Uncovered pages must be straddle pages whose entries were
                // distributed in memory instead.
                if uncovered > 0 {
                    assert!(straddle_entries > 0);
                }
            }
        }
    }

    #[test]
    fn parallel_merge_is_byte_identical_to_sequential() {
        // Two fresh disks, identically populated: run ids match, so the
        // outputs can be compared page-for-page as raw bytes.
        let seq_disk = Disk::mem(128);
        let par_disk = Disk::mem(128);
        let seq_inputs = keyed_runs(&seq_disk, 3, 150);
        let par_inputs = keyed_runs(&par_disk, 3, 150);
        seq_disk.reset_io();
        par_disk.reset_io();
        let (seq_out, seq_rep) =
            merge_runs_with(&seq_disk, &seq_inputs, false, 1, 10.0, 1).unwrap();
        let (par_out, par_rep) =
            merge_runs_with(&par_disk, &par_inputs, false, 1, 10.0, 4).unwrap();
        assert_eq!(seq_rep.partitions, 1);
        assert!(par_rep.partitions > 1, "plan actually partitioned");
        let (seq_out, par_out) = (seq_out.unwrap(), par_out.unwrap());
        assert_eq!(seq_out.entries(), par_out.entries());
        assert_eq!(seq_out.pages(), par_out.pages());
        assert_eq!(
            raw_pages(&seq_disk, &seq_out),
            raw_pages(&par_disk, &par_out)
        );
    }

    #[test]
    fn parallel_merge_io_totals_match_sequential() {
        let seq_disk = Disk::mem(128);
        let par_disk = Disk::mem(128);
        let seq_inputs = keyed_runs(&seq_disk, 4, 120);
        let par_inputs = keyed_runs(&par_disk, 4, 120);
        seq_disk.reset_io();
        par_disk.reset_io();
        merge_runs_with(&seq_disk, &seq_inputs, false, 1, 10.0, 1).unwrap();
        merge_runs_with(&par_disk, &par_inputs, false, 1, 10.0, 4).unwrap();
        let (s, p) = (seq_disk.io(), par_disk.io());
        assert_eq!(s.page_reads, p.page_reads, "same pages read");
        assert_eq!(s.seeks, p.seeks, "one seek per input run either way");
        assert_eq!(s.page_writes, p.page_writes, "same pages written");
    }

    #[test]
    fn boundaries_inside_one_page_still_partition_correctly() {
        // Few huge pages and many partitions force boundaries to straddle
        // (even share) pages.
        let disk = Disk::mem(8192);
        let inputs = keyed_runs(&disk, 2, 100);
        let total_pages: u32 = inputs.iter().map(|r| r.pages()).sum();
        assert!(total_pages <= 6, "pages are big: {total_pages}");
        let (seq, _) = merge_runs_with(&disk, &inputs, false, 1, 10.0, 1).unwrap();
        let seq = seq.unwrap();
        let disk2 = Disk::mem(8192);
        let inputs2 = keyed_runs(&disk2, 2, 100);
        let (par, rep) = merge_runs_with(&disk2, &inputs2, false, 1, 10.0, 4).unwrap();
        let par = par.unwrap();
        assert!(rep.partitions >= 2);
        assert_eq!(raw_pages(&disk, &seq), raw_pages(&disk2, &par));
    }

    #[test]
    fn parallel_merge_drops_tombstones_like_sequential() {
        let mk_inputs = |disk: &Arc<Disk>| {
            let live: Vec<Entry> = (0..300)
                .map(|i| put(&format!("k{i:05}"), "v", i as u64))
                .collect();
            let mut dead: Vec<Entry> = (0..300)
                .step_by(3)
                .map(|i| Entry::tombstone(format!("k{i:05}").into_bytes(), 1000 + i as u64))
                .collect();
            dead.sort_by(|a, b| a.key.cmp(&b.key));
            vec![run_of(disk, dead), run_of(disk, live)]
        };
        let d1 = Disk::mem(128);
        let i1 = mk_inputs(&d1);
        let (seq, _) = merge_runs_with(&d1, &i1, true, 1, 10.0, 1).unwrap();
        let d2 = Disk::mem(128);
        let i2 = mk_inputs(&d2);
        let (par, rep) = merge_runs_with(&d2, &i2, true, 1, 10.0, 3).unwrap();
        assert!(rep.partitions >= 2);
        let (seq, par) = (seq.unwrap(), par.unwrap());
        assert_eq!(seq.entries(), par.entries());
        assert_eq!(par.tombstones(), 0);
        assert_eq!(raw_pages(&d1, &seq), raw_pages(&d2, &par));
    }

    #[test]
    fn single_page_inputs_fall_back_to_fewer_partitions() {
        let disk = Disk::mem(4096);
        let a = run_of(&disk, vec![put("a", "1", 1)]);
        let b = run_of(&disk, vec![put("b", "2", 2)]);
        let (out, rep) = merge_runs_with(&disk, &[a, b], false, 1, 10.0, 8).unwrap();
        assert_eq!(out.unwrap().entries(), 2);
        assert!(rep.partitions <= 2, "2 input pages cap the partition count");
    }
}
