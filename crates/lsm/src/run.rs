//! Immutable sorted runs with fence pointers and a Bloom filter.
//!
//! A run is the paper's "sorted array flushed to secondary storage" (§2):
//! entries packed into fixed-size pages, plus two in-memory structures:
//!
//! * **fence pointers** — the first key of every page, so a point lookup
//!   finds the single page that can contain its key with an in-memory
//!   binary search and reads it with **one** I/O;
//! * a **Bloom filter** over the run's keys, whose size is the knob Monkey
//!   turns. A run built with zero filter bits carries the degenerate
//!   always-positive filter (an "unfiltered" level in the paper's terms).
//!
//! A run owns a handle to its [`Disk`] and its storage lifetime: when a
//! merge supersedes a run, the engine marks it *obsolete* and the
//! underlying pages are reclaimed once the last reference (e.g. an open
//! range cursor) drops.

use crate::entry::Entry;
use crate::error::{LsmError, Result};
use crate::page::{decode_page, PageBuilder, PageCursor};
use bytes::Bytes;
use monkey_bloom::{hash_pair, Filter, FilterVariant, HashPair};
use monkey_storage::{Disk, RunId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How to build a run's filter: the bits-per-entry budget (the knob Monkey
/// turns) plus the layout variant. `From<f64>` keeps the common
/// standard-layout call sites at `finish(10.0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterParams {
    /// Bits per entry; `<= 0` builds the degenerate always-positive filter.
    pub bits_per_entry: f64,
    /// Filter layout.
    pub variant: FilterVariant,
}

impl FilterParams {
    /// Parameters for `bits_per_entry` bits in the given layout.
    pub fn new(bits_per_entry: f64, variant: FilterVariant) -> Self {
        Self {
            bits_per_entry,
            variant,
        }
    }
}

impl From<f64> for FilterParams {
    fn from(bits_per_entry: f64) -> Self {
        Self {
            bits_per_entry,
            variant: FilterVariant::Standard,
        }
    }
}

/// What happened while probing one run during a point lookup. The engine
/// aggregates these into its per-database lookup counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLookup {
    /// The newest version found in this run (may be a tombstone).
    pub entry: Option<Entry>,
    /// A non-degenerate filter was actually probed.
    pub probed_filter: bool,
    /// The filter reported a definite negative (so no I/O happened).
    pub filter_negative: bool,
    /// A page was read.
    pub page_read: bool,
}

impl RunLookup {
    /// A rejection before any filter probe or I/O (key outside the run's
    /// fence range).
    fn out_of_range() -> Self {
        Self {
            entry: None,
            probed_filter: false,
            filter_negative: false,
            page_read: false,
        }
    }
}

/// Shortest separator `S` with `prev < S <= next` (both non-empty,
/// `prev < next`): the shortest prefix of `next` that already exceeds
/// `prev`. Fences store separators instead of full keys, which shrinks
/// `M_pointers` when adjacent keys share long prefixes (LevelDB does the
/// same). Correctness: an existing key `k <= prev` satisfies `k < S`
/// (earlier pages) and `k >= next` satisfies `k >= S` (this page).
fn shortest_separator(prev: &[u8], next: &Bytes) -> Bytes {
    debug_assert!(prev < next.as_ref());
    for i in 0..next.len() {
        if i >= prev.len() || next[i] > prev[i] {
            return next.slice(..=i);
        }
        debug_assert_eq!(next[i], prev[i], "keys must be sorted");
    }
    next.clone()
}

/// An immutable sorted run.
pub struct Run {
    disk: Arc<Disk>,
    id: RunId,
    entries: u64,
    tombstones: u64,
    pages: u32,
    /// First key of each page; `fences[0]` is the run's min key.
    fences: Vec<Bytes>,
    max_key: Bytes,
    filter: Filter,
    /// Total encoded payload bytes (drives level capacity checks).
    bytes: u64,
    /// Bits-per-entry the filter was built with (recorded in the manifest
    /// so recovery reproduces the allocation exactly).
    filter_bpe: f64,
    /// Set when a merge supersedes this run; storage is reclaimed on drop.
    obsolete: AtomicBool,
}

impl Run {
    /// The run's storage id.
    pub fn id(&self) -> RunId {
        self.id
    }

    /// Number of entries (tombstones included).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Number of tombstones among the entries.
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Number of pages.
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// Encoded payload size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Smallest key in the run.
    pub fn min_key(&self) -> &Bytes {
        &self.fences[0]
    }

    /// Largest key in the run.
    pub fn max_key(&self) -> &Bytes {
        &self.max_key
    }

    /// The run's Bloom filter.
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// Bits-per-entry the filter was built with.
    pub fn filter_bits_per_entry(&self) -> f64 {
        self.filter_bpe
    }

    /// The layout variant of the run's filter.
    pub fn filter_variant(&self) -> FilterVariant {
        self.filter.variant()
    }

    /// Main-memory footprint of the fence pointers in bits (key bytes plus
    /// a pointer-sized slot per page) — `M_pointers` in the paper.
    pub fn fence_memory_bits(&self) -> u64 {
        self.fences
            .iter()
            .map(|f| (f.len() + std::mem::size_of::<usize>()) as u64 * 8)
            .sum()
    }

    /// Marks the run superseded: its pages are deleted when the last
    /// reference drops (open cursors keep it readable until then).
    pub fn mark_obsolete(&self) {
        self.obsolete.store(true, Ordering::Release);
    }

    /// First key of every page — the merge partitioner consults these to
    /// cut the merged key space along page boundaries.
    pub(crate) fn fences(&self) -> &[Bytes] {
        &self.fences
    }

    /// The disk the run's pages live on (merge workers read through it).
    pub(crate) fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// The page that may contain `key`, or `None` when `key` is outside the
    /// run's key range (no I/O needed at all in that case).
    pub fn page_for(&self, key: &[u8]) -> Option<u32> {
        if key < self.fences[0].as_ref() || key > self.max_key.as_ref() {
            return None;
        }
        // Last page whose first key is <= key.
        let idx = self.fences.partition_point(|f| f.as_ref() <= key);
        Some((idx - 1) as u32)
    }

    /// Point lookup: fence pointers, then Bloom filter, then at most one
    /// page read. Returns the newest version in this run, which may be a
    /// tombstone.
    ///
    /// Hashes the key itself; the engine's lookup path uses
    /// [`get_hashed`](Self::get_hashed) so one hash serves every run.
    pub fn get(&self, key: &[u8]) -> Result<Option<Entry>> {
        Ok(self.get_hashed(key, hash_pair(key))?.entry)
    }

    /// Point lookup with a pre-computed hash pair, reporting what happened
    /// for the engine's lookup accounting.
    ///
    /// The fence range check runs *before* the filter probe: it is two
    /// in-memory key comparisons, while a filter probe costs `k` hash-bit
    /// lookups (each a potential cache miss on large filters), so an
    /// out-of-range key should never pay for the filter.
    pub fn get_hashed(&self, key: &[u8], pair: HashPair) -> Result<RunLookup> {
        let Some(page_no) = self.page_for(key) else {
            return Ok(RunLookup::out_of_range()); // outside key range, no I/O
        };
        let probed_filter = self.filter.nbits() > 0;
        if probed_filter && !self.filter.contains_hashed(pair) {
            return Ok(RunLookup {
                entry: None,
                probed_filter,
                filter_negative: true,
                page_read: false,
            }); // definite negative, no I/O
        }
        let page = self.disk.read_page(self.id, page_no)?; // the single I/O
                                                           // Stream the page instead of materializing a `Vec<Entry>`: the
                                                           // cursor borrows keys in place and stops at the first key past the
                                                           // probe, so a lookup decodes roughly half a page and allocates
                                                           // nothing beyond the entry it returns.
        Ok(RunLookup {
            entry: PageCursor::new(page)?.search(key)?,
            probed_filter,
            filter_negative: false,
            page_read: true,
        })
    }

    /// Iterates the whole run in key order.
    pub fn iter(self: &Arc<Self>) -> RunScanIter {
        RunScanIter::new(Arc::clone(self), 0, None)
    }

    /// Iterates the whole run for a merge: identical entries and identical
    /// `IoStats` to [`iter`](Self::iter), but readahead is issued in
    /// multi-page batched submissions. Merges always consume every page,
    /// so the wider window never over-reads; user-facing scans keep
    /// [`iter`](Self::iter)'s at-most-one-prefetched-page promise.
    pub fn iter_for_merge(self: &Arc<Self>) -> RunScanIter {
        let mut it = RunScanIter::new(Arc::clone(self), 0, None);
        it.batch = MERGE_SCAN_READAHEAD_PAGES;
        it
    }

    /// Iterates entries with key `>= lo`, positioned via the fence pointers.
    pub fn iter_from(self: &Arc<Self>, lo: &[u8]) -> RunScanIter {
        if lo > self.max_key.as_ref() {
            return RunScanIter::exhausted(Arc::clone(self));
        }
        let start_page = self.page_for(lo).unwrap_or(0);
        RunScanIter::new(
            Arc::clone(self),
            start_page,
            Some(Bytes::copy_from_slice(lo)),
        )
    }
}

impl Drop for Run {
    fn drop(&mut self) {
        if self.obsolete.load(Ordering::Acquire) {
            let _ = self.disk.delete_run(self.id);
        }
    }
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Run")
            .field("id", &self.id)
            .field("entries", &self.entries)
            .field("pages", &self.pages)
            .field("bytes", &self.bytes)
            .field("filter_bits", &self.filter.nbits())
            .finish()
    }
}

/// Streaming builder: feed entries in internal order, get a sealed [`Run`].
pub struct RunBuilder {
    disk: Arc<Disk>,
    writer: Option<monkey_storage::RunWriter>,
    page: PageBuilder,
    fences: Vec<Bytes>,
    /// Hash pair of every key, computed once at push time; sealing inserts
    /// these into the filter without re-hashing (and without keeping the
    /// key bytes alive).
    key_hashes: Vec<HashPair>,
    first_in_page: bool,
    entries: u64,
    tombstones: u64,
    bytes: u64,
    last_key: Option<Bytes>,
    /// Last key of the most recently flushed page (for fence separators).
    prev_page_last: Option<Bytes>,
    max_key: Bytes,
}

impl RunBuilder {
    /// Starts building a run on `disk`.
    pub fn new(disk: Arc<Disk>) -> Self {
        let page = PageBuilder::new(disk.page_size());
        Self {
            writer: Some(disk.begin_run()),
            disk,
            page,
            fences: Vec::new(),
            key_hashes: Vec::new(),
            first_in_page: true,
            entries: 0,
            tombstones: 0,
            bytes: 0,
            last_key: None,
            prev_page_last: None,
            max_key: Bytes::new(),
        }
    }

    /// Appends the next entry. Entries must arrive in strictly increasing
    /// key order with duplicate keys already resolved (one version per key).
    pub fn push(&mut self, entry: Entry) -> Result<()> {
        if let Some(last) = &self.last_key {
            debug_assert!(
                entry.key > *last,
                "entries must be pushed in strictly increasing key order"
            );
        }
        if !self.page.fits(&entry) && !self.page.is_empty() {
            self.flush_page()?;
        }
        if self.first_in_page {
            // The first page fences with the true min key; later pages with
            // the shortest separator from the previous page's last key.
            let fence = match &self.prev_page_last {
                Some(prev) => shortest_separator(prev, &entry.key),
                None => entry.key.clone(),
            };
            self.fences.push(fence);
            self.first_in_page = false;
        }
        self.bytes += entry.encoded_len() as u64;
        self.entries += 1;
        if entry.is_tombstone() {
            self.tombstones += 1;
        }
        self.key_hashes.push(hash_pair(&entry.key));
        self.max_key = entry.key.clone();
        self.last_key = Some(entry.key.clone());
        self.page.push(&entry)?;
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        let buf = self.page.finish();
        self.writer
            .as_mut()
            .expect("writer live until finish")
            .append(&buf)?;
        self.first_in_page = true;
        self.prev_page_last = self.last_key.clone();
        Ok(())
    }

    /// Entries pushed so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The storage id the run under construction will carry — available
    /// before [`finish`](Self::finish), so callers can pre-register the run
    /// (e.g. tag its destination level for per-level I/O attribution before
    /// any of the build's own page writes happen).
    pub fn run_id(&self) -> RunId {
        self.writer.as_ref().expect("writer live until finish").id()
    }

    /// Seals the run, building its filter per `params` — a bare `f64` means
    /// that many bits per entry in the standard layout. Returns `None` for
    /// an empty builder: empty runs do not exist in the tree.
    pub fn finish(mut self, params: impl Into<FilterParams>) -> Result<Option<Run>> {
        let params = params.into();
        if self.entries == 0 {
            return Ok(None); // RunWriter drop cleans up storage
        }
        if !self.page.is_empty() {
            self.flush_page()?;
        }
        let writer = self.writer.take().expect("writer live until finish");
        let pages = writer.pages_written();
        let id = writer.seal()?;
        let mut filter =
            Filter::with_bits_per_entry(params.variant, self.entries, params.bits_per_entry);
        for pair in &self.key_hashes {
            filter.insert_hashed(*pair);
        }
        Ok(Some(Run {
            disk: self.disk.clone(),
            id,
            entries: self.entries,
            tombstones: self.tombstones,
            pages,
            fences: self.fences,
            max_key: self.max_key,
            filter,
            bytes: self.bytes,
            filter_bpe: params.bits_per_entry,
            obsolete: AtomicBool::new(false),
        }))
    }
}

/// Pages per batched readahead submission when a merge drains a whole
/// run via [`Run::iter_for_merge`]; user scans always run with a window
/// of 1 (classic double buffering).
const MERGE_SCAN_READAHEAD_PAGES: u32 = 8;

/// Sequential scan over a run's entries with double-buffered readahead.
///
/// The first page read costs a seek + read; each subsequent page costs a
/// sequential read only, matching Eq. 11's range-lookup cost model. On top
/// of that model the scan keeps one page of readahead: installing page `i`
/// as the current [`PageCursor`] immediately issues the sequential read
/// for page `i+1`, so decode of the current page overlaps the next page's
/// I/O. Total I/O counts are unchanged on any scan that consumes its page
/// range (every page is still read exactly once, with exactly one seek);
/// a scan dropped early may have prefetched at most one page it never
/// decoded. (Merge scans opt into a wider batched window via
/// [`Run::iter_for_merge`]; they always consume the whole run.) The
/// iterator holds an `Arc` to its run, so a run superseded mid-scan stays
/// readable until the cursor drops.
pub struct RunScanIter {
    run: Arc<Run>,
    /// Streaming cursor over the current page.
    cursor: Option<PageCursor>,
    /// Prefetched page bytes, fetched while the current page drains.
    window: std::collections::VecDeque<Bytes>,
    /// Next page number to fetch from disk.
    next_page: u32,
    started: bool,
    lo: Option<Bytes>,
    exhausted: bool,
    /// Pages per readahead submission: 1 keeps the at-most-one-prefetched
    /// page promise; merges widen it (every page gets consumed anyway).
    batch: u32,
}

impl RunScanIter {
    fn new(run: Arc<Run>, start_page: u32, lo: Option<Bytes>) -> Self {
        Self {
            run,
            cursor: None,
            window: std::collections::VecDeque::new(),
            next_page: start_page,
            started: false,
            lo,
            exhausted: false,
            batch: 1,
        }
    }

    fn exhausted(run: Arc<Run>) -> Self {
        let mut it = Self::new(run, 0, None);
        it.exhausted = true;
        it
    }

    /// Reads the next page: a seek + read for the scan's first page, a
    /// sequential read after that.
    fn fetch_page(&mut self) -> Result<Bytes> {
        let page = if self.started {
            self.run
                .disk
                .read_page_sequential(self.run.id(), self.next_page)?
        } else {
            self.started = true;
            // Scan admission: same seek+read accounting as a point read,
            // but the cache treats the page as streaming.
            self.run
                .disk
                .read_page_scan(self.run.id(), self.next_page)?
        };
        self.next_page += 1;
        Ok(page)
    }

    /// Issues the next readahead submission into the window: one page for
    /// user scans, up to `batch` pages in one batched backend call for
    /// merges. Ledger-identical either way — the scan's first page pays
    /// the seek, the rest are sequential, all streaming-admitted.
    fn fill_window(&mut self) -> Result<()> {
        let count = self
            .batch
            .min(self.run.pages().saturating_sub(self.next_page));
        if count == 0 {
            return Ok(());
        }
        if count == 1 {
            let page = self.fetch_page()?;
            self.window.push_back(page);
            return Ok(());
        }
        let first = self.next_page;
        let seek = !self.started;
        let reqs: Vec<(RunId, u32, bool)> = (first..first + count)
            .map(|p| (self.run.id(), p, seek && p == first))
            .collect();
        let pages = self.run.disk.read_scattered(&reqs)?;
        self.started = true;
        self.next_page += count;
        self.window.extend(pages);
        Ok(())
    }

    fn advance(&mut self) -> Result<Option<Entry>> {
        loop {
            if let Some(cursor) = &mut self.cursor {
                // Skip leading keys below `lo` without slicing entries out;
                // once one key qualifies, the rest of the run does too.
                if let Some(lo) = &self.lo {
                    while let Some(key) = cursor.peek_key()? {
                        if key >= lo.as_ref() {
                            break;
                        }
                        cursor.skip_entry()?;
                    }
                    if cursor.peek_key()?.is_some() {
                        self.lo = None;
                    }
                }
                if let Some(entry) = cursor.next_entry()? {
                    return Ok(Some(entry));
                }
                self.cursor = None;
            }
            if self.window.is_empty() {
                if self.exhausted || self.next_page >= self.run.pages() {
                    self.exhausted = true;
                    return Ok(None);
                }
                self.fill_window()?;
            }
            let Some(page) = self.window.pop_front() else {
                self.exhausted = true;
                return Ok(None);
            };
            self.cursor = Some(PageCursor::new(page)?);
            if self.batch == 1 && self.window.is_empty() && self.next_page < self.run.pages() {
                // Double buffer: the next page's read overlaps this page's
                // decode (still one sequential read per page).
                self.fill_window()?;
            }
        }
    }
}

impl Iterator for RunScanIter {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.advance() {
            Err(e) => {
                self.exhausted = true;
                self.cursor = None;
                self.window.clear();
                Some(Err(e))
            }
            Ok(next) => next.map(Ok),
        }
    }
}

/// Rebuilds a [`Run`]'s in-memory metadata (fences, filter, counts) by
/// scanning its pages — used by recovery, where only the id and level of
/// each run survive in the manifest.
pub fn recover_run(disk: &Arc<Disk>, id: RunId, params: impl Into<FilterParams>) -> Result<Run> {
    let params = params.into();
    let pages = disk.run_pages(id)?;
    if pages == 0 {
        return Err(LsmError::Corruption(format!("run {id} has no pages")));
    }
    let mut fences = Vec::with_capacity(pages as usize);
    let mut key_hashes: Vec<HashPair> = Vec::new();
    let mut entries = 0u64;
    let mut tombstones = 0u64;
    let mut bytes = 0u64;
    let mut max_key = Bytes::new();
    for page_no in 0..pages {
        let page = if page_no == 0 {
            disk.read_page_scan(id, page_no)?
        } else {
            disk.read_page_sequential(id, page_no)?
        };
        let decoded = decode_page(&page)?;
        if decoded.is_empty() {
            return Err(LsmError::Corruption(format!(
                "run {id} page {page_no} is empty"
            )));
        }
        fences.push(decoded[0].key.clone());
        for e in &decoded {
            entries += 1;
            if e.is_tombstone() {
                tombstones += 1;
            }
            bytes += e.encoded_len() as u64;
            key_hashes.push(hash_pair(&e.key));
            max_key = e.key.clone();
        }
    }
    let mut filter = Filter::with_bits_per_entry(params.variant, entries, params.bits_per_entry);
    for pair in &key_hashes {
        filter.insert_hashed(*pair);
    }
    Ok(Run {
        disk: Arc::clone(disk),
        id,
        entries,
        tombstones,
        pages,
        fences,
        max_key,
        filter,
        bytes,
        filter_bpe: params.bits_per_entry,
        obsolete: AtomicBool::new(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(disk: &Arc<Disk>, keys: &[&str], bpe: f64) -> Arc<Run> {
        let mut b = RunBuilder::new(Arc::clone(disk));
        for (i, k) in keys.iter().enumerate() {
            b.push(Entry::put(
                k.as_bytes().to_vec(),
                format!("v{i}").into_bytes(),
                i as u64,
            ))
            .unwrap();
        }
        Arc::new(b.finish(bpe).unwrap().unwrap())
    }

    #[test]
    fn point_lookup_costs_one_io() {
        let disk = Disk::mem(64);
        let run = build(
            &disk,
            &["apple", "banana", "cherry", "date", "elderberry", "fig"],
            10.0,
        );
        assert!(run.pages() > 1, "spread over multiple pages");
        disk.reset_io();
        let e = run.get(b"date").unwrap().unwrap();
        assert_eq!(e.value.as_ref(), b"v3");
        assert_eq!(disk.io().page_reads, 1, "fence pointers: exactly one I/O");
    }

    #[test]
    fn filter_negative_skips_io() {
        let disk = Disk::mem(256);
        let run = build(&disk, &["a", "b", "c"], 16.0);
        disk.reset_io();
        for i in 0..100 {
            let key = format!("missing-{i}");
            run.get(key.as_bytes()).unwrap();
        }
        let ios = disk.io().page_reads;
        assert!(
            ios <= 5,
            "filter should absorb nearly all of 100 probes, cost {ios}"
        );
    }

    #[test]
    fn out_of_range_key_is_free_even_with_degenerate_filter() {
        let disk = Disk::mem(256);
        let run = build(&disk, &["m", "n", "o"], 0.0); // no filter at all
        disk.reset_io();
        assert!(run.get(b"a").unwrap().is_none());
        assert!(run.get(b"z").unwrap().is_none());
        assert_eq!(
            disk.io().page_reads,
            0,
            "fences bound the key range for free"
        );
        // In-range missing key costs one I/O (false positive of the
        // degenerate filter).
        assert!(run.get(b"mm").unwrap().is_none());
        assert_eq!(disk.io().page_reads, 1);
    }

    #[test]
    fn tombstones_are_returned() {
        let disk = Disk::mem(256);
        let mut b = RunBuilder::new(Arc::clone(&disk));
        b.push(Entry::put(b"a".to_vec(), b"1".to_vec(), 1)).unwrap();
        b.push(Entry::tombstone(b"b".to_vec(), 2)).unwrap();
        let run = Arc::new(b.finish(10.0).unwrap().unwrap());
        assert_eq!(run.tombstones(), 1);
        let e = run.get(b"b").unwrap().unwrap();
        assert!(e.is_tombstone());
    }

    #[test]
    fn empty_builder_yields_none() {
        let disk = Disk::mem(64);
        let b = RunBuilder::new(Arc::clone(&disk));
        assert!(b.finish(10.0).unwrap().is_none());
        assert!(disk.list_runs().is_empty(), "no leaked storage");
    }

    #[test]
    fn iter_yields_all_in_order_with_sequential_io() {
        let disk = Disk::mem(64);
        let keys: Vec<String> = (0..50).map(|i| format!("key{i:04}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let run = build(&disk, &refs, 10.0);
        disk.reset_io();
        let got: Vec<Entry> = run.iter().map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 50);
        assert!(got.windows(2).all(|w| w[0].key < w[1].key));
        let io = disk.io();
        assert_eq!(io.page_reads as u32, run.pages());
        assert_eq!(io.seeks, 1, "scan costs one seek");
    }

    #[test]
    fn iter_from_positions_by_fence() {
        let disk = Disk::mem(64);
        let keys: Vec<String> = (0..50).map(|i| format!("key{i:04}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let run = build(&disk, &refs, 10.0);
        disk.reset_io();
        let got: Vec<Entry> = run.iter_from(b"key0040").map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].key.as_ref(), b"key0040");
        assert!(
            (disk.io().page_reads as u32) < run.pages(),
            "positioned scan skips leading pages"
        );
    }

    #[test]
    fn iter_from_beyond_max_is_empty_and_free() {
        let disk = Disk::mem(64);
        let run = build(&disk, &["a", "b"], 10.0);
        disk.reset_io();
        assert_eq!(run.iter_from(b"zzz").count(), 0);
        assert_eq!(disk.io().page_reads, 0);
    }

    #[test]
    fn page_for_edges() {
        let disk = Disk::mem(64);
        let run = build(&disk, &["b", "d", "f", "h", "j", "l"], 10.0);
        assert_eq!(run.page_for(b"a"), None);
        assert_eq!(run.page_for(b"b"), Some(0));
        assert!(run.page_for(b"l").is_some());
        assert_eq!(run.page_for(b"m"), None);
    }

    #[test]
    fn obsolete_run_storage_reclaimed_on_last_drop() {
        let disk = Disk::mem(64);
        let run = build(&disk, &["a", "b", "c"], 10.0);
        let id = run.id();
        let cursor = run.iter(); // second reference via Arc inside iter
        run.mark_obsolete();
        drop(run);
        // Cursor still holds the run: storage must still be readable.
        assert!(disk.run_pages(id).is_ok());
        let n = cursor.count();
        assert_eq!(n, 3);
        // (cursor dropped here)
        assert!(
            disk.run_pages(id).is_err(),
            "storage reclaimed after last reference"
        );
    }

    #[test]
    fn non_obsolete_run_keeps_storage_on_drop() {
        let disk = Disk::mem(64);
        let run = build(&disk, &["a"], 10.0);
        let id = run.id();
        drop(run);
        assert!(
            disk.run_pages(id).is_ok(),
            "runs persist across engine restarts"
        );
    }

    #[test]
    fn recover_run_matches_original() {
        let disk = Disk::mem(64);
        let keys: Vec<String> = (0..30).map(|i| format!("k{i:03}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let original = build(&disk, &refs, 8.0);
        let recovered = recover_run(&disk, original.id(), 8.0).unwrap();
        assert_eq!(recovered.entries(), original.entries());
        assert_eq!(recovered.pages(), original.pages());
        assert_eq!(recovered.min_key(), original.min_key());
        assert_eq!(recovered.max_key(), original.max_key());
        assert_eq!(recovered.bytes(), original.bytes());
        let rec = Arc::new(recovered);
        let e = rec.get(b"k015").unwrap().unwrap();
        assert_eq!(e.value.as_ref(), b"v15");
    }

    #[test]
    fn fences_are_compressed_separators() {
        // Keys diverge in their first bytes and drag a long constant tail:
        // separators truncate the tail, so fences are far smaller than the
        // keys — and boundary lookups still work.
        let disk = Disk::mem(96);
        let keys: Vec<String> = (0..40)
            .map(|i| format!("{i:04}{}", "x".repeat(28)))
            .collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let run = build(&disk, &refs, 10.0);
        assert!(run.pages() >= 10);
        // Every key still resolves with one read.
        for (i, k) in refs.iter().enumerate() {
            disk.reset_io();
            let e = run.get(k.as_bytes()).unwrap().unwrap();
            assert_eq!(e.value.as_ref(), format!("v{i}").as_bytes());
            assert_eq!(disk.io().page_reads, 1, "key {k}");
        }
        // Full-key fences would cost (32 + 8) bytes per page; compressed
        // separators keep only the leading digits (≤ 4 bytes + overhead).
        let full_key_bits = run.pages() as u64 * (32 + 8) * 8;
        assert!(
            run.fence_memory_bits() < full_key_bits / 2,
            "{} not well below {full_key_bits}",
            run.fence_memory_bits()
        );
        // Dense keys differing only in their last byte cannot be
        // truncated — separators never *grow* fences, though.
        let disk2 = Disk::mem(96);
        let dense: Vec<String> = (0..40).map(|i| format!("prefix-{i:08}")).collect();
        let drefs: Vec<&str> = dense.iter().map(String::as_str).collect();
        let run2 = build(&disk2, &drefs, 10.0);
        assert!(run2.fence_memory_bits() <= run2.pages() as u64 * (15 + 8) * 8);
    }

    #[test]
    fn shortest_separator_properties() {
        let cases = [
            ("apple", "apricot"),
            ("abc", "abd"),
            ("abc", "abcd"),
            ("a", "b"),
            ("key00019", "key00020"),
        ];
        for (prev, next) in cases {
            let s = shortest_separator(prev.as_bytes(), &Bytes::copy_from_slice(next.as_bytes()));
            assert!(prev.as_bytes() < s.as_ref(), "{prev} !< {s:?}");
            assert!(s.as_ref() <= next.as_bytes(), "{s:?} !<= {next}");
            assert!(s.len() <= next.len());
        }
    }

    #[test]
    fn out_of_range_key_never_probes_the_filter() {
        // Fence check runs before the filter: an out-of-range key must be
        // rejected by two key comparisons, not k hash-bit lookups.
        let disk = Disk::mem(256);
        let run = build(&disk, &["m", "n", "o"], 16.0);
        for key in [b"a".as_slice(), b"zzz"] {
            let look = run.get_hashed(key, hash_pair(key)).unwrap();
            assert_eq!(look, RunLookup::out_of_range());
        }
        // An in-range miss does probe (and the filter absorbs it).
        let look = run.get_hashed(b"mm", hash_pair(b"mm")).unwrap();
        assert!(look.probed_filter);
    }

    #[test]
    fn get_and_get_hashed_agree() {
        let disk = Disk::mem(64);
        let keys: Vec<String> = (0..40).map(|i| format!("key{i:03}")).collect();
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let run = build(&disk, &refs, 8.0);
        for probe in ["key000", "key020", "key039", "missing", "aaa", "zzz"] {
            let plain = run.get(probe.as_bytes()).unwrap();
            let hashed = run
                .get_hashed(probe.as_bytes(), hash_pair(probe.as_bytes()))
                .unwrap();
            assert_eq!(plain, hashed.entry, "probe {probe}");
        }
    }

    #[test]
    fn get_hashed_accounting_is_consistent() {
        let disk = Disk::mem(64);
        let run = build(&disk, &["b", "d", "f"], 16.0);
        // A present key: probed, not negative, page read, entry found.
        let look = run.get_hashed(b"d", hash_pair(b"d")).unwrap();
        assert!(look.probed_filter && !look.filter_negative && look.page_read);
        assert!(look.entry.is_some());
        // A filter negative: probed, negative, no page read.
        let mut saw_negative = false;
        for i in 0..50 {
            let key = format!("c-missing-{i}");
            let look = run
                .get_hashed(key.as_bytes(), hash_pair(key.as_bytes()))
                .unwrap();
            assert!(look.probed_filter);
            assert!(look.entry.is_none());
            if look.filter_negative {
                assert!(!look.page_read);
                saw_negative = true;
            } else {
                assert!(look.page_read, "a filter positive must read the page");
            }
        }
        assert!(saw_negative, "16 bpe absorbs most of 50 misses");
    }

    #[test]
    fn blocked_variant_run_lookups_work() {
        let disk = Disk::mem(64);
        let mut b = RunBuilder::new(Arc::clone(&disk));
        let keys: Vec<String> = (0..40).map(|i| format!("key{i:03}")).collect();
        for (i, k) in keys.iter().enumerate() {
            b.push(Entry::put(
                k.as_bytes().to_vec(),
                format!("v{i}").into_bytes(),
                i as u64,
            ))
            .unwrap();
        }
        let run = Arc::new(
            b.finish(FilterParams::new(10.0, FilterVariant::Blocked))
                .unwrap()
                .unwrap(),
        );
        assert_eq!(run.filter_variant(), FilterVariant::Blocked);
        disk.reset_io();
        for (i, k) in keys.iter().enumerate() {
            let e = run.get(k.as_bytes()).unwrap().unwrap();
            assert_eq!(e.value.as_ref(), format!("v{i}").as_bytes());
        }
        assert_eq!(disk.io().page_reads, 40, "no false negatives, one I/O each");
        disk.reset_io();
        for i in 0..100 {
            let key = format!("miss-{i}");
            assert!(run.get(key.as_bytes()).unwrap().is_none());
        }
        assert!(
            disk.io().page_reads <= 10,
            "blocked filter absorbs most misses"
        );
    }

    #[test]
    fn recover_run_preserves_filter_variant() {
        let disk = Disk::mem(64);
        let mut b = RunBuilder::new(Arc::clone(&disk));
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            b.push(Entry::put(k.as_bytes().to_vec(), b"v".to_vec(), i as u64))
                .unwrap();
        }
        let original = b
            .finish(FilterParams::new(8.0, FilterVariant::Blocked))
            .unwrap()
            .unwrap();
        let recovered = recover_run(
            &disk,
            original.id(),
            FilterParams::new(8.0, FilterVariant::Blocked),
        )
        .unwrap();
        assert_eq!(recovered.filter_variant(), FilterVariant::Blocked);
        assert!(recovered.get(b"b").unwrap().is_some());
    }

    #[test]
    fn fence_memory_accounts_keys() {
        let disk = Disk::mem(64);
        let run = build(&disk, &["aa", "bb", "cc", "dd", "ee", "ff"], 10.0);
        // Separators compress "bb".. to "b" etc.; each fence still pays at
        // least its pointer slot plus one key byte.
        let bits = run.fence_memory_bits();
        assert!(bits >= run.pages() as u64 * (1 + 8) * 8, "{bits}");
        assert!(bits <= run.pages() as u64 * (2 + 8) * 8);
    }
}
