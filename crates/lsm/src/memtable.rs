//! The in-memory buffer (Level 0 of the paper's Figure 2).
//!
//! Updates go to the buffer without touching secondary storage; an update to
//! a key already buffered replaces it **in place** so "only the latest one
//! survives" (§2). When the buffer reaches its byte capacity
//! `M_buffer = P·B·E`, the engine sorts its entries into a run and flushes.

use crate::entry::{Entry, EntryKind, ENTRY_HEADER_LEN};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
struct Slot {
    value: Bytes,
    seq: u64,
    kind: EntryKind,
}

/// Sorted in-memory buffer of the newest updates.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Bytes, Slot>,
    bytes: usize,
}

impl Memtable {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an entry, returning the buffer's new byte size.
    pub fn insert(&mut self, entry: Entry) -> usize {
        let add = entry.encoded_len();
        let Entry {
            key,
            value,
            seq,
            kind,
        } = entry;
        let key_len = key.len();
        if let Some(old) = self.map.insert(key, Slot { value, seq, kind }) {
            // Replaced in place (§2): swap the old footprint for the new.
            let old_footprint = ENTRY_HEADER_LEN + key_len + old.value.len();
            self.bytes = self.bytes - old_footprint + add;
        } else {
            self.bytes += add;
        }
        self.bytes
    }

    /// Looks a key up. `Some(entry)` may be a tombstone — the caller decides
    /// what a delete means at its layer.
    pub fn get(&self, key: &[u8]) -> Option<Entry> {
        self.map.get_key_value(key).map(|(k, slot)| Entry {
            key: k.clone(),
            value: slot.value.clone(),
            seq: slot.seq,
            kind: slot.kind,
        })
    }

    /// Number of distinct buffered keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate encoded footprint in bytes (what counts against
    /// `M_buffer`).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drains the buffer into a sorted entry vector (ready to become a run)
    /// and resets it.
    pub fn drain_sorted(&mut self) -> Vec<Entry> {
        self.bytes = 0;
        std::mem::take(&mut self.map)
            .into_iter()
            .map(|(key, slot)| Entry {
                key,
                value: slot.value,
                seq: slot.seq,
                kind: slot.kind,
            })
            .collect()
    }

    /// Clones the buffer into a sorted entry vector without consuming it —
    /// used for frozen (immutable) memtables queued behind the active one,
    /// which must stay readable until their flush completes. `Bytes` clones
    /// are refcount bumps, not copies.
    pub fn to_sorted_entries(&self) -> Vec<Entry> {
        self.map
            .iter()
            .map(|(key, slot)| Entry {
                key: key.clone(),
                value: slot.value.clone(),
                seq: slot.seq,
                kind: slot.kind,
            })
            .collect()
    }

    /// Sorted entries in `[lo, hi)` (hi = None means unbounded), cloned.
    pub fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> Vec<Entry> {
        let upper = match hi {
            Some(h) => Bound::Excluded(Bytes::copy_from_slice(h)),
            None => Bound::Unbounded,
        };
        self.map
            .range((Bound::Included(Bytes::copy_from_slice(lo)), upper))
            .map(|(key, slot)| Entry {
                key: key.clone(),
                value: slot.value.clone(),
                seq: slot.seq,
                kind: slot.kind,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(m: &mut Memtable, k: &str, v: &str, seq: u64) {
        m.insert(Entry::put(
            k.as_bytes().to_vec(),
            v.as_bytes().to_vec(),
            seq,
        ));
    }

    #[test]
    fn insert_and_get() {
        let mut m = Memtable::new();
        put(&mut m, "a", "1", 1);
        assert_eq!(m.get(b"a").unwrap().value.as_ref(), b"1");
        assert!(m.get(b"b").is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn replacement_keeps_latest_only() {
        let mut m = Memtable::new();
        put(&mut m, "k", "old", 1);
        put(&mut m, "k", "new", 2);
        assert_eq!(m.len(), 1, "in-place replacement (§2)");
        let e = m.get(b"k").unwrap();
        assert_eq!(e.value.as_ref(), b"new");
        assert_eq!(e.seq, 2);
    }

    #[test]
    fn tombstone_is_visible() {
        let mut m = Memtable::new();
        put(&mut m, "k", "v", 1);
        m.insert(Entry::tombstone(b"k".to_vec(), 2));
        let e = m.get(b"k").unwrap();
        assert!(e.is_tombstone());
    }

    #[test]
    fn bytes_accounting_tracks_replacements() {
        let mut m = Memtable::new();
        put(&mut m, "key", "12345", 1);
        let after_first = m.bytes();
        assert_eq!(after_first, ENTRY_HEADER_LEN + 3 + 5);
        put(&mut m, "key", "1", 2); // value shrinks by 4
        assert_eq!(m.bytes(), after_first - 4);
        put(&mut m, "key", "123456789", 3); // value grows
        assert_eq!(m.bytes(), ENTRY_HEADER_LEN + 3 + 9);
    }

    #[test]
    fn drain_sorted_returns_key_order_and_resets() {
        let mut m = Memtable::new();
        put(&mut m, "c", "3", 3);
        put(&mut m, "a", "1", 1);
        put(&mut m, "b", "2", 2);
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b", b"c"]);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn range_bounds() {
        let mut m = Memtable::new();
        for k in ["a", "b", "c", "d"] {
            put(&mut m, k, "v", 1);
        }
        let r = m.range(b"b", Some(b"d"));
        let keys: Vec<&[u8]> = r.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![b"b".as_ref(), b"c"]);
        let r = m.range(b"c", None);
        assert_eq!(r.len(), 2);
        let r = m.range(b"x", None);
        assert!(r.is_empty());
    }
}
