//! The in-memory buffer (Level 0 of the paper's Figure 2).
//!
//! Updates go to the buffer without touching secondary storage; an update to
//! a key already buffered replaces it **in place** so "only the latest one
//! survives" (§2). When the buffer reaches its byte capacity
//! `M_buffer = P·B·E`, the engine sorts its entries into a run and flushes.
//!
//! The buffer is a concurrent skiplist: writers are serialized by the
//! engine's shard lock anyway, but point reads, frozen-memtable scans, and
//! the observatory's classification hooks traverse it **lock-free** — a
//! `get` against the active buffer never waits behind a writer.

use crate::entry::{Entry, EntryKind, ENTRY_HEADER_LEN};
use crate::skiplist::SkipList;
use bytes::Bytes;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

#[derive(Debug, Clone)]
struct Slot {
    value: Bytes,
    seq: u64,
    kind: EntryKind,
}

fn entry_of(key: &Bytes, slot: &Slot) -> Entry {
    Entry {
        key: key.clone(),
        value: slot.value.clone(),
        seq: slot.seq,
        kind: slot.kind,
    }
}

/// Sorted in-memory buffer of the newest updates.
#[derive(Debug, Default)]
pub struct Memtable {
    list: SkipList<Slot>,
    bytes: AtomicUsize,
}

impl Memtable {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces an entry, returning the buffer's new byte size.
    /// Takes `&self`: concurrent readers stay lock-free while the engine's
    /// shard lock serializes writers.
    pub fn insert(&self, entry: Entry) -> usize {
        let add = entry.encoded_len();
        let Entry {
            key,
            value,
            seq,
            kind,
        } = entry;
        let key_len = key.len();
        if let Some(old) = self.list.insert(key, Slot { value, seq, kind }) {
            // Replaced in place (§2): swap the old footprint for the new.
            let old_footprint = ENTRY_HEADER_LEN + key_len + old.value.len();
            let before = self.bytes.fetch_add(add, Relaxed);
            self.bytes.fetch_sub(old_footprint, Relaxed);
            before + add - old_footprint
        } else {
            self.bytes.fetch_add(add, Relaxed) + add
        }
    }

    /// Looks a key up without locking. `Some(entry)` may be a tombstone —
    /// the caller decides what a delete means at its layer.
    pub fn get(&self, key: &[u8]) -> Option<Entry> {
        self.list.get(key).map(|(k, slot)| entry_of(k, slot))
    }

    /// Number of distinct buffered keys.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate encoded footprint in bytes (what counts against
    /// `M_buffer`).
    pub fn bytes(&self) -> usize {
        self.bytes.load(Relaxed)
    }

    /// Drains the buffer into a sorted entry vector (ready to become a run)
    /// and resets it.
    pub fn drain_sorted(&mut self) -> Vec<Entry> {
        let entries = self.to_sorted_entries();
        *self = Self::new();
        entries
    }

    /// Clones the buffer into a sorted entry vector without consuming it —
    /// used for frozen (immutable) memtables queued behind the active one,
    /// which must stay readable until their flush completes. `Bytes` clones
    /// are refcount bumps, not copies.
    pub fn to_sorted_entries(&self) -> Vec<Entry> {
        self.list
            .iter()
            .map(|(k, slot)| entry_of(k, slot))
            .collect()
    }

    /// Sorted entries in `[lo, hi)` (hi = None means unbounded), cloned.
    pub fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> Vec<Entry> {
        self.list
            .iter_from(Some(lo))
            .take_while(|(k, _)| hi.is_none_or(|h| k.as_ref() < h))
            .map(|(k, slot)| entry_of(k, slot))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(m: &Memtable, k: &str, v: &str, seq: u64) {
        m.insert(Entry::put(
            k.as_bytes().to_vec(),
            v.as_bytes().to_vec(),
            seq,
        ));
    }

    #[test]
    fn insert_and_get() {
        let m = Memtable::new();
        put(&m, "a", "1", 1);
        assert_eq!(m.get(b"a").unwrap().value.as_ref(), b"1");
        assert!(m.get(b"b").is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn replacement_keeps_latest_only() {
        let m = Memtable::new();
        put(&m, "k", "old", 1);
        put(&m, "k", "new", 2);
        assert_eq!(m.len(), 1, "in-place replacement (§2)");
        let e = m.get(b"k").unwrap();
        assert_eq!(e.value.as_ref(), b"new");
        assert_eq!(e.seq, 2);
    }

    #[test]
    fn tombstone_is_visible() {
        let m = Memtable::new();
        put(&m, "k", "v", 1);
        m.insert(Entry::tombstone(b"k".to_vec(), 2));
        let e = m.get(b"k").unwrap();
        assert!(e.is_tombstone());
    }

    #[test]
    fn bytes_accounting_tracks_replacements() {
        let m = Memtable::new();
        put(&m, "key", "12345", 1);
        let after_first = m.bytes();
        assert_eq!(after_first, ENTRY_HEADER_LEN + 3 + 5);
        put(&m, "key", "1", 2); // value shrinks by 4
        assert_eq!(m.bytes(), after_first - 4);
        put(&m, "key", "123456789", 3); // value grows
        assert_eq!(m.bytes(), ENTRY_HEADER_LEN + 3 + 9);
    }

    #[test]
    fn drain_sorted_returns_key_order_and_resets() {
        let mut m = Memtable::new();
        put(&m, "c", "3", 3);
        put(&m, "a", "1", 1);
        put(&m, "b", "2", 2);
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![b"a".as_ref(), b"b", b"c"]);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn range_bounds() {
        let m = Memtable::new();
        for k in ["a", "b", "c", "d"] {
            put(&m, k, "v", 1);
        }
        let r = m.range(b"b", Some(b"d"));
        let keys: Vec<&[u8]> = r.iter().map(|e| e.key.as_ref()).collect();
        assert_eq!(keys, vec![b"b".as_ref(), b"c"]);
        let r = m.range(b"c", None);
        assert_eq!(r.len(), 2);
        let r = m.range(b"x", None);
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_lock_free_reads_see_writes() {
        use std::sync::Arc;
        let m = Arc::new(Memtable::new());
        let writer = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    m.insert(Entry::put(
                        format!("key{:05}", i % 500).into_bytes(),
                        format!("v{i}").into_bytes(),
                        i + 1,
                    ));
                }
            })
        };
        let mut last_len = 0;
        while last_len < 500 {
            last_len = m.len();
            for i in (0..500).step_by(13) {
                if let Some(e) = m.get(format!("key{i:05}").as_bytes()) {
                    assert!(e.seq >= 1);
                }
            }
        }
        writer.join().unwrap();
        assert_eq!(m.len(), 500);
        assert_eq!(m.to_sorted_entries().len(), 500);
    }
}
