//! Database configuration: the paper's tuning knobs, as a builder.

use crate::policy::{FilterPolicy, MergePolicy, UniformFilterPolicy};
use monkey_bloom::FilterVariant;
use monkey_storage::{CachePolicy, IoBackend};
use std::path::PathBuf;
use std::sync::Arc;

/// Where the database's pages live.
#[derive(Debug, Clone)]
pub enum StorageConfig {
    /// In-memory simulated disk (the experiment default; volatile).
    Memory,
    /// In-memory simulated disk with a block cache of the given byte size.
    MemoryCached(usize),
    /// A directory on the filesystem (durable; enables WAL + manifest).
    Directory(PathBuf),
}

/// All tuning knobs of the engine. The defaults mirror a LevelDB-style
/// configuration: leveling, size ratio 10, 1 MiB buffer, 4 KiB pages,
/// uniform 10 bits-per-entry filters.
#[derive(Clone)]
pub struct DbOptions {
    /// Storage backing.
    pub storage: StorageConfig,
    /// Disk page size in bytes (`B·E` in the paper: entries per page ×
    /// entry size).
    pub page_size: usize,
    /// Buffer (memtable) capacity in bytes — the paper's `M_buffer = P·B·E`.
    pub buffer_capacity: usize,
    /// Size ratio `T` between adjacent level capacities (≥ 2).
    pub size_ratio: usize,
    /// Leveling or tiering.
    pub merge_policy: MergePolicy,
    /// Bloom-filter allocation policy.
    pub filter_policy: Arc<dyn FilterPolicy>,
    /// Bloom-filter layout: standard flat filters (best accuracy per bit)
    /// or cache-line-blocked ones (at most one cache miss per probe, with
    /// the honest — worse — FPR model charged to expected lookup I/O).
    pub filter_variant: FilterVariant,
    /// fsync the WAL on every append (durable but slow) instead of on
    /// flush boundaries.
    pub wal_sync_each_append: bool,
    /// Coalesce WAL `fsync`s across group-commit batches (and across
    /// shards, which share one sync coordinator): a commit whose records
    /// are already written piggybacks on the one in-flight fsync instead
    /// of issuing its own, cutting syncs-per-commit below 1 under load.
    /// Only meaningful with [`DbOptions::wal_sync_each_append`]; on by
    /// default — durability semantics are identical, commits still do not
    /// return before their records are fsynced.
    pub wal_fsync_batching: bool,
    /// Physical I/O path for run pages on durable stores
    /// ([`StorageConfig::Directory`]): buffered `pread`/`pwrite` (the
    /// historical default), `O_DIRECT` (device-true latencies, page cache
    /// bypassed), or `Auto` (direct where the filesystem supports it,
    /// silently buffered elsewhere). A `Direct` request that cannot be
    /// honored (tmpfs, misaligned page size) falls back to buffered and
    /// surfaces a one-time `IoBackendFallback` event plus the
    /// `monkey_io_backend_info` gauge.
    pub io_backend: IoBackend,
    /// Key-value separation (WiscKey, §6 of the paper): values of at least
    /// this many bytes live in an append-only value log and the tree
    /// stores a 14-byte pointer instead. `None` keeps every value inline.
    pub value_separation: Option<usize>,
    /// Run flushes and merge cascades on a dedicated background thread.
    /// When off (the default, and what the experiment harness uses), a put
    /// that fills the buffer drains it inline on the calling thread —
    /// deterministic I/O timing, same amortized cost. Either way, reads
    /// are served from an immutable version snapshot and never block on a
    /// merge.
    pub background_compaction: bool,
    /// How many full (immutable) memtables may queue behind the active one
    /// before puts stall waiting for the flush stage to catch up (≥ 1).
    pub max_immutable_memtables: usize,
    /// Optional harder backpressure bound: stall puts once the *bytes*
    /// queued in immutable memtables reach this limit, even if the count
    /// limit has not been hit. `None` bounds by count only.
    pub stall_threshold: Option<usize>,
    /// Record engine telemetry: latency histograms, per-level I/O
    /// attribution, and the structured event timeline, exposed through
    /// `Db::telemetry_report()`. Off by default; when off, the only cost
    /// left on any hot path is one `None` branch per operation.
    pub telemetry: bool,
    /// Sampling interval of the workload observatory: when set (and
    /// telemetry is on), a `monkey-obs-sampler` thread snapshots the
    /// engine's counters this often and folds the deltas into the windowed
    /// time series behind `Db::observatory()`. `None` (the default) spawns
    /// no thread; windows can still be cut deterministically with
    /// `Db::observatory_tick()`.
    pub observatory_interval: Option<std::time::Duration>,
    /// How many closed windows the observatory retains (oldest evicted
    /// first; ≥ 1).
    pub observatory_retention: usize,
    /// Block-cache admission/eviction policy (only meaningful with
    /// [`StorageConfig::MemoryCached`]). The default, plain LRU, is what
    /// the paper's Figure 12 models; `ScanResistant` switches to an
    /// S3-FIFO-style segmented cache whose protected segment range scans
    /// cannot flush.
    pub cache_policy: CachePolicy,
    /// Worker threads per merge (≥ 1). With more than one, each merge's key
    /// space is cut along input fence pointers into that many disjoint
    /// partitions merged concurrently; the concatenated output is
    /// byte-identical to the single-threaded merge and the I/O counts are
    /// unchanged — the same pages are read and written, just on more cores.
    /// Default 1 (fully sequential, deterministic I/O *ordering* as well).
    pub compaction_threads: usize,
    /// Keyspace shards (≥ 1). With more than one, the keyspace is hash-
    /// partitioned into this many independent engines behind the `Db`
    /// facade — each with its own memtable, WAL, immutable queue, and
    /// flush/merge pipeline — and the memory budgets (`buffer_capacity`,
    /// `stall_threshold`, block cache) are split across them per §4.4.
    /// Default 1: the single-shard engine, byte-identical on disk to the
    /// pre-shard code path (every figure and model comparison runs there).
    pub shards: usize,
    /// Causal span tracing (requires [`DbOptions::telemetry`]). When on,
    /// every `trace_sample_period`-th operation opens a span; background
    /// work (WAL group commits, flushes, merge cascades, stalls) is traced
    /// whenever it carries sampled foreground work, with parent/link ids
    /// tying a stalled put to the group-commit batch and flush that carried
    /// it. Off by default; when off the per-op cost is one branch.
    pub tracing: bool,
    /// Sample one operation span out of every this many operations (≥ 1;
    /// 1 traces everything — deterministic, for tests).
    pub trace_sample_period: u64,
    /// Flight-recorder segment size in bytes. Spans and events spill into
    /// an on-disk ring of CRC-framed `obs-NNNNNN.log` segments (durable
    /// stores only) so the last seconds before a crash can be decoded by
    /// `monkey-stats --flight-recorder`.
    pub recorder_segment_bytes: u64,
    /// How many recorder segments are retained before the oldest is
    /// deleted (the ring's size cap is roughly `segment_bytes × max`).
    pub recorder_max_segments: usize,
    /// Serve the observability plane over HTTP on this address (e.g.
    /// `"127.0.0.1:9184"`; requires [`DbOptions::telemetry`] for the
    /// report endpoints). The embedded server answers `GET /metrics`
    /// (Prometheus text), `/report.json`, `/advice.json`, `/spans.json`,
    /// `/events.json`, and `/healthz`, and shuts down when the `Db` is
    /// dropped. `None` (the default) binds nothing.
    pub obs_listen: Option<String>,
    /// Index of this engine within a sharded store; assigned internally by
    /// the `Db` facade when it splits options per shard. 0 on single-shard
    /// stores. Not a user knob.
    pub shard_index: u32,
}

impl DbOptions {
    /// Options for a volatile in-memory database.
    pub fn in_memory() -> Self {
        Self {
            storage: StorageConfig::Memory,
            ..Self::base()
        }
    }

    /// Options for an in-memory database with a block cache (Figure 12's
    /// configuration).
    pub fn in_memory_cached(cache_bytes: usize) -> Self {
        Self {
            storage: StorageConfig::MemoryCached(cache_bytes),
            ..Self::base()
        }
    }

    /// Options for a durable database rooted at `dir`.
    pub fn at_path(dir: impl Into<PathBuf>) -> Self {
        Self {
            storage: StorageConfig::Directory(dir.into()),
            ..Self::base()
        }
    }

    fn base() -> Self {
        Self {
            storage: StorageConfig::Memory,
            page_size: 4096,
            buffer_capacity: 1 << 20,
            size_ratio: 10,
            merge_policy: MergePolicy::Leveling,
            filter_policy: Arc::new(UniformFilterPolicy::new(10.0)),
            filter_variant: FilterVariant::Standard,
            wal_sync_each_append: false,
            wal_fsync_batching: true,
            // Same motivation as the thread/shard overrides below: CI runs
            // the whole suite device-true with MONKEY_IO_BACKEND=direct.
            io_backend: std::env::var("MONKEY_IO_BACKEND")
                .ok()
                .and_then(|v| IoBackend::parse(&v))
                .unwrap_or(IoBackend::Buffered),
            value_separation: None,
            background_compaction: false,
            max_immutable_memtables: 2,
            stall_threshold: None,
            telemetry: false,
            observatory_interval: None,
            observatory_retention: 128,
            cache_policy: CachePolicy::Lru,
            // The env override lets CI (and ad-hoc experiments) run the
            // whole suite under a parallel merge engine without touching
            // every call site that builds options.
            compaction_threads: std::env::var("MONKEY_COMPACTION_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            shards: std::env::var("MONKEY_SHARDS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1),
            tracing: false,
            trace_sample_period: monkey_obs::DEFAULT_TRACE_SAMPLE_PERIOD,
            recorder_segment_bytes: monkey_obs::DEFAULT_RECORDER_SEGMENT_BYTES,
            recorder_max_segments: monkey_obs::DEFAULT_RECORDER_MAX_SEGMENTS,
            obs_listen: None,
            shard_index: 0,
        }
    }

    /// Sets the page size in bytes.
    pub fn page_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 32, "page size too small to hold entries: {bytes}");
        self.page_size = bytes;
        self
    }

    /// Sets the buffer capacity in bytes.
    pub fn buffer_capacity(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "buffer capacity must be positive");
        self.buffer_capacity = bytes;
        self
    }

    /// Sets the size ratio `T` (clamped to at least 2 — the paper's lower
    /// bound, where leveling and tiering coincide).
    pub fn size_ratio(mut self, t: usize) -> Self {
        assert!(t >= 2, "size ratio must be at least 2, got {t}");
        self.size_ratio = t;
        self
    }

    /// Sets the merge policy.
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Sets the filter allocation policy.
    pub fn filter_policy(mut self, policy: Arc<dyn FilterPolicy>) -> Self {
        self.filter_policy = policy;
        self
    }

    /// Shorthand for a uniform filter policy at `bits_per_entry`.
    pub fn uniform_filters(mut self, bits_per_entry: f64) -> Self {
        self.filter_policy = Arc::new(UniformFilterPolicy::new(bits_per_entry));
        self
    }

    /// Sets the Bloom-filter layout variant.
    pub fn filter_variant(mut self, variant: FilterVariant) -> Self {
        self.filter_variant = variant;
        self
    }

    /// Shorthand for the cache-line-blocked filter layout.
    pub fn blocked_filters(self) -> Self {
        self.filter_variant(FilterVariant::Blocked)
    }

    /// Enables fsync-per-append WAL durability.
    pub fn wal_sync_each_append(mut self, on: bool) -> Self {
        self.wal_sync_each_append = on;
        self
    }

    /// Enables or disables cross-batch WAL fsync coalescing (see
    /// [`DbOptions::wal_fsync_batching`]).
    pub fn wal_fsync_batching(mut self, on: bool) -> Self {
        self.wal_fsync_batching = on;
        self
    }

    /// Selects the physical I/O backend for run pages (see
    /// [`DbOptions::io_backend`]).
    pub fn io_backend(mut self, backend: IoBackend) -> Self {
        self.io_backend = backend;
        self
    }

    /// Enables key-value separation for values of at least
    /// `threshold_bytes` (WiscKey-style; see the paper's §6).
    pub fn value_separation(mut self, threshold_bytes: usize) -> Self {
        assert!(threshold_bytes > 0);
        self.value_separation = Some(threshold_bytes);
        self
    }

    /// Moves flushes and merge cascades to a dedicated background thread.
    pub fn background_compaction(mut self, on: bool) -> Self {
        self.background_compaction = on;
        self
    }

    /// Sets how many immutable memtables may queue before puts stall.
    pub fn max_immutable_memtables(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one immutable memtable must be allowed");
        self.max_immutable_memtables = n;
        self
    }

    /// Stalls puts once the queued immutable memtables hold at least this
    /// many bytes (a harder bound than the count limit).
    pub fn stall_threshold(mut self, bytes: usize) -> Self {
        assert!(bytes > 0);
        self.stall_threshold = Some(bytes);
        self
    }

    /// Enables engine telemetry (see [`DbOptions::telemetry`]).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Sets the block-cache admission/eviction policy.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Shorthand for the scan-resistant block cache.
    pub fn scan_resistant_cache(self) -> Self {
        self.cache_policy(CachePolicy::ScanResistant)
    }

    /// Spawns the observatory sampler thread, cutting a time-series window
    /// every `interval` (implies nothing unless [`DbOptions::telemetry`]
    /// is also on).
    pub fn observatory_interval(mut self, interval: std::time::Duration) -> Self {
        assert!(!interval.is_zero(), "observatory interval must be positive");
        self.observatory_interval = Some(interval);
        self
    }

    /// Sets how many closed observatory windows are retained.
    pub fn observatory_retention(mut self, windows: usize) -> Self {
        assert!(windows >= 1, "at least one window must be retained");
        self.observatory_retention = windows;
        self
    }

    /// Sets how many worker threads each merge may use (see
    /// [`DbOptions::compaction_threads`]).
    pub fn compaction_threads(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one compaction thread is required");
        self.compaction_threads = n;
        self
    }

    /// Sets how many keyspace shards the store runs (see
    /// [`DbOptions::shards`]).
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one shard is required");
        self.shards = n;
        self
    }

    /// Enables causal span tracing (see [`DbOptions::tracing`]; requires
    /// telemetry to be on as well).
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets the span sampling period: one operation in every `period` is
    /// traced (see [`DbOptions::trace_sample_period`]).
    pub fn trace_sample_period(mut self, period: u64) -> Self {
        assert!(period >= 1, "trace sample period must be at least 1");
        self.trace_sample_period = period;
        self
    }

    /// Serves the observability plane on `addr` (see
    /// [`DbOptions::obs_listen`]). Port 0 picks a free port; the bound
    /// address is available from `Db::obs_addr()`.
    pub fn obs_listen(mut self, addr: impl Into<String>) -> Self {
        let addr = addr.into();
        assert!(!addr.is_empty(), "obs_listen address must be non-empty");
        self.obs_listen = Some(addr);
        self
    }

    /// Sets the flight-recorder segment size and retained segment count
    /// (see [`DbOptions::recorder_segment_bytes`]).
    pub fn recorder_limits(mut self, segment_bytes: u64, max_segments: usize) -> Self {
        assert!(segment_bytes > 0, "recorder segment size must be positive");
        assert!(max_segments >= 1, "at least one recorder segment required");
        self.recorder_segment_bytes = segment_bytes;
        self.recorder_max_segments = max_segments;
        self
    }
}

impl std::fmt::Debug for DbOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbOptions")
            .field("storage", &self.storage)
            .field("page_size", &self.page_size)
            .field("buffer_capacity", &self.buffer_capacity)
            .field("size_ratio", &self.size_ratio)
            .field("merge_policy", &self.merge_policy)
            .field("filter_policy", &self.filter_policy.name())
            .field("filter_variant", &self.filter_variant)
            .field("wal_sync_each_append", &self.wal_sync_each_append)
            .field("wal_fsync_batching", &self.wal_fsync_batching)
            .field("io_backend", &self.io_backend.name())
            .field("value_separation", &self.value_separation)
            .field("background_compaction", &self.background_compaction)
            .field("max_immutable_memtables", &self.max_immutable_memtables)
            .field("stall_threshold", &self.stall_threshold)
            .field("telemetry", &self.telemetry)
            .field("observatory_interval", &self.observatory_interval)
            .field("observatory_retention", &self.observatory_retention)
            .field("cache_policy", &self.cache_policy)
            .field("compaction_threads", &self.compaction_threads)
            .field("shards", &self.shards)
            .field("tracing", &self.tracing)
            .field("trace_sample_period", &self.trace_sample_period)
            .field("recorder_segment_bytes", &self.recorder_segment_bytes)
            .field("recorder_max_segments", &self.recorder_max_segments)
            .field("obs_listen", &self.obs_listen)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_leveldb_like() {
        let o = DbOptions::in_memory();
        assert_eq!(o.page_size, 4096);
        assert_eq!(o.buffer_capacity, 1 << 20);
        assert_eq!(o.size_ratio, 10);
        assert_eq!(o.merge_policy, MergePolicy::Leveling);
        assert_eq!(o.filter_policy.name(), "uniform");
        assert_eq!(o.filter_variant, FilterVariant::Standard);
    }

    #[test]
    fn blocked_filters_shorthand() {
        let o = DbOptions::in_memory().blocked_filters();
        assert_eq!(o.filter_variant, FilterVariant::Blocked);
        let o = DbOptions::in_memory().filter_variant(FilterVariant::Standard);
        assert_eq!(o.filter_variant, FilterVariant::Standard);
    }

    #[test]
    fn builder_chains() {
        let o = DbOptions::in_memory()
            .page_size(1024)
            .buffer_capacity(2048)
            .size_ratio(4)
            .merge_policy(MergePolicy::Tiering)
            .uniform_filters(5.0);
        assert_eq!(o.page_size, 1024);
        assert_eq!(o.buffer_capacity, 2048);
        assert_eq!(o.size_ratio, 4);
        assert_eq!(o.merge_policy, MergePolicy::Tiering);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn size_ratio_below_two_rejected() {
        DbOptions::in_memory().size_ratio(1);
    }

    #[test]
    fn telemetry_off_by_default() {
        let o = DbOptions::in_memory();
        assert!(!o.telemetry);
        assert!(o.telemetry(true).telemetry);
    }

    #[test]
    fn cache_policy_defaults_to_lru() {
        // Figure 12 depends on the LRU baseline staying the default.
        let o = DbOptions::in_memory_cached(1 << 20);
        assert_eq!(o.cache_policy, CachePolicy::Lru);
        let o = o.scan_resistant_cache();
        assert_eq!(o.cache_policy, CachePolicy::ScanResistant);
        let o = DbOptions::in_memory().cache_policy(CachePolicy::Lru);
        assert_eq!(o.cache_policy, CachePolicy::Lru);
    }

    #[test]
    fn pipeline_knobs() {
        let o = DbOptions::in_memory();
        assert!(!o.background_compaction, "sync mode is the default");
        assert_eq!(o.max_immutable_memtables, 2);
        assert_eq!(o.stall_threshold, None);
        let o = o
            .background_compaction(true)
            .max_immutable_memtables(4)
            .stall_threshold(1 << 20);
        assert!(o.background_compaction);
        assert_eq!(o.max_immutable_memtables, 4);
        assert_eq!(o.stall_threshold, Some(1 << 20));
    }

    #[test]
    #[should_panic(expected = "at least one immutable")]
    fn zero_immutable_queue_rejected() {
        DbOptions::in_memory().max_immutable_memtables(0);
    }

    #[test]
    fn observatory_knobs() {
        let o = DbOptions::in_memory();
        assert_eq!(o.observatory_interval, None, "no sampler by default");
        assert_eq!(o.observatory_retention, 128);
        let o = o
            .observatory_interval(std::time::Duration::from_millis(50))
            .observatory_retention(16);
        assert_eq!(
            o.observatory_interval,
            Some(std::time::Duration::from_millis(50))
        );
        assert_eq!(o.observatory_retention, 16);
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_observatory_retention_rejected() {
        DbOptions::in_memory().observatory_retention(0);
    }

    #[test]
    fn compaction_threads_knob() {
        // Not asserting the default here: CI runs the suite with
        // MONKEY_COMPACTION_THREADS set, which base() honors by design.
        let o = DbOptions::in_memory();
        assert!(o.compaction_threads >= 1);
        assert_eq!(o.compaction_threads(4).compaction_threads, 4);
    }

    #[test]
    #[should_panic(expected = "at least one compaction thread")]
    fn zero_compaction_threads_rejected() {
        DbOptions::in_memory().compaction_threads(0);
    }

    #[test]
    fn shards_knob() {
        // Not asserting the default here: CI runs the suite with
        // MONKEY_SHARDS set, which base() honors by design.
        let o = DbOptions::in_memory();
        assert!(o.shards >= 1);
        assert_eq!(o.shards(8).shards, 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        DbOptions::in_memory().shards(0);
    }

    #[test]
    fn tracing_off_by_default() {
        let o = DbOptions::in_memory();
        assert!(!o.tracing);
        assert_eq!(o.trace_sample_period, 32);
        assert_eq!(o.shard_index, 0);
        let o = o.tracing(true).trace_sample_period(1);
        assert!(o.tracing);
        assert_eq!(o.trace_sample_period, 1);
    }

    #[test]
    fn recorder_limits_knob() {
        let o = DbOptions::in_memory().recorder_limits(4096, 2);
        assert_eq!(o.recorder_segment_bytes, 4096);
        assert_eq!(o.recorder_max_segments, 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_trace_sample_period_rejected() {
        DbOptions::in_memory().trace_sample_period(0);
    }

    #[test]
    fn obs_listen_off_by_default() {
        let o = DbOptions::in_memory();
        assert_eq!(o.obs_listen, None);
        let o = o.obs_listen("127.0.0.1:0");
        assert_eq!(o.obs_listen.as_deref(), Some("127.0.0.1:0"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_obs_listen_rejected() {
        DbOptions::in_memory().obs_listen("");
    }

    #[test]
    fn io_backend_knob() {
        // Not asserting the default here: CI runs the suite with
        // MONKEY_IO_BACKEND set, which base() honors by design.
        let o = DbOptions::in_memory();
        assert!(o.wal_fsync_batching, "fsync batching is the default");
        let o = o.io_backend(IoBackend::Direct).wal_fsync_batching(false);
        assert_eq!(o.io_backend, IoBackend::Direct);
        assert!(!o.wal_fsync_batching);
        assert_eq!(
            DbOptions::in_memory()
                .io_backend(IoBackend::Auto)
                .io_backend,
            IoBackend::Auto
        );
    }

    #[test]
    fn debug_does_not_explode() {
        let o = DbOptions::at_path("/tmp/x");
        let s = format!("{o:?}");
        assert!(s.contains("uniform"));
    }
}
