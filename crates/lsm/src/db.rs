//! The database: buffer + levels + policies, glued together.
//!
//! ## Write pipeline
//!
//! Foreground puts append to the WAL (group commit) and the active
//! memtable. When the memtable fills it *rotates*: the WAL seals its
//! current segment and the memtable moves, frozen, into an immutable
//! queue. The queue is drained by a flush stage — either inline on the
//! rotating put's own thread (`background_compaction = false`, the
//! default: deterministic I/O timing, what every experiment uses) or by a
//! dedicated worker thread (`true`: foreground puts never pay for a merge
//! cascade; they stall only when the queue hits its configured bound).
//!
//! ## Non-blocking reads
//!
//! The disk-resident shape of the tree lives in an immutable
//! [`Version`] behind an `Arc`. A lookup takes one brief shared lock to
//! probe the active memtable and clone the immutable list + version
//! pointers, then probes runs with **no lock held** — an in-flight merge
//! cascade builds its successor version off to the side and publishes it
//! with a pointer swap, so `get`/`range` never block on compaction in
//! either mode.

use crate::compaction::{
    build_run_from_sorted, filter_params_for, install_leveling, install_tiering, CascadeOutcome,
};
use crate::entry::{Entry, EntryKind, ENTRY_HEADER_LEN};
use crate::error::{LsmError, Result};
use crate::iter::{EntrySource, MergingIter, RangeIter};
use crate::level::{level_capacity_bytes, Version};
use crate::manifest::{Manifest, ManifestState, RunRecord};
use crate::memtable::Memtable;
use crate::options::{DbOptions, StorageConfig};
use crate::page::max_entry_len;
use crate::policy::FilterContext;
use crate::run::{recover_run, FilterParams};
use crate::stats::{DbStats, LevelStats, LookupStats, PipelineGauges, PipelineStats};
use crate::vlog::{ValueLog, ValuePointer};
use crate::wal::{SyncStats, Wal, WalSyncCoordinator};
use bytes::Bytes;
use monkey_bloom::hash_pair;
use monkey_obs::{
    drift_flag, EventKind, FlightRecorder, HttpHandler, HttpResponse, IoBackendReport,
    IoLatencyReport, JsonObject, LevelReport, MeasuredWorkload, ObsServer, OpKind, OpLatencyReport,
    ShardBreakdown, SpanKind, Telemetry, TelemetryReport, TelemetrySnapshot, Tracer, WindowRates,
    WindowedSeries, DEFAULT_EWMA_ALPHA, IO_OPS, MAX_LEVELS, OP_KINDS,
};
use monkey_storage::{BackendInfo, Disk, IoSnapshot};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// A memtable frozen at rotation, queued for the flush stage. Still fully
/// readable; `wal_segment` is the id of the last WAL segment holding its
/// entries, pruned once the flush lands.
#[derive(Clone)]
struct ImmutableMemtable {
    memtable: Arc<Memtable>,
    wal_segment: Option<u64>,
    entries: u64,
    bytes: usize,
    /// Generation number the memtable carried while active; flush spans
    /// link to it so a traced put can be joined to the flush that drained
    /// its memtable.
    generation: u64,
}

/// Read-visible state: what a lookup snapshots under one shared lock.
/// Writers hold the lock exclusively only for memtable inserts, rotations,
/// and version pointer swaps — never across a flush or merge.
struct Shared {
    memtable: Memtable,
    next_seq: u64,
    /// Generation of the active memtable, starting at 1 and bumped at
    /// every rotation. A traced put records the generation it inserted
    /// into; the flush of that generation links back to it.
    generation: u64,
    /// Frozen memtables awaiting flush, oldest first.
    immutables: VecDeque<ImmutableMemtable>,
    /// Current disk shape. Published by pointer swap; readers clone the
    /// `Arc` and keep their snapshot for as long as they need it.
    version: Arc<Version>,
}

/// Pipeline control flags, guarded by a `std` mutex so the condvars can
/// wait on them. Kept separate from [`Shared`] so signaling never contends
/// with the read path.
#[derive(Default)]
struct Control {
    shutdown: bool,
    paused: bool,
    /// Deferred worker failure, surfaced (and consumed) by the next
    /// foreground call.
    background_error: Option<String>,
}

struct Signals {
    control: StdMutex<Control>,
    /// Wakes the worker: new immutable queued, resume, or shutdown.
    work_cv: Condvar,
    /// Wakes stalled writers: an immutable was flushed (or an error means
    /// they should give up).
    stall_cv: Condvar,
    /// Wakes the observatory sampler early, for prompt shutdown.
    obs_cv: Condvar,
}

/// Everything the engine and its background worker share. The worker owns
/// an `Arc<Core>` (not the `Db`), so dropping the last `Db` handle shuts
/// the pipeline down instead of leaking it.
struct Core {
    disk: Arc<Disk>,
    opts: DbOptions,
    shared: RwLock<Shared>,
    signals: Signals,
    /// Serializes flush cascades and filter rebuilds: whoever holds it is
    /// the only builder of successor versions.
    compaction_lock: Mutex<()>,
    wal: Wal,
    manifest: Option<Manifest>,
    compactions: CompactionCounters,
    lookups: LookupCounters,
    pipeline: PipelineCounters,
    /// Value log for key-value separation (WiscKey mode), when enabled.
    vlog: Option<Arc<ValueLog>>,
    /// Telemetry hub, present iff `DbOptions::telemetry`. When `None`,
    /// every instrumentation site collapses to a single branch.
    telemetry: Option<Arc<Telemetry>>,
    /// Causal span source, present iff `DbOptions::tracing` (and
    /// telemetry) are on. Holds the optional on-disk flight recorder for
    /// directory-backed stores.
    tracer: Option<Arc<Tracer>>,
    /// Windowed time series of counter deltas, present iff telemetry is
    /// on. Fed by the sampler thread or `Db::observatory_tick()`; op hot
    /// paths never touch it.
    series: Option<Arc<WindowedSeries>>,
}

/// An LSM-tree key-value store.
///
/// Thread-safe. Lookups and scans read an immutable version snapshot and
/// never block on flushes or merges; updates serialize on a short
/// exclusive lock (memtable insert + WAL enqueue) with the heavy merge
/// work running inline (default) or on a background thread.
///
/// With [`DbOptions::shards`] > 1 the facade hash-partitions the keyspace
/// across that many independent engines — per-shard memtable, WAL,
/// immutable queue, and flush/merge pipeline — so writers on different
/// shards never contend on a lock. `shards = 1` (the default) is the
/// single engine, byte-identical on disk to the pre-shard code path.
pub struct Db {
    /// The facade-level configuration (undivided budgets, `shards = N`).
    opts: DbOptions,
    /// The embedded scrape endpoint, when [`DbOptions::obs_listen`] is
    /// set. Declared before `shards` on purpose: fields drop in
    /// declaration order, so the server stops answering (and its worker
    /// threads join) before the engines it reads from shut down.
    obs_server: OnceLock<ObsServer>,
    /// Renders `/advice.json`. The closed-loop tuning advisor lives in a
    /// crate above this one, so binaries inject a provider via
    /// [`Db::set_advice_provider`]; without one the endpoint reports the
    /// measured workload with `"advice": null`.
    advice_provider: OnceLock<AdviceProvider>,
    /// The cross-shard WAL fsync coordinator, when fsync batching is on
    /// for a durable store — kept here so [`Db::wal_sync_stats`] can
    /// report global coalescing (tickets vs. physical syncs).
    sync_coord: Option<Arc<WalSyncCoordinator>>,
    shards: Vec<Shard>,
}

/// Renders the `/advice.json` body for a store — see
/// [`Db::set_advice_provider`].
pub type AdviceProvider = Box<dyn Fn(&Db) -> String + Send + Sync>;

/// Lifetime counters of the engine's maintenance work.
#[derive(Debug, Default)]
struct CompactionCounters {
    flushes: AtomicU64,
    merges: AtomicU64,
    entries_rewritten: AtomicU64,
    /// Payload bytes drained from immutable memtables by flushes — the
    /// numerator of the observatory's flush-rate window metric.
    bytes_flushed: AtomicU64,
    /// Gauge: key-range partitions of the most recent merge (0 = none yet).
    last_merge_partitions: AtomicU64,
    /// Gauge: worker threads of the most recent merge (0 = none yet).
    last_merge_threads: AtomicU64,
}

/// Lifetime counters of the point-lookup fast path (see [`LookupStats`]).
#[derive(Debug, Default)]
struct LookupCounters {
    key_hashes: AtomicU64,
    filter_probes: AtomicU64,
    filter_negatives: AtomicU64,
    filter_false_positives: AtomicU64,
}

/// Lifetime counters of the write pipeline (see [`PipelineStats`]).
#[derive(Debug, Default)]
struct PipelineCounters {
    stalls: AtomicU64,
    stall_micros: AtomicU64,
    background_errors: AtomicU64,
    /// Gauge (not a counter): writers blocked in a stall *right now*.
    /// Incremented when a put first hits backpressure, decremented on
    /// every exit from the stall loop, error paths included.
    active_stalls: AtomicU64,
}

/// A snapshot of the engine's maintenance work since open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Merge operations performed (leveling merges and tiering merges).
    pub merges: u64,
    /// Entries read-and-rewritten by merges — divided by the number of
    /// user updates this is the engine's measured write amplification in
    /// entries (the quantity Eq. 10 models in I/Os).
    pub entries_rewritten: u64,
    /// Key-range partitions of the most recent merge (1 = sequential;
    /// 0 = no merge has run yet).
    pub last_merge_partitions: u64,
    /// Worker threads of the most recent merge (0 = no merge yet).
    pub last_merge_threads: u64,
}

impl Core {
    fn check_entry_size(&self, key: &[u8], value_len: usize) -> Result<()> {
        if key.len() > u16::MAX as usize {
            return Err(LsmError::KeyTooLarge(key.len()));
        }
        let encoded = ENTRY_HEADER_LEN + key.len() + value_len;
        let max = max_entry_len(self.opts.page_size);
        if encoded > max {
            return Err(LsmError::EntryTooLarge { encoded, max });
        }
        Ok(())
    }

    /// Surfaces (and consumes) a deferred background-worker failure.
    fn check_background_error(&self) -> Result<()> {
        let mut ctl = self.signals.control.lock().expect("control poisoned");
        if let Some(msg) = ctl.background_error.take() {
            return Err(LsmError::Background(msg));
        }
        Ok(())
    }

    /// Resolves an entry's user-visible value (following a value-log
    /// pointer for separated entries).
    fn resolve_value(&self, entry: &Entry) -> Result<Option<Bytes>> {
        match entry.kind {
            EntryKind::Put => Ok(Some(entry.value.clone())),
            EntryKind::Delete => Ok(None),
            EntryKind::IndirectPut => {
                let ptr = ValuePointer::decode(&entry.value)
                    .ok_or_else(|| LsmError::Corruption("malformed value-log pointer".into()))?;
                let vlog = self.vlog.as_ref().ok_or_else(|| {
                    LsmError::Corruption("indirect entry in a store without a value log".into())
                })?;
                Ok(Some(vlog.get(ptr)?))
            }
        }
    }

    /// Rebuilds the run → level attribution table from `version` — the
    /// authoritative shape. Merges tag output runs at build time, but a
    /// leveling carry moves a run down a level *without* rewriting it, and
    /// recovery re-adopts runs wholesale; walking the installed version
    /// covers every such path (and retires tags of dropped runs).
    fn retag_attribution(&self, version: &Version) {
        if let Some(t) = &self.telemetry {
            t.attribution().retag_all(
                version
                    .levels()
                    .iter()
                    .enumerate()
                    .flat_map(|(li, level)| level.runs().iter().map(move |r| (r.id(), li + 1))),
            );
        }
    }

    /// Freezes the active memtable into the immutable queue, sealing the
    /// WAL segment that covers it. No-op on an empty memtable.
    fn rotate_locked(&self, shared: &mut Shared) -> Result<()> {
        if shared.memtable.is_empty() {
            return Ok(());
        }
        let sealed = self.wal.seal_current()?;
        let frozen = std::mem::take(&mut shared.memtable);
        let generation = shared.generation;
        shared.generation += 1;
        shared.immutables.push_back(ImmutableMemtable {
            entries: frozen.len() as u64,
            bytes: frozen.bytes(),
            memtable: Arc::new(frozen),
            wal_segment: sealed,
            generation,
        });
        self.signals.work_cv.notify_one();
        Ok(())
    }

    /// Whether a rotation fits under the backpressure bounds.
    fn room_to_rotate(&self, shared: &Shared) -> bool {
        if shared.immutables.len() >= self.opts.max_immutable_memtables {
            return false;
        }
        match self.opts.stall_threshold {
            Some(limit) => shared.immutables.iter().map(|i| i.bytes).sum::<usize>() < limit,
            None => true,
        }
    }

    /// Post-insert capacity check. Consumes the write guard: the inline
    /// path drops it before draining, the backpressure path re-takes it
    /// around each stall wait.
    fn maybe_rotate_after_insert<'a>(&'a self, shared: RwLockWriteGuard<'a, Shared>) -> Result<()> {
        if shared.memtable.bytes() < self.opts.buffer_capacity {
            return Ok(());
        }
        if self.opts.background_compaction {
            self.stall_then_rotate(shared)
        } else {
            // Synchronous mode: rotate unconditionally and drain on this
            // thread — the seed engine's deterministic behavior (and the
            // guaranteed-progress path: there is no worker to wait for).
            let mut shared = shared;
            self.rotate_locked(&mut shared)?;
            drop(shared);
            self.drain_queue()
        }
    }

    /// Backpressure: rotate when the queue has room, otherwise block on
    /// the stall condvar (with a timeout, so a missed wakeup only costs
    /// latency) until the worker catches up.
    fn stall_then_rotate<'a>(&'a self, mut shared: RwLockWriteGuard<'a, Shared>) -> Result<()> {
        let mut counted = false;
        let mut stall_started: Option<Instant> = None;
        let mut stall_span = None;
        let mut stall_depth = 0u64;
        // The active-stall gauge must come back down on *every* exit from
        // the loop — success, shutdown, and background-error alike.
        let unstall = |counted: bool| {
            if counted {
                self.pipeline.active_stalls.fetch_sub(1, Relaxed);
            }
        };
        loop {
            if self.room_to_rotate(&shared) {
                if let (Some(t), Some(s0)) = (&self.telemetry, stall_started) {
                    t.event(EventKind::StallEnd {
                        waited_micros: s0.elapsed().as_micros() as u64,
                    });
                }
                if let (Some(tr), Some(active)) = (&self.tracer, stall_span.take()) {
                    tr.finish(active, 0, vec![stall_depth]);
                }
                unstall(counted);
                return self.rotate_locked(&mut shared);
            }
            let queue_depth = shared.immutables.len() as u64;
            drop(shared);
            if !counted {
                self.pipeline.stalls.fetch_add(1, Relaxed);
                self.pipeline.active_stalls.fetch_add(1, Relaxed);
                counted = true;
                if let Some(t) = &self.telemetry {
                    stall_started = Some(Instant::now());
                    t.event(EventKind::StallBegin { queue_depth });
                }
                // Stalls are rare and diagnostic gold: trace every one.
                if let Some(tr) = &self.tracer {
                    stall_depth = queue_depth;
                    stall_span = Some(tr.start(SpanKind::Stall));
                }
            }
            let t0 = Instant::now();
            {
                let ctl = self.signals.control.lock().expect("control poisoned");
                if ctl.shutdown {
                    unstall(counted);
                    return Err(LsmError::Background("database shutting down".into()));
                }
                let _ = self
                    .signals
                    .stall_cv
                    .wait_timeout(ctl, Duration::from_millis(2))
                    .expect("control poisoned");
            }
            self.pipeline
                .stall_micros
                .fetch_add(t0.elapsed().as_micros() as u64, Relaxed);
            if let Err(e) = self.check_background_error() {
                unstall(counted);
                return Err(e);
            }
            shared = self.shared.write();
        }
    }

    /// Flushes queued immutable memtables until the queue is empty.
    fn drain_queue(&self) -> Result<()> {
        while self.flush_one()? {}
        Ok(())
    }

    /// Flushes the oldest queued immutable memtable, if any. On failure
    /// the memtable stays queued (still readable, still WAL-covered) for
    /// a later retry.
    fn flush_one(&self) -> Result<bool> {
        let _cascade = self.compaction_lock.lock();
        let Some(imm) = self.shared.read().immutables.front().cloned() else {
            return Ok(false);
        };
        self.flush_immutable(&imm)?;
        Ok(true)
    }

    /// The flush stage: turn one frozen memtable into a run, cascade it
    /// through the merge policy on a private clone of the current version,
    /// publish the successor, persist the manifest, prune the WAL.
    /// Caller holds `compaction_lock`; the shared lock is taken only for
    /// the final pointer swap.
    fn flush_immutable(&self, imm: &ImmutableMemtable) -> Result<()> {
        let tel = self.telemetry.as_deref();
        let flush_started = match tel {
            Some(t) => {
                t.event(EventKind::FlushStart {
                    entries: imm.entries,
                    bytes: imm.bytes as u64,
                });
                t.op_start(OpKind::Flush)
            }
            None => None,
        };
        // Every flush is traced (rare, and the join point of the causal
        // chain: puts link to the generation this span carries).
        let flush_span = self.tracer.as_ref().map(|t| t.start(SpanKind::Flush));
        let flush_span_id = flush_span.as_ref().map_or(0, |s| s.id);
        if let Some(vlog) = &self.vlog {
            // Pointers about to be persisted must reference durable pages.
            // This runs without the shared lock: large separated values no
            // longer stall concurrent puts.
            vlog.sync()?;
        }
        let entries = imm.memtable.to_sorted_entries();
        let base = Arc::clone(&self.shared.read().version);
        let mut working = (*base).clone();
        // Tombstones can be dropped immediately only when the disk is empty.
        let drop_tombstones = working.deepest() == 0;
        let n = entries.len() as u64;
        let params = filter_params_for(&self.opts, &working, 1, n, 0);
        let run = build_run_from_sorted(&self.disk, entries, drop_tombstones, 1, params)?;
        self.compactions.flushes.fetch_add(1, Relaxed);
        self.compactions
            .bytes_flushed
            .fetch_add(imm.bytes as u64, Relaxed);
        let mut outcome = CascadeOutcome::default();
        if let Some(run) = run {
            let cascade_started = tel.and_then(|t| t.op_start(OpKind::Cascade));
            let cascade_span = self.tracer.as_ref().map(|t| t.start(SpanKind::Cascade));
            match self.opts.merge_policy {
                crate::policy::MergePolicy::Leveling => {
                    install_leveling(&self.disk, &self.opts, &mut working, run, &mut outcome, tel)?
                }
                crate::policy::MergePolicy::Tiering => {
                    install_tiering(&self.disk, &self.opts, &mut working, run, &mut outcome, tel)?
                }
            }
            if let Some(t) = tel {
                t.op_end(OpKind::Cascade, cascade_started);
                t.event(EventKind::CascadeInstall {
                    merges: outcome.merges,
                    deepest_level: working.deepest() as u64,
                });
            }
            if let (Some(tr), Some(active)) = (&self.tracer, cascade_span) {
                // Parented under the flush; links record the generation,
                // the merge shape, then the full input-run lineage.
                let mut links = vec![
                    imm.generation,
                    outcome.merges,
                    outcome.max_partitions as u64,
                    outcome.max_threads as u64,
                ];
                links.extend(&outcome.input_runs);
                tr.finish(active, flush_span_id, links);
            }
        }
        self.compactions.merges.fetch_add(outcome.merges, Relaxed);
        self.compactions
            .entries_rewritten
            .fetch_add(outcome.entries_rewritten, Relaxed);
        if outcome.merges > 0 {
            self.compactions
                .last_merge_partitions
                .store(outcome.max_partitions as u64, Relaxed);
            self.compactions
                .last_merge_threads
                .store(outcome.max_threads as u64, Relaxed);
        }
        let new_version = Arc::new(working);
        let next_seq;
        {
            // Publish atomically: readers either see the entries in the
            // immutable memtable (old version) or in the runs (new
            // version), never neither.
            let mut shared = self.shared.write();
            shared.version = Arc::clone(&new_version);
            let popped = shared
                .immutables
                .pop_front()
                .expect("flushed memtable vanished from the queue");
            debug_assert!(Arc::ptr_eq(&popped.memtable, &imm.memtable));
            next_seq = shared.next_seq;
        }
        self.signals.stall_cv.notify_all();
        self.retag_attribution(&new_version);
        self.persist_manifest(&new_version, next_seq)?;
        if let Some(segment) = imm.wal_segment {
            self.wal.prune_upto(segment)?;
        }
        if let Some(t) = tel {
            let duration_micros = flush_started.map_or(0, |s| s.elapsed().as_micros() as u64);
            t.op_end(OpKind::Flush, flush_started);
            t.event(EventKind::FlushEnd { duration_micros });
        }
        if let (Some(tr), Some(active)) = (&self.tracer, flush_span) {
            // wal_segment is stored +1 so 0 can mean "no WAL" (volatile
            // store) without an Option in the link layout.
            tr.finish(
                active,
                0,
                vec![
                    imm.generation,
                    imm.entries,
                    imm.wal_segment.map_or(0, |s| s + 1),
                ],
            );
        }
        Ok(())
    }

    fn persist_manifest(&self, version: &Version, next_seq: u64) -> Result<()> {
        let Some(manifest) = &self.manifest else {
            return Ok(());
        };
        let mut runs = Vec::new();
        for (idx, level) in version.levels().iter().enumerate() {
            for (age, run) in level.runs().iter().enumerate() {
                runs.push(RunRecord {
                    id: run.id(),
                    level: idx + 1,
                    age,
                    bits_per_entry: run.filter_bits_per_entry(),
                    flavor: run.filter_variant(),
                });
            }
        }
        manifest.store(&ManifestState {
            next_seq,
            policy: Some(self.opts.merge_policy),
            size_ratio: Some(self.opts.size_ratio),
            runs,
        })
    }

    /// Cuts one observatory window: snapshots the engine's monotone
    /// counters and folds the delta against the previous snapshot into the
    /// windowed series. Returns the closed window's rates, or `None` when
    /// telemetry is off or this was the baseline (first) snapshot.
    fn observatory_tick(&self) -> Option<WindowRates> {
        let (t, series) = match (&self.telemetry, &self.series) {
            (Some(t), Some(s)) => (t, s),
            _ => return None,
        };
        let snapshot = TelemetrySnapshot {
            at_micros: t.now_micros(),
            gets: t.op_count(OpKind::Get),
            puts: t.op_count(OpKind::Put),
            ranges: t.op_count(OpKind::Range),
            bytes_flushed: self.compactions.bytes_flushed.load(Relaxed),
            entries_rewritten: self.compactions.entries_rewritten.load(Relaxed),
            stalls: self.pipeline.stalls.load(Relaxed),
            stall_micros: self.pipeline.stall_micros.load(Relaxed),
            level_io: t.attribution().snapshot(),
        };
        series.record(snapshot)
    }
}

/// The observatory sampler: cuts a window every `interval` until shutdown.
/// Owns only an `Arc<Core>` (like the flush worker), never touches op hot
/// paths, and wakes early when `obs_cv` signals shutdown.
fn sampler_loop(core: Arc<Core>, interval: Duration) {
    loop {
        let deadline = Instant::now() + interval;
        {
            let mut ctl = core.signals.control.lock().expect("control poisoned");
            loop {
                if ctl.shutdown {
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = core
                    .signals
                    .obs_cv
                    .wait_timeout(ctl, deadline - now)
                    .expect("control poisoned");
                ctl = guard;
            }
        }
        core.observatory_tick();
    }
}

/// The background flush/compaction worker. Drains the immutable queue;
/// on failure it records the error for the foreground and retries with
/// backoff (the memtable stays queued and readable, its WAL segments
/// stay on disk). Exits when shutdown is flagged and the queue is empty
/// — or immediately on a failure during shutdown, leaving recovery to
/// the WAL.
fn worker_loop(core: Arc<Core>) {
    loop {
        let (shutdown, paused) = {
            let ctl = core.signals.control.lock().expect("control poisoned");
            (ctl.shutdown, ctl.paused)
        };
        let has_work = !core.shared.read().immutables.is_empty();
        if shutdown && !has_work {
            return;
        }
        if !shutdown && (paused || !has_work) {
            let ctl = core.signals.control.lock().expect("control poisoned");
            let _ = core
                .signals
                .work_cv
                .wait_timeout(ctl, Duration::from_millis(5))
                .expect("control poisoned");
            continue;
        }
        match core.flush_one() {
            Ok(_) => {}
            Err(e) => {
                core.pipeline.background_errors.fetch_add(1, Relaxed);
                if let Some(t) = &core.telemetry {
                    t.event(EventKind::BackgroundError {
                        message: e.to_string(),
                    });
                }
                {
                    let mut ctl = core.signals.control.lock().expect("control poisoned");
                    ctl.background_error = Some(e.to_string());
                }
                core.signals.stall_cv.notify_all();
                if shutdown {
                    return;
                }
                let ctl = core.signals.control.lock().expect("control poisoned");
                let _ = core
                    .signals
                    .work_cv
                    .wait_timeout(ctl, Duration::from_millis(10))
                    .expect("control poisoned");
            }
        }
    }
}

impl Core {
    /// Opens a single-shard engine core. For directory-backed storage,
    /// recovers the tree from the manifest and replays the WAL segments.
    /// `sync_coord`, when present, routes every WAL fsync through the
    /// shared cross-shard coalescing coordinator.
    fn open_core(
        opts: DbOptions,
        sync_coord: Option<Arc<WalSyncCoordinator>>,
    ) -> Result<Arc<Core>> {
        let (disk, wal, manifest, replayed, manifest_state) = match &opts.storage {
            StorageConfig::Memory => (
                Disk::mem(opts.page_size),
                Wal::disabled(),
                None,
                Vec::new(),
                None,
            ),
            StorageConfig::MemoryCached(cache) => (
                Disk::mem_cached_with(opts.page_size, *cache, opts.cache_policy),
                Wal::disabled(),
                None,
                Vec::new(),
                None,
            ),
            StorageConfig::Directory(dir) => {
                std::fs::create_dir_all(dir)?;
                let disk =
                    Disk::file_with(dir.join("pages"), opts.page_size, opts.io_backend, None)?;
                let manifest = Manifest::at(dir.join("MANIFEST"));
                let state = manifest.load()?;
                let (wal, replayed) = Wal::open_with(dir, opts.wal_sync_each_append, sync_coord)?;
                (disk, wal, Some(manifest), replayed, state)
            }
        };

        let mut version = Version::empty();
        let mut next_seq = 0;
        if let Some(state) = &manifest_state {
            Self::recover_version(&disk, state, &mut version)?;
            next_seq = state.next_seq;
        }
        let memtable = Memtable::new();
        for entry in replayed {
            next_seq = next_seq.max(entry.seq + 1);
            memtable.insert(entry);
        }
        // (Separated values from replayed WAL records land inline in the
        // memtable, which is always correct — separation is an
        // optimization, not an invariant.)

        let vlog = opts
            .value_separation
            .map(|_| Arc::new(ValueLog::new(Arc::clone(&disk), 1024)));
        let telemetry = opts.telemetry.then(|| {
            Arc::new(Telemetry::for_shard(
                opts.shard_index,
                Telemetry::DEFAULT_EVENT_CAPACITY,
            ))
        });
        let tracer = match &telemetry {
            Some(_) if opts.tracing => {
                // Directory-backed stores also spill spans and events into
                // the on-disk flight recorder; volatile stores keep spans
                // in the in-memory ring only.
                let recorder = match &opts.storage {
                    StorageConfig::Directory(dir) => Some(FlightRecorder::open(
                        dir,
                        opts.recorder_segment_bytes,
                        opts.recorder_max_segments,
                    )?),
                    _ => None,
                };
                Some(Arc::new(Tracer::new(
                    opts.shard_index,
                    opts.trace_sample_period,
                    recorder,
                )))
            }
            _ => None,
        };
        if let Some(t) = &telemetry {
            disk.attach_attribution(Arc::clone(t.attribution()));
            disk.attach_io_latency(Arc::clone(t.io_latency()));
            wal.attach_telemetry(Arc::clone(t));
            if let Some(tr) = &tracer {
                t.attach_tracer(Arc::clone(tr));
                wal.attach_tracer(Arc::clone(tr));
            }
            // Surface a requested-but-unusable O_DIRECT backend exactly
            // once, at open — quietly running buffered when the operator
            // asked for device-true I/O would invalidate every latency
            // figure they read off the dashboard.
            let info = disk.backend_info();
            if let Some(reason) = &info.fallback {
                t.event(EventKind::IoBackendFallback {
                    reason: reason.clone(),
                });
            }
        }
        let series = telemetry.as_ref().map(|_| {
            Arc::new(WindowedSeries::new(
                opts.observatory_retention,
                DEFAULT_EWMA_ALPHA,
            ))
        });
        let core = Arc::new(Core {
            disk,
            shared: RwLock::new(Shared {
                memtable,
                next_seq,
                generation: 1,
                immutables: VecDeque::new(),
                version: Arc::new(version),
            }),
            signals: Signals {
                control: StdMutex::new(Control::default()),
                work_cv: Condvar::new(),
                stall_cv: Condvar::new(),
                obs_cv: Condvar::new(),
            },
            compaction_lock: Mutex::new(()),
            wal,
            manifest,
            compactions: CompactionCounters::default(),
            lookups: LookupCounters::default(),
            pipeline: PipelineCounters::default(),
            vlog,
            telemetry,
            tracer,
            series,
            opts,
        });
        // Recovered runs carry no build-time tags; adopt them level by level.
        core.retag_attribution(&core.shared.read().version);
        // A WAL bigger than the buffer (crash right before a flush): flush
        // now, inline, before the worker exists.
        {
            let mut shared = core.shared.write();
            if shared.memtable.bytes() >= core.opts.buffer_capacity {
                core.rotate_locked(&mut shared)?;
                drop(shared);
                core.drain_queue()?;
            }
        }
        Ok(core)
    }

    /// Opens a volatile engine core over a caller-supplied [`Disk`] — used
    /// by tests and simulations that need a custom backend (fault
    /// injection, slow devices, bespoke caches). No WAL or manifest is
    /// attached.
    fn open_core_with_disk(opts: DbOptions, disk: Arc<Disk>) -> Result<Arc<Core>> {
        assert_eq!(
            disk.page_size(),
            opts.page_size,
            "disk and options disagree on the page size"
        );
        let vlog = opts
            .value_separation
            .map(|_| Arc::new(ValueLog::new(Arc::clone(&disk), 1024)));
        let telemetry = opts.telemetry.then(|| {
            Arc::new(Telemetry::for_shard(
                opts.shard_index,
                Telemetry::DEFAULT_EVENT_CAPACITY,
            ))
        });
        let tracer = match &telemetry {
            // Caller-supplied disks are volatile: spans stay in the ring,
            // no flight recorder.
            Some(_) if opts.tracing => Some(Arc::new(Tracer::new(
                opts.shard_index,
                opts.trace_sample_period,
                None,
            ))),
            _ => None,
        };
        if let Some(t) = &telemetry {
            disk.attach_attribution(Arc::clone(t.attribution()));
            disk.attach_io_latency(Arc::clone(t.io_latency()));
            if let Some(tr) = &tracer {
                t.attach_tracer(Arc::clone(tr));
            }
        }
        let series = telemetry.as_ref().map(|_| {
            Arc::new(WindowedSeries::new(
                opts.observatory_retention,
                DEFAULT_EWMA_ALPHA,
            ))
        });
        let core = Arc::new(Core {
            disk,
            shared: RwLock::new(Shared {
                memtable: Memtable::new(),
                next_seq: 0,
                generation: 1,
                immutables: VecDeque::new(),
                version: Arc::new(Version::empty()),
            }),
            signals: Signals {
                control: StdMutex::new(Control::default()),
                work_cv: Condvar::new(),
                stall_cv: Condvar::new(),
                obs_cv: Condvar::new(),
            },
            compaction_lock: Mutex::new(()),
            wal: Wal::disabled(),
            manifest: None,
            compactions: CompactionCounters::default(),
            lookups: LookupCounters::default(),
            pipeline: PipelineCounters::default(),
            vlog,
            telemetry,
            tracer,
            series,
            opts,
        });
        Ok(core)
    }
}

/// One keyspace shard: an engine core plus its background threads.
/// Dropping it shuts the shard's pipeline down and joins its workers.
struct Shard {
    core: Arc<Core>,
    worker: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
}

impl Shard {
    fn open(opts: DbOptions, sync_coord: Option<Arc<WalSyncCoordinator>>) -> Result<Shard> {
        Ok(Self::with_worker(Core::open_core(opts, sync_coord)?))
    }

    fn open_with_disk(opts: DbOptions, disk: Arc<Disk>) -> Result<Shard> {
        Ok(Self::with_worker(Core::open_core_with_disk(opts, disk)?))
    }

    fn with_worker(core: Arc<Core>) -> Self {
        let worker = if core.opts.background_compaction {
            let worker_core = Arc::clone(&core);
            Some(
                std::thread::Builder::new()
                    .name("monkey-flush".into())
                    .spawn(move || worker_loop(worker_core))
                    .expect("spawn flush worker"),
            )
        } else {
            None
        };
        let sampler = match (&core.series, core.opts.observatory_interval) {
            (Some(_), Some(interval)) => {
                let sampler_core = Arc::clone(&core);
                Some(
                    std::thread::Builder::new()
                        .name("monkey-obs-sampler".into())
                        .spawn(move || sampler_loop(sampler_core, interval))
                        .expect("spawn observatory sampler"),
                )
            }
            _ => None,
        };
        Self {
            core,
            worker,
            sampler,
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        {
            let mut ctl = self.core.signals.control.lock().expect("control poisoned");
            ctl.shutdown = true;
            ctl.paused = false;
        }
        self.core.signals.work_cv.notify_all();
        self.core.signals.obs_cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        if let Some(sampler) = self.sampler.take() {
            let _ = sampler.join();
        }
        // Any still-enqueued WAL records reach the file (no fsync): a
        // clean process exit loses nothing that was acknowledged. The
        // active memtable is intentionally NOT flushed — crash recovery
        // replays it from the WAL.
        let _ = self.core.wal.flush_pending();
    }
}

impl Core {
    fn recover_version(
        disk: &Arc<Disk>,
        state: &ManifestState,
        version: &mut Version,
    ) -> Result<()> {
        let mut records: Vec<RunRecord> = state.runs.clone();
        // Within a level, older runs (higher age) are pushed first so the
        // youngest ends up in front.
        records.sort_by_key(|r| (r.level, std::cmp::Reverse(r.age)));
        for record in records {
            if record.level == 0 {
                return Err(LsmError::Corruption("manifest run at level 0".into()));
            }
            version.ensure_levels(record.level);
            let run = recover_run(
                disk,
                record.id,
                FilterParams::new(record.bits_per_entry, record.flavor),
            )?;
            version.levels_mut()[record.level - 1].push_youngest(Arc::new(run));
        }
        Ok(())
    }

    /// Inserts or updates a key.
    ///
    /// With key-value separation enabled, values at or above the threshold
    /// go to the value log and the tree stores a pointer; the WAL always
    /// records the full value, so durability does not depend on log-page
    /// flush timing.
    fn put(&self, key: Bytes, value: Bytes) -> Result<()> {
        let core = self;
        let started = match &core.telemetry {
            Some(t) => t.op_start(OpKind::Put),
            None => None,
        };
        let put_span = core
            .tracer
            .as_ref()
            .and_then(|t| t.maybe_start(SpanKind::Put));
        core.check_background_error()?;
        if let Some(t) = &core.telemetry {
            // Classified as `w` before the key moves into the entry below.
            t.workload().record_update(&key);
        }
        let separate = match (&core.vlog, core.opts.value_separation) {
            (Some(vlog), Some(threshold)) if value.len() >= threshold => {
                if value.len() > vlog.max_value_len() {
                    return Err(LsmError::EntryTooLarge {
                        encoded: value.len(),
                        max: vlog.max_value_len(),
                    });
                }
                true
            }
            _ => {
                core.check_entry_size(&key, value.len())?;
                false
            }
        };
        if separate {
            core.check_entry_size(&key, ValuePointer::ENCODED_LEN)?;
        }
        let seq;
        let generation;
        {
            let mut shared = core.shared.write();
            seq = shared.next_seq;
            shared.next_seq += 1;
            // The WAL gets the full value either way. Enqueued under the
            // exclusive lock (preserving sequence order); the physical
            // write happens in `commit` below, off the lock, batched with
            // whatever other writers enqueued meanwhile.
            core.wal.enqueue(&Entry {
                key: key.clone(),
                value: value.clone(),
                seq,
                kind: EntryKind::Put,
            })?;
            let entry = if separate {
                let ptr = core
                    .vlog
                    .as_ref()
                    .expect("separation checked")
                    .append(&value)?;
                Entry {
                    key,
                    value: Bytes::copy_from_slice(&ptr.encode()),
                    seq,
                    kind: EntryKind::IndirectPut,
                }
            } else {
                Entry {
                    key,
                    value,
                    seq,
                    kind: EntryKind::Put,
                }
            };
            shared.memtable.insert(entry);
            generation = shared.generation;
            core.maybe_rotate_after_insert(shared)?;
        }
        let wal_batch = core.wal.commit(seq)?;
        if let (Some(tr), Some(active)) = (&core.tracer, put_span) {
            // Links: the group-commit batch that made this put durable and
            // the memtable generation it landed in — the flush of that
            // generation carries the same id.
            tr.finish(active, 0, vec![wal_batch, generation]);
        }
        if let Some(t) = &core.telemetry {
            t.op_end(OpKind::Put, started);
        }
        Ok(())
    }

    /// Deletes a key (writes a tombstone). Counted as a put in telemetry:
    /// a tombstone write takes the identical path.
    fn delete(&self, key: Bytes) -> Result<()> {
        let core = self;
        let started = match &core.telemetry {
            Some(t) => t.op_start(OpKind::Put),
            None => None,
        };
        core.check_background_error()?;
        if let Some(t) = &core.telemetry {
            t.workload().record_update(&key);
        }
        core.check_entry_size(&key, 0)?;
        let seq;
        {
            let mut shared = core.shared.write();
            seq = shared.next_seq;
            shared.next_seq += 1;
            let entry = Entry::tombstone(key, seq);
            core.wal.enqueue(&entry)?;
            shared.memtable.insert(entry);
            core.maybe_rotate_after_insert(shared)?;
        }
        core.wal.commit(seq)?;
        if let Some(t) = &core.telemetry {
            t.op_end(OpKind::Put, started);
        }
        Ok(())
    }

    /// Point lookup. Probes the buffer and any frozen memtables, then each
    /// level shallow-to-deep (runs youngest-to-oldest), stopping at the
    /// first version found (§2).
    ///
    /// One brief shared-lock critical section snapshots the memtable probe
    /// result, the immutable list, and the version; every disk probe runs
    /// with **no lock held**, so an in-flight flush or merge cascade never
    /// delays the lookup. The key is hashed **once**, when the lookup
    /// first reaches the disk levels.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        match &self.telemetry {
            Some(t) => {
                let started = t.op_start(OpKind::Get);
                let out = self.get_impl(key);
                if let Ok(found) = &out {
                    // The taxonomy split the model cares about: zero-result
                    // (`r`) vs non-zero-result (`v`) point lookups.
                    t.workload().record_lookup(key, found.is_some());
                }
                t.op_end(OpKind::Get, started);
                out
            }
            None => self.get_impl(key),
        }
    }

    fn get_impl(&self, key: &[u8]) -> Result<Option<Bytes>> {
        let core = self;
        let (immutables, version) = {
            let shared = core.shared.read();
            if let Some(entry) = shared.memtable.get(key) {
                drop(shared);
                return core.resolve_value(&entry);
            }
            let immutables: Vec<Arc<Memtable>> = shared
                .immutables
                .iter()
                .map(|imm| Arc::clone(&imm.memtable))
                .collect();
            (immutables, Arc::clone(&shared.version))
        };
        // Frozen memtables, newest first.
        for imm in immutables.iter().rev() {
            if let Some(entry) = imm.get(key) {
                return core.resolve_value(&entry);
            }
        }
        let pair = hash_pair(key); // the lookup's only hash computation
        core.lookups.key_hashes.fetch_add(1, Relaxed);
        let tel = core.telemetry.as_deref();
        for (li, level) in version.levels().iter().enumerate() {
            for run in level.runs() {
                let look = run.get_hashed(key, pair)?;
                // With telemetry on the per-level table is the sole record
                // of probe traffic — `lookup_stats` derives its engine-wide
                // totals from it — so the hot path pays one fetch_add per
                // probed run either way, never two sets of counters.
                match tel {
                    Some(t) => {
                        if look.probed_filter {
                            if !look.filter_negative && look.page_read && look.entry.is_none() {
                                t.record_false_positive(li + 1);
                            }
                            t.record_filter_probe(li + 1, look.filter_negative);
                        }
                        if look.page_read {
                            t.record_lookup_read(li + 1);
                        }
                    }
                    None if look.probed_filter => {
                        core.lookups.filter_probes.fetch_add(1, Relaxed);
                        if look.filter_negative {
                            core.lookups.filter_negatives.fetch_add(1, Relaxed);
                        } else if look.page_read && look.entry.is_none() {
                            // The filter said "maybe", the page said no: a
                            // true false positive, one wasted I/O.
                            core.lookups.filter_false_positives.fetch_add(1, Relaxed);
                        }
                    }
                    None => {}
                }
                if let Some(entry) = look.entry {
                    return core.resolve_value(&entry);
                }
            }
        }
        Ok(None)
    }

    /// Counters of the point-lookup fast path since open. With telemetry
    /// on, the engine-wide totals are the sums of the per-level telemetry
    /// table (the hot path writes only there); otherwise they come from
    /// the engine's own global counters.
    fn lookup_stats(&self) -> LookupStats {
        let l = &self.lookups;
        let key_hashes = l.key_hashes.load(Relaxed);
        match self.telemetry.as_deref() {
            Some(t) => {
                let levels = t.level_lookups();
                LookupStats {
                    key_hashes,
                    filter_probes: levels.iter().map(|s| s.filter_probes).sum(),
                    filter_negatives: levels.iter().map(|s| s.filter_negatives).sum(),
                    filter_false_positives: levels.iter().map(|s| s.filter_false_positives).sum(),
                }
            }
            None => LookupStats {
                key_hashes,
                filter_probes: l.filter_probes.load(Relaxed),
                filter_negatives: l.filter_negatives.load(Relaxed),
                filter_false_positives: l.filter_false_positives.load(Relaxed),
            },
        }
    }

    /// Counters of the write pipeline since open: stall events and time,
    /// deferred worker failures, and WAL group-commit batching.
    fn pipeline_stats(&self) -> PipelineStats {
        let p = &self.pipeline;
        let wal = self.wal.stats();
        PipelineStats {
            stalls: p.stalls.load(Relaxed),
            stall_micros: p.stall_micros.load(Relaxed),
            background_errors: p.background_errors.load(Relaxed),
            wal_group_commits: wal.group_commits,
            wal_batched_appends: wal.batched_appends,
            wal_syncs: wal.syncs,
        }
    }

    /// Instantaneous levels of the write pipeline (see [`PipelineGauges`]
    /// for why these are kept apart from the counters).
    fn pipeline_gauges(&self) -> PipelineGauges {
        PipelineGauges {
            immutable_queue_depth: self.shared.read().immutables.len(),
            stalled_writers: self.pipeline.active_stalls.load(Relaxed) as usize,
        }
    }

    /// Range scan over `[lo, hi)` (`hi = None` scans to the end). The
    /// cursor owns snapshots of the relevant memtables and runs, so
    /// concurrent writes and merges do not disturb it.
    fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<RangeIter> {
        // The cursor's Drop records the whole scan's latency, not just
        // construction — the sample covers every page the scan touched.
        let timer = self
            .telemetry
            .as_ref()
            .map(|t| (Arc::clone(t), t.op_start(OpKind::Range)));
        if let Some(hi) = hi {
            if hi <= lo {
                // Empty (or inverted) interval: nothing to scan.
                return Ok(RangeIter::new(MergingIter::new(Vec::new(), true)?, None)
                    .with_value_log(None)
                    .with_telemetry(timer));
            }
        }
        let core = self;
        let (buffered, immutables, version) = {
            let shared = core.shared.read();
            let immutables: Vec<Arc<Memtable>> = shared
                .immutables
                .iter()
                .map(|imm| Arc::clone(&imm.memtable))
                .collect();
            (
                shared.memtable.range(lo, hi),
                immutables,
                Arc::clone(&shared.version),
            )
        };
        let mut sources: Vec<EntrySource> =
            Vec::with_capacity(1 + immutables.len() + version.run_count());
        sources.push(Box::new(buffered.into_iter().map(Ok)));
        for imm in immutables.iter().rev() {
            sources.push(Box::new(imm.range(lo, hi).into_iter().map(Ok)));
        }
        for level in version.levels() {
            for run in level.runs() {
                sources.push(Box::new(run.iter_from(lo)));
            }
        }
        let hi = hi.map(Bytes::copy_from_slice);
        Ok(RangeIter::new(MergingIter::new(sources, true)?, hi)
            .with_value_log(core.vlog.clone())
            .with_telemetry(timer))
    }

    /// Forces the buffer to flush into the tree even if not full, then
    /// drains the whole immutable queue on the calling thread. After this
    /// returns, the pipeline is quiesced: `stats()`/`verify()` see a
    /// settled tree.
    fn flush(&self) -> Result<()> {
        let core = self;
        core.check_background_error()?;
        {
            let mut shared = core.shared.write();
            core.rotate_locked(&mut shared)?;
        }
        core.drain_queue()
    }

    /// Stops the background worker from flushing (testing hook, the
    /// analogue of RocksDB's `DisableAutoCompactions`). Foreground drains
    /// (`flush`, synchronous-mode rotation) are unaffected. With the
    /// worker paused, rotations accumulate in the immutable queue until
    /// backpressure stalls puts.
    fn pause_compaction(&self) {
        self.signals
            .control
            .lock()
            .expect("control poisoned")
            .paused = true;
    }

    /// Resumes background flushing after [`pause_compaction`](Self::pause_compaction).
    fn resume_compaction(&self) {
        {
            let mut ctl = self.signals.control.lock().expect("control poisoned");
            ctl.paused = false;
        }
        self.signals.work_cv.notify_all();
    }

    /// Quiesces the pipeline without consuming the handle: drains queued
    /// immutable memtables, writes out any buffered WAL records, and
    /// propagates a deferred background error. The active memtable is NOT
    /// flushed — its entries are durable in the WAL (drop does the same).
    fn close(&self) -> Result<()> {
        self.check_background_error()?;
        self.drain_queue()?;
        self.wal.flush_pending()
    }

    /// Rebuilds every run's Bloom filter according to the *current* filter
    /// policy and tree shape, by rescanning the runs. Used when a policy's
    /// ideal allocation drifts from what runs were built with (runs fix
    /// their filters at build time, but the optimal assignment shifts as
    /// the tree gains levels and runs). The scan is counted I/O;
    /// experiments reset counters afterwards.
    fn rebuild_filters(&self) -> Result<()> {
        let core = self;
        let _cascade = core.compaction_lock.lock();
        let (base, extra_entries) = {
            let shared = core.shared.read();
            let extra = shared.memtable.len() as u64
                + shared.immutables.iter().map(|i| i.entries).sum::<u64>();
            (Arc::clone(&shared.version), extra)
        };
        let mut working = (*base).clone();
        let num_levels = working.deepest();
        // Snapshot of every run's position and size.
        let all: Vec<(usize, usize, u64)> = working
            .levels()
            .iter()
            .enumerate()
            .flat_map(|(li, level)| {
                level
                    .runs()
                    .iter()
                    .enumerate()
                    .map(move |(ri, run)| (li, ri, run.entries()))
            })
            .collect();
        let total: u64 = all.iter().map(|x| x.2).sum::<u64>() + extra_entries;
        for &(li, ri, entries) in &all {
            let others: Vec<u64> = all
                .iter()
                .filter(|&&(lj, rj, _)| (lj, rj) != (li, ri))
                .map(|x| x.2)
                .collect();
            let ctx = FilterContext {
                level: li + 1,
                num_levels,
                run_entries: entries,
                total_entries: total,
                other_run_entries: others,
                size_ratio: core.opts.size_ratio,
                merge_policy: core.opts.merge_policy,
            };
            let bits = core.opts.filter_policy.bits_per_entry(&ctx);
            let current = Arc::clone(&working.levels()[li].runs()[ri]);
            let allocation_drifted = (bits - current.filter_bits_per_entry()).abs() > 1e-9;
            let variant_changed = current.filter_variant() != core.opts.filter_variant;
            if allocation_drifted || variant_changed {
                let params = FilterParams::new(bits, core.opts.filter_variant);
                let rebuilt = Arc::new(recover_run(&core.disk, current.id(), params)?);
                working.levels_mut()[li].replace_run(ri, rebuilt);
            }
        }
        let new_version = Arc::new(working);
        let next_seq;
        {
            let mut shared = core.shared.write();
            shared.version = Arc::clone(&new_version);
            next_seq = shared.next_seq;
        }
        core.retag_attribution(&new_version);
        core.persist_manifest(&new_version, next_seq)?;
        Ok(())
    }

    /// Maintenance-work counters since open.
    fn compaction_stats(&self) -> CompactionStats {
        let c = &self.compactions;
        CompactionStats {
            flushes: c.flushes.load(Relaxed),
            merges: c.merges.load(Relaxed),
            entries_rewritten: c.entries_rewritten.load(Relaxed),
            last_merge_partitions: c.last_merge_partitions.load(Relaxed),
            last_merge_threads: c.last_merge_threads.load(Relaxed),
        }
    }

    /// Deep integrity check: reads every page of every run (counted I/O)
    /// and verifies
    ///
    /// * page checksums and decodability,
    /// * strict key ordering within and across pages,
    /// * agreement between a run's metadata (entry count, byte size, key
    ///   bounds) and its pages,
    /// * that the Bloom filter has no false negatives,
    /// * that every value-log pointer resolves (checksummed page, valid
    ///   slot),
    /// * the youngest-first sequence ordering of runs within a level.
    ///
    /// Returns the number of entries verified.
    fn verify(&self) -> Result<u64> {
        let version = Arc::clone(&self.shared.read().version);
        let mut verified = 0u64;
        for (idx, level) in version.levels().iter().enumerate() {
            for run in level.runs() {
                let mut count = 0u64;
                let mut bytes = 0u64;
                let mut prev: Option<bytes::Bytes> = None;
                for item in run.iter() {
                    let entry = item?; // checksum + decode verified here
                    if let Some(prev) = &prev {
                        if entry.key <= *prev {
                            return Err(LsmError::Corruption(format!(
                                "run {} at level {}: keys out of order",
                                run.id(),
                                idx + 1
                            )));
                        }
                    }
                    if !run.filter().contains(&entry.key) {
                        return Err(LsmError::Corruption(format!(
                            "run {} at level {}: filter false negative",
                            run.id(),
                            idx + 1
                        )));
                    }
                    if entry.kind == EntryKind::IndirectPut {
                        // Dangling or corrupt value-log pointers surface here.
                        self.resolve_value(&entry)?;
                    }
                    count += 1;
                    bytes += entry.encoded_len() as u64;
                    prev = Some(entry.key);
                }
                if count != run.entries() || bytes != run.bytes() {
                    return Err(LsmError::Corruption(format!(
                        "run {} at level {}: metadata mismatch ({} entries / {} bytes vs {} / {})",
                        run.id(),
                        idx + 1,
                        count,
                        bytes,
                        run.entries(),
                        run.bytes()
                    )));
                }
                if let Some(last) = prev {
                    if last != *run.max_key() {
                        return Err(LsmError::Corruption(format!(
                            "run {} at level {}: max key mismatch",
                            run.id(),
                            idx + 1
                        )));
                    }
                }
                verified += count;
            }
        }
        Ok(verified)
    }

    /// Structural and memory statistics.
    fn stats(&self) -> DbStats {
        let core = self;
        let (buffer_entries, buffer_bytes, immutable_entries, queue_depth, version) = {
            let shared = core.shared.read();
            (
                shared.memtable.len() as u64,
                shared.memtable.bytes() as u64,
                shared.immutables.iter().map(|i| i.entries).sum::<u64>(),
                shared.immutables.len(),
                Arc::clone(&shared.version),
            )
        };
        let mut levels = Vec::with_capacity(version.depth());
        let mut filter_bits = 0u64;
        let mut fence_bits = 0u64;
        let mut fpr_total = 0.0f64;
        for (idx, level) in version.levels().iter().enumerate() {
            let mut level_filter_bits = 0u64;
            let mut fpr_sum = 0.0f64;
            for run in level.runs() {
                level_filter_bits += run.filter().memory_bits() as u64;
                fence_bits += run.fence_memory_bits();
                fpr_sum += run.filter().theoretical_fpr();
            }
            filter_bits += level_filter_bits;
            fpr_total += fpr_sum;
            levels.push(LevelStats {
                level: idx + 1,
                runs: level.run_count(),
                entries: level.entries(),
                bytes: level.bytes(),
                capacity_bytes: level_capacity_bytes(
                    core.opts.buffer_capacity,
                    core.opts.size_ratio,
                    idx + 1,
                ),
                filter_bits: level_filter_bits,
                fpr_sum,
            });
        }
        let p = &core.pipeline;
        let wal = core.wal.stats();
        DbStats {
            buffer_entries,
            buffer_bytes,
            buffer_capacity: core.opts.buffer_capacity as u64,
            disk_entries: version.disk_entries(),
            runs: version.run_count(),
            levels,
            filter_bits,
            fence_bits,
            expected_zero_result_lookup_ios: fpr_total,
            lookups: self.lookup_stats(),
            immutable_entries,
            pipeline: PipelineStats {
                stalls: p.stalls.load(Relaxed),
                stall_micros: p.stall_micros.load(Relaxed),
                background_errors: p.background_errors.load(Relaxed),
                wal_group_commits: wal.group_commits,
                wal_batched_appends: wal.batched_appends,
                wal_syncs: wal.syncs,
            },
            pipeline_gauges: PipelineGauges {
                immutable_queue_depth: queue_depth,
                stalled_writers: p.active_stalls.load(Relaxed) as usize,
            },
        }
    }

    /// Assembles the full telemetry snapshot: per-op latency percentiles,
    /// per-level I/O attribution and measured-vs-allocated filter FPRs
    /// (with drift flags), the model's expected zero-result lookup cost
    /// next to the measured one, and the drained event timeline.
    ///
    /// Returns `None` unless the database was opened with
    /// [`DbOptions::telemetry`]. Draining the events is destructive: each
    /// event appears in exactly one report.
    fn telemetry_report(&self) -> Option<TelemetryReport> {
        let t = self.telemetry.as_ref()?;
        let stats = self.stats();
        let level_lookups = t.level_lookups();
        let io = t.attribution().snapshot();
        let ops = OP_KINDS
            .iter()
            .map(|&k| OpLatencyReport::from_snapshot(k.name(), t.op_count(k), &t.hist(k)))
            .collect();
        let levels = stats
            .levels
            .iter()
            .map(|l| {
                let slot = l.level.min(MAX_LEVELS);
                let lookups = level_lookups[slot];
                // The mean of the level's per-run FPRs is the expected
                // false positives per *negative* probe — the comparable
                // quantity to the measured negative-query rate.
                let allocated_fpr = if l.runs > 0 {
                    l.fpr_sum / l.runs as f64
                } else {
                    0.0
                };
                let measured_fpr = lookups.measured_fpr();
                // A level whose runs merged away keeps its probe history
                // but has no allocation left to drift from.
                let drift = if l.runs > 0 {
                    drift_flag(measured_fpr, allocated_fpr, lookups.negative_trials())
                } else {
                    None
                };
                LevelReport {
                    level: l.level,
                    runs: l.runs,
                    entries: l.entries,
                    io: io[slot],
                    allocated_fpr,
                    measured_fpr,
                    drift,
                    lookups,
                }
            })
            .collect();
        // Backend-op latency rows, ops with no backend calls omitted.
        let lat = t.io_latency();
        let io_lat = IO_OPS
            .iter()
            .filter(|&&op| lat.op_count(op) > 0)
            .map(|&op| {
                IoLatencyReport::from_level_hists(op.name(), lat.op_count(op), &lat.snapshot(op))
            })
            .collect();
        Some(TelemetryReport {
            uptime_micros: t.now_micros(),
            ops,
            levels,
            unattributed_io: io[0],
            io: io_lat,
            expected_zero_result_lookup_ios: stats.expected_zero_result_lookup_ios,
            measured_zero_result_lookup_ios: stats.lookups.measured_zero_result_lookup_ios(),
            lookups: stats.lookups.key_hashes,
            immutable_queue_depth: stats.pipeline_gauges.immutable_queue_depth as u64,
            stalled_writers: stats.pipeline_gauges.stalled_writers as u64,
            last_merge_partitions: self.compactions.last_merge_partitions.load(Relaxed),
            last_merge_threads: self.compactions.last_merge_threads.load(Relaxed),
            events: t.drain_events(),
            events_dropped: t.events_dropped(),
            shards: Vec::new(),
            spans: self
                .tracer
                .as_ref()
                .map_or_else(Vec::new, |tr| tr.drain_spans()),
            spans_started: self.tracer.as_ref().map_or(0, |tr| tr.spans_started()),
            spans_dropped: self.tracer.as_ref().map_or(0, |tr| tr.spans_dropped()),
            recorder_bytes: self.tracer.as_ref().map_or(0, |tr| tr.recorder_bytes()),
            io_backend: Some(io_backend_report(self.disk.backend_info())),
        })
    }
}

/// Renders the storage layer's backend identity for telemetry reports.
fn io_backend_report(info: &BackendInfo) -> IoBackendReport {
    IoBackendReport {
        requested: info.requested.name().to_string(),
        kind: info.kind.to_string(),
        align: info.align as u64,
        fallback: info.fallback.clone(),
    }
}

/// Seed of the shard router's key hash. Fixed forever: which shard a key
/// lives on — and therefore the on-disk layout of every multi-shard store
/// — depends on it.
const SHARD_SEED: u64 = 0x4d4f_4e4b_4559_2153;

/// Meta file at a multi-shard store's root recording its shard count. A
/// single-shard store writes no meta and keeps the pre-shard layout, so
/// stores created before sharding existed open unchanged — and so the
/// single-shard disk image stays byte-identical.
const SHARDS_META: &str = "SHARDS";

impl Db {
    /// Opens a database.
    ///
    /// With [`DbOptions::shards`] > 1 the keyspace is hash-partitioned
    /// into that many independent engines, each rooted in its own
    /// `shard-NNN` subdirectory with `ceil(1/N)` of the global memory
    /// budgets (§4.4: buffer, stall threshold, and block cache are
    /// *divided*, never replicated). The shard count of a durable store is
    /// fixed at creation (recorded in a `SHARDS` meta file) and reopening
    /// honors what is on disk, whatever the new options request — use
    /// [`migrate_to`](Self::migrate_to) to re-shard.
    pub fn open(opts: DbOptions) -> Result<Arc<Self>> {
        let n = Self::resolve_shards(&opts)?;
        // One fsync coordinator spans every shard's WAL, so concurrent
        // group commits collapse into shared sync epochs (the batching is
        // an optimization over *when* fsyncs run, never whether — each
        // commit still returns only after its bytes are synced).
        let sync_coord = (opts.wal_fsync_batching
            && opts.wal_sync_each_append
            && matches!(opts.storage, StorageConfig::Directory(_)))
        .then(WalSyncCoordinator::new);
        let mut shards = Vec::with_capacity(n);
        for index in 0..n {
            shards.push(Shard::open(
                Self::shard_options(&opts, index, n),
                sync_coord.clone(),
            )?);
        }
        let db = Arc::new(Db {
            opts,
            obs_server: OnceLock::new(),
            advice_provider: OnceLock::new(),
            sync_coord,
            shards,
        });
        db.bind_obs_server()?;
        Ok(db)
    }

    /// Opens a volatile database over a caller-supplied [`Disk`] — used by
    /// tests and simulations that need a custom backend (fault injection,
    /// slow devices, bespoke caches). No WAL or manifest is attached, and
    /// the store always runs single-shard: one externally-owned disk
    /// cannot be partitioned.
    pub fn open_with_disk(opts: DbOptions, disk: Arc<Disk>) -> Result<Arc<Self>> {
        let mut opts = opts;
        opts.shards = 1;
        let shard = Shard::open_with_disk(opts.clone(), disk)?;
        let db = Arc::new(Db {
            opts,
            obs_server: OnceLock::new(),
            advice_provider: OnceLock::new(),
            sync_coord: None,
            shards: vec![shard],
        });
        db.bind_obs_server()?;
        Ok(db)
    }

    /// How many shards a store actually runs. The `SHARDS` meta of an
    /// existing multi-shard store wins; an existing store *without* one is
    /// single-shard whatever was requested (its layout is already on
    /// disk); a fresh directory honors the request and records it.
    fn resolve_shards(opts: &DbOptions) -> Result<usize> {
        let requested = opts.shards.max(1);
        let StorageConfig::Directory(root) = &opts.storage else {
            return Ok(requested);
        };
        let meta = root.join(SHARDS_META);
        match std::fs::read_to_string(&meta) {
            Ok(text) => text
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 2)
                .ok_or_else(|| {
                    LsmError::Corruption(format!("malformed {SHARDS_META} meta: {:?}", text.trim()))
                }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let occupied = match std::fs::read_dir(root) {
                    Ok(mut entries) => entries.next().is_some(),
                    Err(_) => false,
                };
                if occupied {
                    return Ok(1);
                }
                if requested > 1 {
                    std::fs::create_dir_all(root)?;
                    std::fs::write(&meta, format!("{requested}\n"))?;
                }
                Ok(requested)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The configuration one shard runs under: the global memory budgets
    /// split `ceil(total / N)` with a one-page floor, and storage rooted
    /// in the shard's own subdirectory. A single-shard store passes the
    /// options through untouched (bit-identity with the pre-shard engine).
    fn shard_options(opts: &DbOptions, index: usize, n: usize) -> DbOptions {
        let mut shard = opts.clone();
        shard.shards = 1;
        shard.shard_index = index as u32;
        // The scrape endpoint belongs to the facade, never to a shard.
        shard.obs_listen = None;
        if n == 1 {
            return shard;
        }
        let split = |total: usize| total.div_ceil(n).max(opts.page_size);
        shard.buffer_capacity = split(opts.buffer_capacity);
        shard.stall_threshold = opts.stall_threshold.map(split);
        shard.storage = match &opts.storage {
            StorageConfig::Memory => StorageConfig::Memory,
            StorageConfig::MemoryCached(bytes) => StorageConfig::MemoryCached(split(*bytes)),
            StorageConfig::Directory(root) => {
                StorageConfig::Directory(root.join(format!("shard-{index:03}")))
            }
        };
        shard
    }

    /// The shard that owns `key`. Single-shard stores skip the hash
    /// entirely — the route is free on the pre-shard code path.
    fn shard_for(&self, key: &[u8]) -> &Core {
        match self.shards.len() {
            1 => &self.shards[0].core,
            n => {
                &self.shards[(monkey_bloom::hash::xxh64(key, SHARD_SEED) % n as u64) as usize].core
            }
        }
    }

    fn cores(&self) -> impl Iterator<Item = &Core> {
        self.shards.iter().map(|s| &*s.core)
    }

    /// The configuration this database was opened with — facade-level:
    /// budgets are the undivided totals, `shards` the requested count.
    pub fn options(&self) -> &DbOptions {
        &self.opts
    }

    /// The underlying counted storage (for I/O measurements). On a
    /// multi-shard store this is shard 0's disk; use [`io`](Self::io) for
    /// store-wide counters.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.shards[0].core.disk
    }

    /// I/O counters since open or the last reset, summed across shards.
    pub fn io(&self) -> IoSnapshot {
        let mut total = IoSnapshot::default();
        for core in self.cores() {
            let io = core.disk.io();
            total.page_reads += io.page_reads;
            total.page_writes += io.page_writes;
            total.seeks += io.seeks;
            total.cache_hits += io.cache_hits;
        }
        total
    }

    /// Resets the I/O counters of every shard.
    pub fn reset_io(&self) {
        for core in self.cores() {
            core.disk.reset_io();
        }
    }

    /// Inserts or updates a key (routed to the shard that owns it).
    ///
    /// With key-value separation enabled, values at or above the threshold
    /// go to the value log and the tree stores a pointer; the WAL always
    /// records the full value, so durability does not depend on log-page
    /// flush timing.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.shard_for(&key).put(key, value.into())
    }

    /// Deletes a key (writes a tombstone on the owning shard). Counted as
    /// a put in telemetry: a tombstone write takes the identical path.
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.shard_for(&key).delete(key)
    }

    /// Point lookup, routed to the one shard that owns the key — other
    /// shards are never probed, so per-lookup cost does not grow with the
    /// shard count.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.shard_for(key).get(key)
    }

    /// Range scan over `[lo, hi)` (`hi = None` scans to the end). The
    /// cursor owns snapshots of the relevant memtables and runs, so
    /// concurrent writes and merges do not disturb it. On a multi-shard
    /// store the scan fans out to every shard and merges the (disjoint)
    /// per-shard cursors back into one key-ordered stream.
    pub fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<RangeIter> {
        if self.shards.len() == 1 {
            return self.shards[0].core.range(lo, hi);
        }
        let mut children = Vec::with_capacity(self.shards.len());
        for core in self.cores() {
            children.push(core.range(lo, hi)?);
        }
        RangeIter::fanout(children)
    }

    /// Forces every shard's buffer to flush into its tree even if not
    /// full, then drains the immutable queues on the calling thread. After
    /// this returns, the pipeline is quiesced: `stats()`/`verify()` see a
    /// settled tree.
    pub fn flush(&self) -> Result<()> {
        for core in self.cores() {
            core.flush()?;
        }
        Ok(())
    }

    /// Deterministic escape hatch for model-vs-engine comparisons: flush
    /// and run every resulting merge cascade to completion on the calling
    /// thread, regardless of `background_compaction`.
    pub fn compact_blocking(&self) -> Result<()> {
        self.flush()
    }

    /// Stops the background workers from flushing (testing hook, the
    /// analogue of RocksDB's `DisableAutoCompactions`). Foreground drains
    /// (`flush`, synchronous-mode rotation) are unaffected. With the
    /// workers paused, rotations accumulate in the immutable queues until
    /// backpressure stalls puts.
    pub fn pause_compaction(&self) {
        for core in self.cores() {
            core.pause_compaction();
        }
    }

    /// Resumes background flushing after [`pause_compaction`](Self::pause_compaction).
    pub fn resume_compaction(&self) {
        for core in self.cores() {
            core.resume_compaction();
        }
    }

    /// Quiesces the pipeline without consuming the handle: drains queued
    /// immutable memtables, writes out any buffered WAL records, and
    /// propagates a deferred background error. The active memtables are
    /// NOT flushed — their entries are durable in the WAL (drop does the
    /// same).
    pub fn close(&self) -> Result<()> {
        for core in self.cores() {
            core.close()?;
        }
        Ok(())
    }

    /// Rebuilds every run's Bloom filter according to the *current* filter
    /// policy and tree shape, by rescanning the runs — on every shard.
    /// Used when a policy's ideal allocation drifts from what runs were
    /// built with. The scan is counted I/O; experiments reset counters
    /// afterwards.
    pub fn rebuild_filters(&self) -> Result<()> {
        for core in self.cores() {
            core.rebuild_filters()?;
        }
        Ok(())
    }

    /// Self-tuning re-shape ("migrate the store from one tuning setting to
    /// another"). Opens a fresh database under `new_opts`, streams every
    /// live entry into it (tombstones and superseded versions are left
    /// behind), and returns the new store. Also the re-*sharding* path:
    /// the target may run any shard count.
    ///
    /// The source is read through a snapshot cursor, so it stays readable
    /// during the migration; writes applied to the source after the
    /// snapshot is taken are *not* carried over — quiesce writes first or
    /// diff afterwards. The transformation cost is observable by diffing
    /// [`io`](Self::io) on both stores around the call.
    pub fn migrate_to(&self, new_opts: DbOptions) -> Result<Arc<Db>> {
        let target = Db::open(new_opts)?;
        for kv in self.range(b"", None)? {
            let (key, value) = kv?;
            target.put(key, value)?;
        }
        target.flush()?;
        Ok(target)
    }

    /// Counters of the point-lookup fast path since open, summed across
    /// shards.
    pub fn lookup_stats(&self) -> LookupStats {
        let mut total = LookupStats::default();
        for core in self.cores() {
            let s = core.lookup_stats();
            total.key_hashes += s.key_hashes;
            total.filter_probes += s.filter_probes;
            total.filter_negatives += s.filter_negatives;
            total.filter_false_positives += s.filter_false_positives;
        }
        total
    }

    /// Counters of the write pipeline since open, summed across shards.
    pub fn pipeline_stats(&self) -> PipelineStats {
        let mut total = PipelineStats::default();
        for core in self.cores() {
            let s = core.pipeline_stats();
            total.stalls += s.stalls;
            total.stall_micros += s.stall_micros;
            total.background_errors += s.background_errors;
            total.wal_group_commits += s.wal_group_commits;
            total.wal_batched_appends += s.wal_batched_appends;
            total.wal_syncs += s.wal_syncs;
        }
        total
    }

    /// Global WAL fsync-coalescing counters (tickets issued vs. physical
    /// syncs performed), when fsync batching is active on this store.
    /// `syncs / tickets` is the store-wide syncs-per-commit ratio; under
    /// concurrent writers it drops below 1.
    pub fn wal_sync_stats(&self) -> Option<SyncStats> {
        self.sync_coord.as_ref().map(|c| c.stats())
    }

    /// Which disk backend this store is running on: the requested kind,
    /// the active kind after the runtime fallback ladder, and the
    /// discovered alignment.
    pub fn io_backend_info(&self) -> BackendInfo {
        self.shards[0].core.disk.backend_info().clone()
    }

    /// Instantaneous levels of the write pipeline, summed across shards.
    pub fn pipeline_gauges(&self) -> PipelineGauges {
        let mut total = PipelineGauges::default();
        for core in self.cores() {
            let g = core.pipeline_gauges();
            total.immutable_queue_depth += g.immutable_queue_depth;
            total.stalled_writers += g.stalled_writers;
        }
        total
    }

    /// Maintenance-work counters since open, summed across shards (the
    /// `last_merge_*` gauges report the widest merge any shard ran).
    pub fn compaction_stats(&self) -> CompactionStats {
        let mut total = CompactionStats::default();
        for core in self.cores() {
            let s = core.compaction_stats();
            total.flushes += s.flushes;
            total.merges += s.merges;
            total.entries_rewritten += s.entries_rewritten;
            total.last_merge_partitions = total.last_merge_partitions.max(s.last_merge_partitions);
            total.last_merge_threads = total.last_merge_threads.max(s.last_merge_threads);
        }
        total
    }

    /// Deep integrity check of every shard: reads every page of every run
    /// (counted I/O) and verifies checksums, key ordering, metadata
    /// agreement, filter completeness, and value-log pointers. Returns the
    /// number of entries verified across all shards.
    pub fn verify(&self) -> Result<u64> {
        let mut verified = 0;
        for core in self.cores() {
            verified += core.verify()?;
        }
        Ok(verified)
    }

    /// Structural and memory statistics. On a multi-shard store the
    /// shards' snapshots are merged: entries, bytes, memory footprints,
    /// and pipeline counters sum; `expected_zero_result_lookup_ios` is the
    /// *mean* across shards (a point lookup probes exactly one shard, so
    /// per-level `fpr_sum` contributions are averaged likewise).
    pub fn stats(&self) -> DbStats {
        if self.shards.len() == 1 {
            return self.shards[0].core.stats();
        }
        let per: Vec<DbStats> = self.cores().map(|c| c.stats()).collect();
        let n = per.len() as f64;
        let mut levels: Vec<LevelStats> = Vec::new();
        for s in &per {
            for l in &s.levels {
                while levels.len() < l.level {
                    levels.push(LevelStats {
                        level: levels.len() + 1,
                        runs: 0,
                        entries: 0,
                        bytes: 0,
                        capacity_bytes: 0,
                        filter_bits: 0,
                        fpr_sum: 0.0,
                    });
                }
                let slot = &mut levels[l.level - 1];
                slot.runs += l.runs;
                slot.entries += l.entries;
                slot.bytes += l.bytes;
                slot.capacity_bytes += l.capacity_bytes;
                slot.filter_bits += l.filter_bits;
                slot.fpr_sum += l.fpr_sum;
            }
        }
        for l in &mut levels {
            l.fpr_sum /= n;
        }
        let mut total = DbStats {
            levels,
            ..DbStats::default()
        };
        for s in &per {
            total.buffer_entries += s.buffer_entries;
            total.buffer_bytes += s.buffer_bytes;
            total.buffer_capacity += s.buffer_capacity;
            total.disk_entries += s.disk_entries;
            total.runs += s.runs;
            total.filter_bits += s.filter_bits;
            total.fence_bits += s.fence_bits;
            total.expected_zero_result_lookup_ios += s.expected_zero_result_lookup_ios;
            total.lookups.key_hashes += s.lookups.key_hashes;
            total.lookups.filter_probes += s.lookups.filter_probes;
            total.lookups.filter_negatives += s.lookups.filter_negatives;
            total.lookups.filter_false_positives += s.lookups.filter_false_positives;
            total.immutable_entries += s.immutable_entries;
            total.pipeline.stalls += s.pipeline.stalls;
            total.pipeline.stall_micros += s.pipeline.stall_micros;
            total.pipeline.background_errors += s.pipeline.background_errors;
            total.pipeline.wal_group_commits += s.pipeline.wal_group_commits;
            total.pipeline.wal_batched_appends += s.pipeline.wal_batched_appends;
            total.pipeline.wal_syncs += s.pipeline.wal_syncs;
            total.pipeline_gauges.immutable_queue_depth += s.pipeline_gauges.immutable_queue_depth;
            total.pipeline_gauges.stalled_writers += s.pipeline_gauges.stalled_writers;
        }
        total.expected_zero_result_lookup_ios /= n;
        total
    }

    /// The telemetry hub, when [`DbOptions::telemetry`] is on — for
    /// callers that want raw histograms/events rather than the assembled
    /// report.
    ///
    /// **Facade behavior:** on a multi-shard store this is *shard 0's*
    /// hub only — its counters and events cover that shard's slice of the
    /// keyspace, not the whole store. Use
    /// [`shard_telemetry`](Self::shard_telemetry) to reach a specific
    /// shard's hub, or [`telemetry_report`](Self::telemetry_report) for
    /// the merged store-wide view.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.shard_telemetry(0)
    }

    /// Shard `index`'s telemetry hub, when [`DbOptions::telemetry`] is on.
    /// Returns `None` when telemetry is off **or** `index` is out of
    /// range (see [`DbOptions::shards`]). Events drained from one shard's
    /// hub never appear in another's, so per-shard consumers compose with
    /// the merged [`telemetry_report`](Self::telemetry_report) only if
    /// each event source is drained by exactly one of them.
    pub fn shard_telemetry(&self, index: usize) -> Option<&Arc<Telemetry>> {
        self.shards.get(index)?.core.telemetry.as_ref()
    }

    /// Assembles the full telemetry snapshot: per-op latency percentiles,
    /// per-level I/O attribution and measured-vs-allocated filter FPRs
    /// (with drift flags), the model's expected zero-result lookup cost
    /// next to the measured one, and the drained event timeline. On a
    /// multi-shard store the shards' histograms, per-level tables, and
    /// event streams are merged, and [`TelemetryReport::shards`] carries a
    /// per-shard breakdown (it stays empty on a single-shard store, whose
    /// report and renderings are unchanged).
    ///
    /// Returns `None` unless the database was opened with
    /// [`DbOptions::telemetry`]. Draining the events is destructive: each
    /// event appears in exactly one report.
    pub fn telemetry_report(&self) -> Option<TelemetryReport> {
        if self.shards.len() == 1 {
            return self.shards[0].core.telemetry_report();
        }
        let hubs: Vec<&Arc<Telemetry>> = self
            .cores()
            .map(|c| c.telemetry.as_ref())
            .collect::<Option<Vec<_>>>()?;
        let per_stats: Vec<DbStats> = self.cores().map(|c| c.stats()).collect();
        let n = hubs.len();

        let ops = OP_KINDS
            .iter()
            .map(|&k| {
                let mut hist = hubs[0].hist(k);
                for hub in &hubs[1..] {
                    hist.merge(&hub.hist(k));
                }
                let count = hubs.iter().map(|h| h.op_count(k)).sum();
                OpLatencyReport::from_snapshot(k.name(), count, &hist)
            })
            .collect();

        let mut level_lookups = hubs[0].level_lookups();
        let mut io = hubs[0].attribution().snapshot();
        for hub in &hubs[1..] {
            for (slot, other) in level_lookups.iter_mut().zip(hub.level_lookups()) {
                slot.merge(&other);
            }
            for (slot, other) in io.iter_mut().zip(hub.attribution().snapshot()) {
                slot.merge(&other);
            }
        }

        // Per-level aggregates from raw per-shard sums: `allocated_fpr` is
        // the mean per-run FPR across *all* shards' runs at the level —
        // the comparable quantity to the merged measured rate, since each
        // negative probe lands on exactly one shard's runs.
        let deepest = per_stats.iter().map(|s| s.levels.len()).max().unwrap_or(0);
        let levels = (1..=deepest)
            .map(|level| {
                let (mut runs, mut entries, mut fpr_sum) = (0usize, 0u64, 0.0f64);
                for s in &per_stats {
                    if let Some(l) = s.levels.get(level - 1) {
                        runs += l.runs;
                        entries += l.entries;
                        fpr_sum += l.fpr_sum;
                    }
                }
                let slot = level.min(MAX_LEVELS);
                let lookups = level_lookups[slot];
                let allocated_fpr = if runs > 0 { fpr_sum / runs as f64 } else { 0.0 };
                let measured_fpr = lookups.measured_fpr();
                let drift = if runs > 0 {
                    drift_flag(measured_fpr, allocated_fpr, lookups.negative_trials())
                } else {
                    None
                };
                LevelReport {
                    level,
                    runs,
                    entries,
                    io: io[slot],
                    allocated_fpr,
                    measured_fpr,
                    drift,
                    lookups,
                }
            })
            .collect();

        let merged_lookups = self.lookup_stats();
        let gauges = self.pipeline_gauges();
        let compactions = self.compaction_stats();
        let shards = self
            .cores()
            .zip(hubs.iter())
            .zip(per_stats.iter())
            .enumerate()
            .map(|(index, ((core, hub), stats))| ShardBreakdown {
                shard: index,
                gets: hub.op_count(OpKind::Get),
                puts: hub.op_count(OpKind::Put),
                ranges: hub.op_count(OpKind::Range),
                disk_entries: stats.disk_entries,
                buffer_bytes: stats.buffer_bytes,
                immutable_queue_depth: stats.pipeline_gauges.immutable_queue_depth as u64,
                stalled_writers: stats.pipeline_gauges.stalled_writers as u64,
                page_reads: core.disk.io().page_reads,
                page_writes: core.disk.io().page_writes,
                cache_hits: core.disk.io().cache_hits,
            })
            .collect();

        let mut events: Vec<_> = hubs.iter().flat_map(|h| h.drain_events()).collect();
        events.sort_by_key(|e| (e.ts_micros, e.seq));

        // Merge the shards' span rings into one timeline. Each shard's
        // tracer has its own clock origin, but they were all created at
        // open, so sorting by start keeps the merged view coherent.
        let tracers: Vec<_> = self.cores().filter_map(|c| c.tracer.clone()).collect();
        let mut spans: Vec<_> = tracers.iter().flat_map(|tr| tr.drain_spans()).collect();
        spans.sort_by_key(|s| (s.start_micros, s.shard, s.id));

        // Backend-op latency rows, merged per (op, level) across shards;
        // ops with no backend calls anywhere are omitted.
        let io_lat = IO_OPS
            .iter()
            .filter_map(|&op| {
                let count: u64 = hubs.iter().map(|h| h.io_latency().op_count(op)).sum();
                if count == 0 {
                    return None;
                }
                let mut lat_levels = hubs[0].io_latency().snapshot(op);
                for hub in &hubs[1..] {
                    for (slot, other) in lat_levels.iter_mut().zip(hub.io_latency().snapshot(op)) {
                        slot.merge(&other);
                    }
                }
                Some(IoLatencyReport::from_level_hists(
                    op.name(),
                    count,
                    &lat_levels,
                ))
            })
            .collect();

        Some(TelemetryReport {
            uptime_micros: hubs.iter().map(|h| h.now_micros()).max().unwrap_or(0),
            ops,
            levels,
            unattributed_io: io[0],
            io: io_lat,
            expected_zero_result_lookup_ios: per_stats
                .iter()
                .map(|s| s.expected_zero_result_lookup_ios)
                .sum::<f64>()
                / n as f64,
            measured_zero_result_lookup_ios: merged_lookups.measured_zero_result_lookup_ios(),
            lookups: merged_lookups.key_hashes,
            immutable_queue_depth: gauges.immutable_queue_depth as u64,
            stalled_writers: gauges.stalled_writers as u64,
            last_merge_partitions: compactions.last_merge_partitions,
            last_merge_threads: compactions.last_merge_threads,
            events,
            events_dropped: hubs.iter().map(|h| h.events_dropped()).sum(),
            shards,
            spans,
            spans_started: tracers.iter().map(|tr| tr.spans_started()).sum(),
            spans_dropped: tracers.iter().map(|tr| tr.spans_dropped()).sum(),
            recorder_bytes: tracers.iter().map(|tr| tr.recorder_bytes()).sum(),
            // Every shard opens with the same backend options against the
            // same filesystem, so shard 0 speaks for the store.
            io_backend: self
                .cores()
                .next()
                .map(|c| io_backend_report(c.disk.backend_info())),
        })
    }

    /// Cuts one observatory window deterministically (the testing-friendly
    /// alternative to the sampler thread): snapshots the engine's counters
    /// now and returns the window's rates against the previous snapshot.
    /// The first call establishes the baseline and returns `None`; so does
    /// a database opened without [`DbOptions::telemetry`]. On a
    /// multi-shard store every shard's window is cut and the rates are
    /// summed (store-wide throughput; `write_amp` is weighted by each
    /// shard's update rate).
    pub fn observatory_tick(&self) -> Option<WindowRates> {
        if self.shards.len() == 1 {
            return self.shards[0].core.observatory_tick();
        }
        let windows: Vec<WindowRates> = self.cores().filter_map(|c| c.observatory_tick()).collect();
        let first = windows.first()?;
        let mut merged = WindowRates {
            start_micros: first.start_micros,
            end_micros: first.end_micros,
            span_secs: first.span_secs,
            ops_per_sec: 0.0,
            gets_per_sec: 0.0,
            puts_per_sec: 0.0,
            ranges_per_sec: 0.0,
            bytes_flushed_per_sec: 0.0,
            stall_ratio: 0.0,
            write_amp: 0.0,
            level_io: Vec::new(),
        };
        let mut amp_weight = 0.0;
        for w in &windows {
            merged.start_micros = merged.start_micros.min(w.start_micros);
            merged.end_micros = merged.end_micros.max(w.end_micros);
            merged.span_secs = merged.span_secs.max(w.span_secs);
            merged.ops_per_sec += w.ops_per_sec;
            merged.gets_per_sec += w.gets_per_sec;
            merged.puts_per_sec += w.puts_per_sec;
            merged.ranges_per_sec += w.ranges_per_sec;
            merged.bytes_flushed_per_sec += w.bytes_flushed_per_sec;
            merged.stall_ratio += w.stall_ratio;
            merged.write_amp += w.write_amp * w.puts_per_sec;
            amp_weight += w.puts_per_sec;
            if merged.level_io.len() < w.level_io.len() {
                merged.level_io.resize(w.level_io.len(), Default::default());
            }
            for (slot, rates) in merged.level_io.iter_mut().zip(&w.level_io) {
                slot.reads_per_sec += rates.reads_per_sec;
                slot.writes_per_sec += rates.writes_per_sec;
                slot.read_bytes_per_sec += rates.read_bytes_per_sec;
                slot.write_bytes_per_sec += rates.write_bytes_per_sec;
            }
        }
        merged.write_amp = if amp_weight > 0.0 {
            merged.write_amp / amp_weight
        } else {
            0.0
        };
        Some(merged)
    }

    /// The windowed time series behind the observatory, when telemetry is
    /// on: closed windows, eviction count, and EWMA-smoothed rates. On a
    /// multi-shard store this is shard 0's series; the merged per-window
    /// view comes from [`observatory_tick`](Self::observatory_tick).
    pub fn observatory(&self) -> Option<&Arc<WindowedSeries>> {
        self.shards[0].core.series.as_ref()
    }

    /// The workload measured so far — op counts classified into the
    /// paper's taxonomy `(r, v, q, w)` plus key-skew sketches — when
    /// telemetry is on. Multi-shard stores merge the per-shard
    /// measurements (the router partitions the keyspace, so each hot key
    /// is counted by exactly one shard).
    pub fn measured_workload(&self) -> Option<MeasuredWorkload> {
        let mut merged: Option<MeasuredWorkload> = None;
        for core in self.cores() {
            let m = core.telemetry.as_ref()?.measured_workload();
            match &mut merged {
                Some(acc) => acc.merge(&m),
                None => merged = Some(m),
            }
        }
        merged
    }

    /// Binds the embedded scrape endpoint when the options ask for one.
    /// The handler holds only a `Weak<Db>`: the server never keeps the
    /// store alive, and a request racing teardown gets a 503 instead of a
    /// read from a half-dropped engine.
    fn bind_obs_server(self: &Arc<Self>) -> Result<()> {
        let Some(addr) = self.opts.obs_listen.as_deref() else {
            return Ok(());
        };
        let weak = Arc::downgrade(self);
        let handler: HttpHandler = Arc::new(move |path| Db::serve_obs_route(&weak, path));
        let server = ObsServer::bind(addr, handler)?;
        let _ = self.obs_server.set(server);
        Ok(())
    }

    /// The bound address of the embedded scrape endpoint, when one is
    /// serving. With `obs_listen` port 0 this is where the OS actually
    /// put it.
    pub fn obs_addr(&self) -> Option<std::net::SocketAddr> {
        self.obs_server.get().map(|s| s.local_addr())
    }

    /// Installs the `/advice.json` renderer (first install wins). The
    /// closed-loop advisor lives above this crate, so binaries that have
    /// one inject it here; the body must be a complete JSON document.
    pub fn set_advice_provider(&self, provider: AdviceProvider) {
        let _ = self.advice_provider.set(provider);
    }

    /// The `/advice.json` body: the injected provider's rendering, or the
    /// default — measured workload plus `"advice": null` — when no
    /// advisor is wired up (or telemetry is off and nothing was measured).
    fn advice_json(&self) -> String {
        if let Some(provider) = self.advice_provider.get() {
            return provider(self);
        }
        let mut obj = JsonObject::new().raw("advice", "null");
        if let Some(w) = self.measured_workload() {
            obj = obj.raw("workload", &w.to_json());
        }
        obj.finish()
    }

    /// Routes one scrape-endpoint request. `path` arrives with the query
    /// string already stripped; `None` renders as 404. Report endpoints
    /// *drain* the event/span rings exactly like [`Db::telemetry_report`]
    /// — one scraper should own an endpoint, as with any Prometheus
    /// target.
    fn serve_obs_route(weak: &Weak<Db>, path: &str) -> Option<HttpResponse> {
        let Some(db) = weak.upgrade() else {
            // The store is tearing down; its drop glue will stop this
            // server momentarily.
            return Some(HttpResponse::unavailable("shutting down\n"));
        };
        let report = |render: fn(&TelemetryReport) -> String, content_type: &str| match db
            .telemetry_report()
        {
            Some(r) => HttpResponse::ok(content_type, render(&r)),
            None => HttpResponse::unavailable("telemetry is off\n"),
        };
        match path {
            "/metrics" => Some(report(
                TelemetryReport::to_prometheus,
                "text/plain; version=0.0.4",
            )),
            "/report.json" => Some(report(TelemetryReport::to_json, "application/json")),
            "/spans.json" => Some(report(TelemetryReport::to_chrome_trace, "application/json")),
            "/events.json" => Some(report(TelemetryReport::events_json, "application/json")),
            "/advice.json" => Some(HttpResponse::ok("application/json", db.advice_json())),
            "/healthz" => {
                let errors = db.pipeline_stats().background_errors;
                Some(if errors == 0 {
                    HttpResponse::ok("text/plain", "ok\n".to_string())
                } else {
                    HttpResponse::unavailable(&format!("background errors: {errors}\n"))
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MergePolicy;

    fn small_db(policy: MergePolicy, t: usize) -> Arc<Db> {
        // Pinned single-shard: these tests assert per-level run structure
        // and per-lookup hash counts, which a MONKEY_SHARDS override would
        // split across shards.
        Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(t)
                .merge_policy(policy)
                .uniform_filters(10.0)
                .shards(1),
        )
        .unwrap()
    }

    fn fill(db: &Db, n: usize) {
        fill_range(db, 0, n);
    }

    fn fill_range(db: &Db, start: usize, end: usize) {
        for i in start..end {
            db.put(format!("key{i:06}").into_bytes(), vec![b'v'; 20])
                .unwrap();
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 500);
        for i in (0..500).step_by(17) {
            let got = db.get(format!("key{i:06}").as_bytes()).unwrap();
            assert_eq!(got.unwrap(), Bytes::from(vec![b'v'; 20]), "key{i}");
        }
        assert!(db.get(b"missing").unwrap().is_none());
    }

    #[test]
    fn overwrites_visible_after_merges() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 300);
        db.put(&b"key000007"[..], &b"updated"[..]).unwrap();
        fill_range(&db, 300, 400); // push the update through flushes
        assert_eq!(db.get(b"key000007").unwrap().unwrap().as_ref(), b"updated");
    }

    #[test]
    fn delete_masks_older_versions_across_levels() {
        for policy in [MergePolicy::Leveling, MergePolicy::Tiering] {
            let db = small_db(policy, 3);
            fill(&db, 300);
            db.delete(&b"key000005"[..]).unwrap();
            fill_range(&db, 300, 450); // cycle more merges
            assert_eq!(db.get(b"key000005").unwrap(), None, "{policy:?}");
            assert!(db.get(b"key000006").unwrap().is_some());
        }
    }

    #[test]
    fn leveling_keeps_one_run_per_level() {
        let db = small_db(MergePolicy::Leveling, 3);
        fill(&db, 2000);
        let stats = db.stats();
        for level in &stats.levels {
            assert!(
                level.runs <= 1,
                "level {} has {} runs",
                level.level,
                level.runs
            );
        }
        assert!(stats.depth() >= 2);
    }

    #[test]
    fn tiering_keeps_under_t_runs_per_level() {
        let t = 4;
        let db = small_db(MergePolicy::Tiering, t);
        fill(&db, 2000);
        let stats = db.stats();
        for level in &stats.levels {
            assert!(
                level.runs < t,
                "level {} has {} runs",
                level.level,
                level.runs
            );
        }
        assert!(stats.depth() >= 2);
    }

    #[test]
    fn levels_respect_capacity_after_install() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 3000);
        let stats = db.stats();
        // All levels except possibly the deepest respect their caps.
        for level in &stats.levels[..stats.levels.len() - 1] {
            assert!(
                level.bytes <= level.capacity_bytes,
                "level {} holds {} > cap {}",
                level.level,
                level.bytes,
                level.capacity_bytes
            );
        }
    }

    #[test]
    fn range_scan_sees_everything_once() {
        for policy in [MergePolicy::Leveling, MergePolicy::Tiering] {
            let db = small_db(policy, 3);
            fill(&db, 400);
            db.delete(&b"key000100"[..]).unwrap();
            db.put(&b"key000101"[..], &b"fresh"[..]).unwrap();
            let got: Vec<(Bytes, Bytes)> = db
                .range(b"key000099", Some(b"key000103"))
                .unwrap()
                .map(|kv| kv.unwrap())
                .collect();
            let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_ref()).collect();
            assert_eq!(
                keys,
                vec![b"key000099".as_ref(), b"key000101", b"key000102"],
                "{policy:?}"
            );
            assert_eq!(got[1].1.as_ref(), b"fresh");
        }
    }

    #[test]
    fn full_scan_matches_inserted_set() {
        let db = small_db(MergePolicy::Tiering, 2);
        fill(&db, 700);
        let count = db.range(b"", None).unwrap().count();
        assert_eq!(count, 700);
    }

    #[test]
    fn scan_survives_concurrent_compaction() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 500);
        let mut iter = db.range(b"key000000", None).unwrap();
        let first = iter.next().unwrap().unwrap();
        assert_eq!(first.0.as_ref(), b"key000000");
        // Writes trigger flushes/merges that obsolete the runs under the
        // open cursor; the cursor must finish unharmed.
        fill(&db, 500);
        let rest = iter.inspect(|kv| assert!(kv.is_ok())).count();
        assert_eq!(rest, 499, "snapshot semantics: exactly the old 500 keys");
    }

    #[test]
    fn stats_track_memory_terms() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 1000);
        let stats = db.stats();
        assert!(stats.filter_bits > 0);
        assert!(stats.fence_bits > 0);
        assert!(stats.disk_entries >= 900);
        assert!(stats.expected_zero_result_lookup_ios > 0.0);
        assert!(
            (stats.bits_per_entry() - 10.0).abs() < 3.0,
            "uniform 10 bpe, word-rounded"
        );
    }

    #[test]
    fn lookup_hashes_key_exactly_once() {
        // Tiering at T=4 piles up several runs per level, so a zero-result
        // lookup visits many filters — yet the key is hashed exactly once.
        let db = small_db(MergePolicy::Tiering, 4);
        fill(&db, 800);
        let runs = db.stats().runs;
        assert!(
            runs > 2,
            "need a multi-run tree to make the point, got {runs}"
        );
        let before = db.lookup_stats();
        let misses = 200u64;
        for i in 0..misses {
            // In-range misses ("key000007x" sorts between existing keys), so
            // the fence-pointer pre-check cannot short-circuit the filter.
            assert!(db.get(format!("key{i:06}x").as_bytes()).unwrap().is_none());
        }
        let after = db.lookup_stats();
        assert_eq!(
            after.key_hashes - before.key_hashes,
            misses,
            "one hash per lookup, independent of the {runs} runs probed"
        );
        assert!(
            after.filter_probes - before.filter_probes >= misses,
            "a miss probes at least one filter in a non-empty tree"
        );
        // Accounting identity: every probe is either a negative or a pass.
        let probes = after.filter_probes - before.filter_probes;
        let negatives = after.filter_negatives - before.filter_negatives;
        let false_positives = after.filter_false_positives - before.filter_false_positives;
        assert!(negatives + false_positives <= probes);
        assert!(
            negatives > 0,
            "10-bpe filters reject the vast majority of absent keys"
        );
    }

    #[test]
    fn blocked_variant_db_end_to_end() {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(3)
                .blocked_filters()
                .uniform_filters(10.0),
        )
        .unwrap();
        fill(&db, 600);
        for i in (0..600).step_by(13) {
            let key = format!("key{i:06}");
            assert!(
                db.get(key.as_bytes()).unwrap().is_some(),
                "blocked filters must have no false negatives ({key})"
            );
        }
        let stats = db.stats();
        assert!(stats.expected_zero_result_lookup_ios > 0.0);
        for level in &stats.levels {
            if level.runs > 0 {
                assert!(level.fpr_sum > 0.0, "blocked FPR model applied per run");
            }
        }
    }

    #[test]
    fn rebuild_filters_switches_variant() {
        let dir =
            std::env::temp_dir().join(format!("monkey-db-variant-switch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DbOptions::at_path(&dir)
            .page_size(256)
            .buffer_capacity(512)
            .size_ratio(2)
            .uniform_filters(10.0);
        {
            let db = Db::open(opts.clone()).unwrap();
            fill(&db, 300);
            db.flush().unwrap();
        }
        // Reopen asking for blocked filters: recovery decodes the persisted
        // standard filters, then rebuild upgrades them in place.
        let db = Db::open(opts.blocked_filters()).unwrap();
        db.rebuild_filters().unwrap();
        for i in 0..300 {
            assert!(db.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
        }
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_db_behaves() {
        let db = small_db(MergePolicy::Leveling, 2);
        assert!(db.get(b"nothing").unwrap().is_none());
        assert_eq!(db.range(b"", None).unwrap().count(), 0);
        db.flush().unwrap(); // flushing an empty buffer is a no-op
        assert_eq!(db.stats().depth(), 0);
    }

    #[test]
    fn oversized_entries_rejected() {
        let db = small_db(MergePolicy::Leveling, 2);
        let err = db.put(&b"k"[..], vec![0u8; 4096]).unwrap_err();
        assert!(matches!(err, LsmError::EntryTooLarge { .. }));
        let err = db.put(vec![0u8; 70_000], &b"v"[..]).unwrap_err();
        assert!(matches!(err, LsmError::KeyTooLarge(_)));
    }

    #[test]
    fn flush_forces_buffer_to_disk() {
        let db = small_db(MergePolicy::Leveling, 2);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        assert_eq!(db.stats().disk_entries, 0);
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.disk_entries, 1);
        assert_eq!(stats.buffer_entries, 0);
        assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn deleting_everything_empties_last_level_merges() {
        let db = small_db(MergePolicy::Leveling, 2);
        for i in 0..50 {
            db.put(format!("k{i:03}").into_bytes(), vec![b'x'; 40])
                .unwrap();
        }
        for i in 0..50 {
            db.delete(format!("k{i:03}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        for i in 0..50 {
            assert!(db.get(format!("k{i:03}").as_bytes()).unwrap().is_none());
        }
        assert_eq!(db.range(b"", None).unwrap().count(), 0);
    }

    #[test]
    fn zero_result_lookups_mostly_filtered() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 1000);
        db.reset_io();
        for i in 0..500 {
            assert!(db.get(format!("absent{i}").as_bytes()).unwrap().is_none());
        }
        let ios = db.io().page_reads;
        // 10 bits/entry -> ~1% FPR per run over a handful of runs.
        assert!(ios < 100, "500 zero-result lookups cost {ios} I/Os");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let db = small_db(MergePolicy::Tiering, 3);
        fill(&db, 200);
        crossbeam::scope(|scope| {
            scope.spawn(|_| {
                for i in 200..400 {
                    db.put(format!("key{i:06}").into_bytes(), vec![b'v'; 20])
                        .unwrap();
                }
            });
            for _ in 0..4 {
                scope.spawn(|_| {
                    for i in (0..200).step_by(7) {
                        let got = db.get(format!("key{i:06}").as_bytes()).unwrap();
                        assert!(got.is_some());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(db.range(b"", None).unwrap().count(), 400);
    }

    #[test]
    fn sync_mode_queue_is_always_drained() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 1000);
        assert_eq!(
            db.pipeline_gauges().immutable_queue_depth,
            0,
            "inline drain leaves no backlog"
        );
        assert_eq!(
            db.pipeline_stats().stalls,
            0,
            "synchronous mode never stalls"
        );
        assert_eq!(db.stats().immutable_entries, 0);
    }

    #[test]
    fn background_mode_roundtrip_and_quiesce() {
        for policy in [MergePolicy::Leveling, MergePolicy::Tiering] {
            let db = Db::open(
                DbOptions::in_memory()
                    .page_size(256)
                    .buffer_capacity(512)
                    .size_ratio(3)
                    .merge_policy(policy)
                    .background_compaction(true)
                    .uniform_filters(10.0),
            )
            .unwrap();
            for i in 0..800 {
                db.put(format!("key{i:06}").into_bytes(), vec![b'v'; 20])
                    .unwrap();
            }
            // Every write is immediately readable, wherever it lives
            // (active memtable, frozen memtable, or run).
            for i in (0..800).step_by(23) {
                assert!(
                    db.get(format!("key{i:06}").as_bytes()).unwrap().is_some(),
                    "{policy:?}: key{i}"
                );
            }
            db.flush().unwrap(); // quiesce
            let stats = db.stats();
            assert_eq!(stats.pipeline_gauges.immutable_queue_depth, 0);
            assert_eq!(stats.buffer_entries, 0);
            assert_eq!(stats.disk_entries, 800, "{policy:?}");
            assert_eq!(db.range(b"", None).unwrap().count(), 800);
            db.verify().unwrap();
        }
    }

    #[test]
    fn pause_queues_immutables_and_keeps_them_readable() {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(3)
                .background_compaction(true)
                .max_immutable_memtables(64)
                .uniform_filters(10.0),
        )
        .unwrap();
        db.pause_compaction();
        fill(&db, 400);
        let depth = db.pipeline_gauges().immutable_queue_depth;
        assert!(depth > 0, "paused worker lets rotations accumulate");
        // Entries parked in frozen memtables answer lookups.
        for i in (0..400).step_by(11) {
            assert!(db.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
        }
        assert_eq!(db.range(b"", None).unwrap().count(), 400);
        db.resume_compaction();
        db.flush().unwrap();
        assert_eq!(db.pipeline_gauges().immutable_queue_depth, 0);
        assert_eq!(db.range(b"", None).unwrap().count(), 400);
    }

    #[test]
    fn wal_group_commit_counters_surface_in_stats() {
        let dir = std::env::temp_dir().join(format!("monkey-db-walstats-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Db::open(
                DbOptions::at_path(&dir)
                    .page_size(256)
                    .buffer_capacity(4096),
            )
            .unwrap();
            for i in 0..50 {
                db.put(format!("k{i:03}").into_bytes(), vec![b'v'; 10])
                    .unwrap();
            }
            let p = db.pipeline_stats();
            assert!(p.wal_batched_appends >= 50, "every append is counted");
            assert!(p.wal_group_commits >= 1);
            assert!(p.wal_group_commits <= p.wal_batched_appends);
            assert_eq!(
                db.stats().pipeline.wal_batched_appends,
                p.wal_batched_appends
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_error_is_deferred_then_surfaced() {
        use monkey_storage::{Backend, Disk, FaultKind, FlakyBackend, MemBackend};
        let backend = FlakyBackend::new(MemBackend::new(), FaultKind::Writes);
        let disk = Disk::with_backend(backend.clone() as Arc<dyn Backend>, 256, None);
        let db = Db::open_with_disk(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .background_compaction(true)
                .max_immutable_memtables(8)
                .uniform_filters(10.0),
            disk,
        )
        .unwrap();
        // Queue rotations while the worker is held off, then arm the fault
        // so the worker's first flush attempt fails. (Filling with the
        // fault already armed would let an interleaved `put` surface the
        // deferred error mid-fill — that's designed behavior, but it makes
        // the assertion ordering racy.)
        db.pause_compaction();
        fill(&db, 60); // enough to rotate at least once
        assert!(db.pipeline_gauges().immutable_queue_depth > 0);
        backend.arm(0); // every page write fails
        db.resume_compaction();
        // The worker hits the fault; wait for it to record the failure.
        let deadline = Instant::now() + Duration::from_secs(10);
        while db.pipeline_stats().background_errors == 0 {
            assert!(Instant::now() < deadline, "worker never reported the fault");
            std::thread::sleep(Duration::from_millis(5));
        }
        backend.disarm();
        // The next foreground call surfaces the deferred error...
        let err = db.flush().unwrap_err();
        assert!(matches!(err, LsmError::Background(_)), "got {err}");
        // ...and the engine recovers: the memtable stayed queued, so a
        // retry flushes it and nothing was lost.
        db.flush().unwrap();
        assert_eq!(db.pipeline_gauges().immutable_queue_depth, 0);
        assert_eq!(db.range(b"", None).unwrap().count(), 60);
    }
}

#[cfg(test)]
mod migrate_tests {
    use super::*;
    use crate::policy::MergePolicy;

    #[test]
    fn migrate_changes_tuning_and_keeps_data() {
        let src = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(2)
                .merge_policy(MergePolicy::Leveling)
                .uniform_filters(5.0),
        )
        .unwrap();
        for i in 0..800 {
            src.put(
                format!("k{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            )
            .unwrap();
        }
        src.delete(&b"k0013"[..]).unwrap();

        let dst = src
            .migrate_to(
                // Pinned single-shard: the tiering-structure assertion below
                // reads per-level run counts, which shards would split.
                DbOptions::in_memory()
                    .page_size(256)
                    .buffer_capacity(1024)
                    .size_ratio(4)
                    .merge_policy(MergePolicy::Tiering)
                    .uniform_filters(10.0)
                    .shards(1),
            )
            .unwrap();

        assert_eq!(dst.options().size_ratio, 4);
        assert_eq!(dst.options().merge_policy, MergePolicy::Tiering);
        // Same live contents, tombstone not carried.
        assert_eq!(dst.range(b"", None).unwrap().count(), 799);
        assert!(dst.get(b"k0013").unwrap().is_none());
        assert_eq!(dst.get(b"k0500").unwrap().unwrap().as_ref(), b"v500");
        // Tiering structure in the new store.
        for level in dst.stats().levels {
            assert!(level.runs < 4);
        }
        // Source untouched.
        assert_eq!(src.range(b"", None).unwrap().count(), 799);
    }

    #[test]
    fn migrate_empty_store() {
        let src = Db::open(DbOptions::in_memory().page_size(256).buffer_capacity(512)).unwrap();
        let dst = src
            .migrate_to(DbOptions::in_memory().page_size(512).buffer_capacity(1024))
            .unwrap();
        assert_eq!(dst.range(b"", None).unwrap().count(), 0);
    }

    #[test]
    fn migration_compacts_superseded_versions() {
        let src = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .uniform_filters(5.0),
        )
        .unwrap();
        // Write each key 5 times: the source tree carries old versions
        // until merges retire them; the migration target starts clean.
        for round in 0..5 {
            for i in 0..200 {
                src.put(
                    format!("k{i:03}").into_bytes(),
                    format!("r{round}").into_bytes(),
                )
                .unwrap();
            }
        }
        let dst = src
            .migrate_to(DbOptions::in_memory().page_size(256).buffer_capacity(512))
            .unwrap();
        assert_eq!(dst.stats().disk_entries + dst.stats().buffer_entries, 200);
        assert_eq!(dst.get(b"k007").unwrap().unwrap().as_ref(), b"r4");
    }
}

#[cfg(test)]
mod verify_tests {
    use super::*;
    use crate::policy::MergePolicy;

    fn build() -> Arc<Db> {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(3)
                .merge_policy(MergePolicy::Tiering)
                .uniform_filters(8.0),
        )
        .unwrap();
        for i in 0..1500 {
            db.put(format!("k{i:05}").into_bytes(), vec![b'v'; 24])
                .unwrap();
        }
        db
    }

    #[test]
    fn verify_passes_on_healthy_store() {
        let db = build();
        let verified = db.verify().unwrap();
        let stats = db.stats();
        assert_eq!(verified, stats.disk_entries);
        assert!(verified > 1000);
    }

    #[test]
    fn compaction_stats_accumulate() {
        let db = build();
        let c = db.compaction_stats();
        assert!(c.flushes >= 100, "1500 entries / ~12 per buffer: {c:?}");
        assert!(c.merges > 0);
        assert!(
            c.entries_rewritten > 1500,
            "merges rewrite entries repeatedly"
        );
        // Measured per-entry write amplification is in Eq. 10's ballpark:
        // tiering T=3 amortizes to (T−1)/T ≈ 0.67 rewrites per level.
        let amp = c.entries_rewritten as f64 / 1500.0;
        assert!((1.0..12.0).contains(&amp), "write amp {amp}");
    }

    #[test]
    fn observatory_tick_cuts_windows_and_classifies_ops() {
        // Pinned single-shard: exact op-classification counts (a fanned-out
        // range scan is recorded once per shard) and series length are
        // single-shard semantics.
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .telemetry(true)
                .observatory_retention(4)
                .shards(1),
        )
        .unwrap();
        assert!(
            db.observatory_tick().is_none(),
            "first tick is the baseline"
        );
        for i in 0..50u32 {
            db.put(format!("k{i:04}").into_bytes(), vec![0u8; 16])
                .unwrap();
        }
        for i in 0..30u32 {
            db.get(format!("k{i:04}").as_bytes()).unwrap();
        }
        for _ in 0..20 {
            db.get(b"missing").unwrap();
        }
        let scanned: usize = db
            .range(b"k0000", Some(b"k0010"))
            .unwrap()
            .map(|kv| kv.map(|_| 1).unwrap())
            .sum();
        assert_eq!(scanned, 10);
        let w = db.observatory_tick().expect("second tick closes a window");
        assert!(w.ops_per_sec > 0.0);
        assert!(w.puts_per_sec > 0.0);
        let series = db.observatory().expect("telemetry on");
        assert_eq!(series.len(), 1);
        let m = db.measured_workload().unwrap();
        assert_eq!(m.updates, 50);
        assert_eq!(m.existing_lookups, 30);
        assert_eq!(m.zero_result_lookups, 20);
        assert_eq!(m.range_lookups, 1);
        assert_eq!(m.range_entries_scanned, 10);
    }

    #[test]
    fn observatory_absent_without_telemetry() {
        let db = Db::open(DbOptions::in_memory()).unwrap();
        assert!(db.observatory().is_none());
        assert!(db.observatory_tick().is_none());
        assert!(db.measured_workload().is_none());
    }

    #[test]
    fn sampler_thread_cuts_windows_on_its_own() {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(4 << 10)
                .telemetry(true)
                .observatory_interval(Duration::from_millis(5)),
        )
        .unwrap();
        for i in 0..100u32 {
            db.put(format!("k{i:04}").into_bytes(), vec![0u8; 8])
                .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let series = Arc::clone(db.observatory().unwrap());
        while series.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            !series.is_empty(),
            "sampler should have closed at least one window"
        );
        drop(db); // joins the sampler without hanging
    }

    #[test]
    fn verify_detects_filter_damage() {
        // Swap a run's filter for an empty (all-negative would be a false
        // negative) one via the rebuild path with zero bits — the
        // degenerate filter answers "maybe" for everything, so verify
        // still passes; instead corrupt metadata by constructing a run
        // with a *wrong* filter through recover_run at 0 bits, which is
        // valid. True filter damage cannot be constructed through the
        // public API — assert verify at least re-reads everything.
        let db = build();
        db.reset_io();
        let n = db.verify().unwrap();
        assert!(db.io().page_reads > 0, "verify physically reads the runs");
        assert!(n > 0);
    }
}
