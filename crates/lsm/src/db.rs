//! The database: buffer + levels + policies, glued together.

use crate::compaction::{build_run_from_sorted, merge_runs};
use crate::entry::{Entry, EntryKind, ENTRY_HEADER_LEN};
use crate::error::{LsmError, Result};
use crate::iter::{EntrySource, MergingIter, RangeIter};
use crate::level::{level_capacity_bytes, Level};
use crate::manifest::{Manifest, ManifestState, RunRecord};
use crate::memtable::Memtable;
use crate::options::{DbOptions, StorageConfig};
use crate::page::max_entry_len;
use crate::policy::FilterContext;
use crate::run::{recover_run, FilterParams, Run};
use crate::stats::{DbStats, LevelStats, LookupStats};
use crate::vlog::{ValueLog, ValuePointer};
use crate::wal::Wal;
use bytes::Bytes;
use monkey_bloom::hash_pair;
use monkey_storage::{Disk, IoSnapshot};
use parking_lot::RwLock;
use std::sync::Arc;

struct Inner {
    memtable: Memtable,
    /// `levels[0]` is disk level 1 (shallowest).
    levels: Vec<Level>,
    next_seq: u64,
}

impl Inner {
    /// Deepest non-empty level (1-based), 0 when the disk is empty.
    fn deepest(&self) -> usize {
        self.levels
            .iter()
            .rposition(|l| !l.is_empty())
            .map_or(0, |i| i + 1)
    }

    fn disk_entries(&self) -> u64 {
        self.levels.iter().map(Level::entries).sum()
    }

    fn ensure_level(&mut self, level: usize) {
        while self.levels.len() < level {
            self.levels.push(Level::new());
        }
    }
}

/// An LSM-tree key-value store.
///
/// Thread-safe: lookups and scans proceed under a shared lock; updates (and
/// the flushes/merges they trigger) serialize under an exclusive lock.
pub struct Db {
    disk: Arc<Disk>,
    opts: DbOptions,
    inner: RwLock<Inner>,
    wal: Wal,
    manifest: Option<Manifest>,
    compactions: CompactionCounters,
    lookups: LookupCounters,
    /// Value log for key-value separation (WiscKey mode), when enabled.
    vlog: Option<Arc<ValueLog>>,
}

/// Lifetime counters of the engine's background (inline) maintenance work.
#[derive(Debug, Default)]
struct CompactionCounters {
    flushes: std::sync::atomic::AtomicU64,
    merges: std::sync::atomic::AtomicU64,
    entries_rewritten: std::sync::atomic::AtomicU64,
}

/// Lifetime counters of the point-lookup fast path (see [`LookupStats`]).
#[derive(Debug, Default)]
struct LookupCounters {
    key_hashes: std::sync::atomic::AtomicU64,
    filter_probes: std::sync::atomic::AtomicU64,
    filter_negatives: std::sync::atomic::AtomicU64,
    filter_false_positives: std::sync::atomic::AtomicU64,
}

/// A snapshot of the engine's maintenance work since open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Merge operations performed (leveling merges and tiering merges).
    pub merges: u64,
    /// Entries read-and-rewritten by merges — divided by the number of
    /// user updates this is the engine's measured write amplification in
    /// entries (the quantity Eq. 10 models in I/Os).
    pub entries_rewritten: u64,
}

impl Db {
    /// Opens a database. For directory-backed storage, recovers the tree
    /// from the manifest and replays the WAL.
    pub fn open(opts: DbOptions) -> Result<Arc<Self>> {
        let (disk, wal, manifest, replayed, manifest_state) = match &opts.storage {
            StorageConfig::Memory => (
                Disk::mem(opts.page_size),
                Wal::disabled(),
                None,
                Vec::new(),
                None,
            ),
            StorageConfig::MemoryCached(cache) => (
                Disk::mem_cached(opts.page_size, *cache),
                Wal::disabled(),
                None,
                Vec::new(),
                None,
            ),
            StorageConfig::Directory(dir) => {
                std::fs::create_dir_all(dir)?;
                let disk = Disk::file(dir.join("pages"), opts.page_size)?;
                let manifest = Manifest::at(dir.join("MANIFEST"));
                let state = manifest.load()?;
                let (wal, replayed) = Wal::open(dir.join("wal.log"), opts.wal_sync_each_append)?;
                (disk, wal, Some(manifest), replayed, state)
            }
        };

        let mut inner = Inner {
            memtable: Memtable::new(),
            levels: Vec::new(),
            next_seq: 0,
        };

        if let Some(state) = manifest_state {
            Self::recover_levels(&disk, &state, &mut inner)?;
            inner.next_seq = state.next_seq;
        }
        for entry in replayed {
            inner.next_seq = inner.next_seq.max(entry.seq + 1);
            inner.memtable.insert(entry);
        }
        // (Separated values from replayed WAL records are re-separated on
        // the next flush via the normal put path being bypassed here; the
        // memtable holds them inline, which is always correct — separation
        // is an optimization, not an invariant.)

        let vlog = opts
            .value_separation
            .map(|_| Arc::new(ValueLog::new(Arc::clone(&disk), 1024)));
        let db = Arc::new(Self {
            disk,
            opts,
            inner: RwLock::new(inner),
            wal,
            manifest,
            compactions: CompactionCounters::default(),
            lookups: LookupCounters::default(),
            vlog,
        });
        // A WAL bigger than the buffer (crash right before a flush): flush now.
        {
            let mut inner = db.inner.write();
            if inner.memtable.bytes() >= db.opts.buffer_capacity {
                db.flush_locked(&mut inner)?;
            }
        }
        Ok(db)
    }

    /// Opens a volatile database over a caller-supplied [`Disk`] — used by
    /// tests and simulations that need a custom backend (fault injection,
    /// bespoke caches). No WAL or manifest is attached.
    pub fn open_with_disk(opts: DbOptions, disk: Arc<Disk>) -> Result<Arc<Self>> {
        assert_eq!(
            disk.page_size(),
            opts.page_size,
            "disk and options disagree on the page size"
        );
        let inner = Inner {
            memtable: Memtable::new(),
            levels: Vec::new(),
            next_seq: 0,
        };
        let vlog = opts
            .value_separation
            .map(|_| Arc::new(ValueLog::new(Arc::clone(&disk), 1024)));
        Ok(Arc::new(Self {
            disk,
            opts,
            inner: RwLock::new(inner),
            wal: Wal::disabled(),
            manifest: None,
            compactions: CompactionCounters::default(),
            lookups: LookupCounters::default(),
            vlog,
        }))
    }

    fn recover_levels(disk: &Arc<Disk>, state: &ManifestState, inner: &mut Inner) -> Result<()> {
        let mut records: Vec<RunRecord> = state.runs.clone();
        // Within a level, older runs (higher age) are pushed first so the
        // youngest ends up in front.
        records.sort_by_key(|r| (r.level, std::cmp::Reverse(r.age)));
        for record in records {
            if record.level == 0 {
                return Err(LsmError::Corruption("manifest run at level 0".into()));
            }
            inner.ensure_level(record.level);
            let run = recover_run(
                disk,
                record.id,
                FilterParams::new(record.bits_per_entry, record.flavor),
            )?;
            inner.levels[record.level - 1].push_youngest(Arc::new(run));
        }
        Ok(())
    }

    /// The configuration this database was opened with.
    pub fn options(&self) -> &DbOptions {
        &self.opts
    }

    /// The underlying counted storage (for I/O measurements).
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// I/O counters since open or the last reset.
    pub fn io(&self) -> IoSnapshot {
        self.disk.io()
    }

    /// Resets the I/O counters.
    pub fn reset_io(&self) {
        self.disk.reset_io();
    }

    fn check_entry_size(&self, key: &[u8], value_len: usize) -> Result<()> {
        if key.len() > u16::MAX as usize {
            return Err(LsmError::KeyTooLarge(key.len()));
        }
        let encoded = ENTRY_HEADER_LEN + key.len() + value_len;
        let max = max_entry_len(self.opts.page_size);
        if encoded > max {
            return Err(LsmError::EntryTooLarge { encoded, max });
        }
        Ok(())
    }

    /// Inserts or updates a key.
    ///
    /// With key-value separation enabled, values at or above the threshold
    /// go to the value log and the tree stores a pointer; the WAL always
    /// records the full value, so durability does not depend on log-page
    /// flush timing.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let (key, value) = (key.into(), value.into());
        let separate = match (&self.vlog, self.opts.value_separation) {
            (Some(vlog), Some(threshold)) if value.len() >= threshold => {
                if value.len() > vlog.max_value_len() {
                    return Err(LsmError::EntryTooLarge {
                        encoded: value.len(),
                        max: vlog.max_value_len(),
                    });
                }
                true
            }
            _ => {
                self.check_entry_size(&key, value.len())?;
                false
            }
        };
        if separate {
            self.check_entry_size(&key, ValuePointer::ENCODED_LEN)?;
        }
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        // WAL gets the full value either way.
        self.wal.append(&Entry {
            key: key.clone(),
            value: value.clone(),
            seq,
            kind: EntryKind::Put,
        })?;
        let entry = if separate {
            let ptr = self
                .vlog
                .as_ref()
                .expect("separation checked")
                .append(&value)?;
            Entry {
                key,
                value: Bytes::copy_from_slice(&ptr.encode()),
                seq,
                kind: EntryKind::IndirectPut,
            }
        } else {
            Entry {
                key,
                value,
                seq,
                kind: EntryKind::Put,
            }
        };
        inner.memtable.insert(entry);
        if inner.memtable.bytes() >= self.opts.buffer_capacity {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Resolves an entry's user-visible value (following a value-log
    /// pointer for separated entries).
    fn resolve_value(&self, entry: &Entry) -> Result<Option<Bytes>> {
        match entry.kind {
            EntryKind::Put => Ok(Some(entry.value.clone())),
            EntryKind::Delete => Ok(None),
            EntryKind::IndirectPut => {
                let ptr = ValuePointer::decode(&entry.value)
                    .ok_or_else(|| LsmError::Corruption("malformed value-log pointer".into()))?;
                let vlog = self.vlog.as_ref().ok_or_else(|| {
                    LsmError::Corruption("indirect entry in a store without a value log".into())
                })?;
                Ok(Some(vlog.get(ptr)?))
            }
        }
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let key = key.into();
        self.check_entry_size(&key, 0)?;
        let mut inner = self.inner.write();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let entry = Entry::tombstone(key, seq);
        self.wal.append(&entry)?;
        inner.memtable.insert(entry);
        if inner.memtable.bytes() >= self.opts.buffer_capacity {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Point lookup. Probes the buffer, then each level shallow-to-deep
    /// (runs youngest-to-oldest), stopping at the first version found (§2).
    ///
    /// The key is hashed **once**, when the lookup first reaches the disk
    /// levels; the same hash pair serves every run's filter probe no matter
    /// how many runs the tree holds.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        use std::sync::atomic::Ordering::Relaxed;
        let inner = self.inner.read();
        if let Some(entry) = inner.memtable.get(key) {
            return self.resolve_value(&entry);
        }
        let pair = hash_pair(key); // the lookup's only hash computation
        self.lookups.key_hashes.fetch_add(1, Relaxed);
        for level in &inner.levels {
            for run in level.runs() {
                let look = run.get_hashed(key, pair)?;
                if look.probed_filter {
                    self.lookups.filter_probes.fetch_add(1, Relaxed);
                    if look.filter_negative {
                        self.lookups.filter_negatives.fetch_add(1, Relaxed);
                    } else if look.page_read && look.entry.is_none() {
                        // The filter said "maybe", the page said no: a true
                        // false positive, one wasted I/O.
                        self.lookups.filter_false_positives.fetch_add(1, Relaxed);
                    }
                }
                if let Some(entry) = look.entry {
                    return self.resolve_value(&entry);
                }
            }
        }
        Ok(None)
    }

    /// Counters of the point-lookup fast path since open.
    pub fn lookup_stats(&self) -> LookupStats {
        use std::sync::atomic::Ordering::Relaxed;
        LookupStats {
            key_hashes: self.lookups.key_hashes.load(Relaxed),
            filter_probes: self.lookups.filter_probes.load(Relaxed),
            filter_negatives: self.lookups.filter_negatives.load(Relaxed),
            filter_false_positives: self.lookups.filter_false_positives.load(Relaxed),
        }
    }

    /// Range scan over `[lo, hi)` (`hi = None` scans to the end). The
    /// cursor owns snapshots of the relevant runs, so concurrent writes and
    /// merges do not disturb it.
    pub fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<RangeIter> {
        if let Some(hi) = hi {
            if hi <= lo {
                // Empty (or inverted) interval: nothing to scan.
                return Ok(
                    RangeIter::new(MergingIter::new(Vec::new(), true)?, None).with_value_log(None)
                );
            }
        }
        let inner = self.inner.read();
        let mut sources: Vec<EntrySource> = Vec::with_capacity(1 + inner.levels.len());
        sources.push(Box::new(inner.memtable.range(lo, hi).into_iter().map(Ok)));
        for level in &inner.levels {
            for run in level.runs() {
                sources.push(Box::new(run.iter_from(lo)));
            }
        }
        let hi = hi.map(Bytes::copy_from_slice);
        drop(inner);
        Ok(RangeIter::new(MergingIter::new(sources, true)?, hi).with_value_log(self.vlog.clone()))
    }

    /// Forces the buffer to flush into the tree even if not full.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)
    }

    /// Builds the filter parameters for a run of `run_entries` entries
    /// landing at `level`: bits-per-entry from the filter policy, layout
    /// variant from the options. At every call site, `inner.levels` holds
    /// exactly the runs that will coexist with the new run (merge inputs
    /// have already been taken out of their levels).
    fn filter_params(&self, inner: &Inner, level: usize, run_entries: u64) -> FilterParams {
        let other_run_entries: Vec<u64> = inner
            .levels
            .iter()
            .flat_map(|l| l.runs().iter().map(|r| r.entries()))
            .collect();
        let ctx = FilterContext {
            level,
            num_levels: inner.deepest().max(level),
            run_entries,
            total_entries: run_entries
                + other_run_entries.iter().sum::<u64>()
                + inner.memtable.len() as u64,
            other_run_entries,
            size_ratio: self.opts.size_ratio,
            merge_policy: self.opts.merge_policy,
        };
        FilterParams::new(
            self.opts.filter_policy.bits_per_entry(&ctx),
            self.opts.filter_variant,
        )
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        if let Some(vlog) = &self.vlog {
            // Pointers about to be persisted must reference durable pages.
            vlog.sync()?;
        }
        let entries = inner.memtable.drain_sorted();
        let n = entries.len() as u64;
        // Tombstones can be dropped immediately only when the disk is empty.
        let drop_tombstones = inner.deepest() == 0;
        let params = self.filter_params(inner, 1, n);
        // (memtable already drained: filter_params saw it as empty, correct
        // — its entries are exactly the run being built.)
        let run = build_run_from_sorted(&self.disk, entries, drop_tombstones, params)?;
        self.compactions
            .flushes
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(run) = run {
            match self.opts.merge_policy {
                crate::policy::MergePolicy::Leveling => self.install_leveling(inner, run)?,
                crate::policy::MergePolicy::Tiering => self.install_tiering(inner, run)?,
            }
        }
        self.wal.reset()?;
        self.persist_manifest(inner)?;
        Ok(())
    }

    /// Leveling (§2): the arriving run sort-merges with the resident run of
    /// level 1; whenever a level exceeds its capacity, its (single) run
    /// moves down and merges with the next level's resident run.
    fn install_leveling(&self, inner: &mut Inner, run: Arc<Run>) -> Result<()> {
        let mut carry = run;
        let mut lvl = 1usize;
        loop {
            inner.ensure_level(lvl);
            let deepest = inner.deepest().max(lvl);
            if !inner.levels[lvl - 1].is_empty() {
                let mut inputs = vec![carry];
                inputs.extend(inner.levels[lvl - 1].take_all());
                let drop_tombstones = lvl >= deepest;
                let input_entries: u64 = inputs.iter().map(|r| r.entries()).sum();
                let params = self.filter_params(inner, lvl, input_entries);
                self.compactions
                    .merges
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.compactions
                    .entries_rewritten
                    .fetch_add(input_entries, std::sync::atomic::Ordering::Relaxed);
                match merge_runs(&self.disk, &inputs, drop_tombstones, params)? {
                    Some(merged) => carry = merged,
                    None => return Ok(()), // merge annihilated everything
                }
            }
            inner.levels[lvl - 1].push_youngest(carry);
            let capacity =
                level_capacity_bytes(self.opts.buffer_capacity, self.opts.size_ratio, lvl);
            if inner.levels[lvl - 1].bytes() <= capacity {
                return Ok(());
            }
            // Over capacity: the run moves to the next level.
            let mut moved = inner.levels[lvl - 1].take_all();
            debug_assert_eq!(moved.len(), 1);
            carry = moved.pop().expect("level had a run");
            lvl += 1;
        }
    }

    /// Tiering (§2): runs accumulate at a level; the arrival of the `T`-th
    /// merges them all into a single run at the next level.
    fn install_tiering(&self, inner: &mut Inner, run: Arc<Run>) -> Result<()> {
        inner.ensure_level(1);
        inner.levels[0].push_youngest(run);
        let t = self.opts.size_ratio;
        let mut lvl = 1usize;
        loop {
            if inner.levels[lvl - 1].run_count() < t {
                return Ok(());
            }
            let inputs = inner.levels[lvl - 1].take_all();
            // Tombstones can be dropped when nothing deeper than this level
            // holds data: the merged run lands at lvl+1 as its deepest data.
            let drop_tombstones = inner.deepest() <= lvl;
            let input_entries: u64 = inputs.iter().map(|r| r.entries()).sum();
            let params = self.filter_params(inner, lvl + 1, input_entries);
            self.compactions
                .merges
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.compactions
                .entries_rewritten
                .fetch_add(input_entries, std::sync::atomic::Ordering::Relaxed);
            let merged = merge_runs(&self.disk, &inputs, drop_tombstones, params)?;
            inner.ensure_level(lvl + 1);
            if let Some(merged) = merged {
                inner.levels[lvl].push_youngest(merged);
            }
            lvl += 1;
        }
    }

    fn persist_manifest(&self, inner: &Inner) -> Result<()> {
        let Some(manifest) = &self.manifest else {
            return Ok(());
        };
        let mut runs = Vec::new();
        for (idx, level) in inner.levels.iter().enumerate() {
            for (age, run) in level.runs().iter().enumerate() {
                runs.push(RunRecord {
                    id: run.id(),
                    level: idx + 1,
                    age,
                    bits_per_entry: run.filter_bits_per_entry(),
                    flavor: run.filter_variant(),
                });
            }
        }
        manifest.store(&ManifestState {
            next_seq: inner.next_seq,
            policy: Some(self.opts.merge_policy),
            size_ratio: Some(self.opts.size_ratio),
            runs,
        })
    }

    /// Rebuilds every run's Bloom filter according to the *current* filter
    /// policy and tree shape, by rescanning the runs. Used when a policy's
    /// ideal allocation drifts from what runs were built with (runs fix
    /// their filters at build time, but the optimal assignment shifts as
    /// the tree gains levels and runs). The scan is counted I/O;
    /// experiments reset counters afterwards.
    pub fn rebuild_filters(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let num_levels = inner.deepest();
        let memtable_len = inner.memtable.len() as u64;
        // Snapshot of every run's position and size.
        let all: Vec<(usize, usize, u64)> = inner
            .levels
            .iter()
            .enumerate()
            .flat_map(|(li, level)| {
                level
                    .runs()
                    .iter()
                    .enumerate()
                    .map(move |(ri, run)| (li, ri, run.entries()))
            })
            .collect();
        let total: u64 = all.iter().map(|x| x.2).sum::<u64>() + memtable_len;
        for &(li, ri, entries) in &all {
            let others: Vec<u64> = all
                .iter()
                .filter(|&&(lj, rj, _)| (lj, rj) != (li, ri))
                .map(|x| x.2)
                .collect();
            let ctx = FilterContext {
                level: li + 1,
                num_levels,
                run_entries: entries,
                total_entries: total,
                other_run_entries: others,
                size_ratio: self.opts.size_ratio,
                merge_policy: self.opts.merge_policy,
            };
            let bits = self.opts.filter_policy.bits_per_entry(&ctx);
            let current = Arc::clone(&inner.levels[li].runs()[ri]);
            let allocation_drifted = (bits - current.filter_bits_per_entry()).abs() > 1e-9;
            let variant_changed = current.filter_variant() != self.opts.filter_variant;
            if allocation_drifted || variant_changed {
                let params = FilterParams::new(bits, self.opts.filter_variant);
                let rebuilt = Arc::new(recover_run(&self.disk, current.id(), params)?);
                inner.levels[li].replace_run(ri, rebuilt);
            }
        }
        self.persist_manifest(&inner)?;
        Ok(())
    }

    /// Migrates the store to a new tuning (Appendix A of the paper:
    /// "a future class of key-value stores may adaptively switch from one
    /// tuning setting to another"). Opens a fresh database under
    /// `new_opts`, streams every live entry into it (tombstones and
    /// superseded versions are left behind), and returns the new store.
    ///
    /// The source is read through a snapshot cursor, so it stays readable
    /// during the migration; writes applied to the source after the
    /// snapshot is taken are *not* carried over — quiesce writes first or
    /// diff afterwards. The transformation cost is observable by diffing
    /// [`io`](Self::io) on both stores around the call.
    pub fn migrate_to(&self, new_opts: DbOptions) -> Result<Arc<Db>> {
        let target = Db::open(new_opts)?;
        for kv in self.range(b"", None)? {
            let (key, value) = kv?;
            target.put(key, value)?;
        }
        target.flush()?;
        Ok(target)
    }

    /// Maintenance-work counters since open.
    pub fn compaction_stats(&self) -> CompactionStats {
        use std::sync::atomic::Ordering::Relaxed;
        CompactionStats {
            flushes: self.compactions.flushes.load(Relaxed),
            merges: self.compactions.merges.load(Relaxed),
            entries_rewritten: self.compactions.entries_rewritten.load(Relaxed),
        }
    }

    /// Deep integrity check: reads every page of every run (counted I/O)
    /// and verifies
    ///
    /// * page checksums and decodability,
    /// * strict key ordering within and across pages,
    /// * agreement between a run's metadata (entry count, byte size, key
    ///   bounds) and its pages,
    /// * that the Bloom filter has no false negatives,
    /// * that every value-log pointer resolves (checksummed page, valid
    ///   slot),
    /// * the youngest-first sequence ordering of runs within a level.
    ///
    /// Returns the number of entries verified.
    pub fn verify(&self) -> Result<u64> {
        let inner = self.inner.read();
        let mut verified = 0u64;
        for (idx, level) in inner.levels.iter().enumerate() {
            for run in level.runs() {
                let mut count = 0u64;
                let mut bytes = 0u64;
                let mut prev: Option<bytes::Bytes> = None;
                for item in run.iter() {
                    let entry = item?; // checksum + decode verified here
                    if let Some(prev) = &prev {
                        if entry.key <= *prev {
                            return Err(LsmError::Corruption(format!(
                                "run {} at level {}: keys out of order",
                                run.id(),
                                idx + 1
                            )));
                        }
                    }
                    if !run.filter().contains(&entry.key) {
                        return Err(LsmError::Corruption(format!(
                            "run {} at level {}: filter false negative",
                            run.id(),
                            idx + 1
                        )));
                    }
                    if entry.kind == EntryKind::IndirectPut {
                        // Dangling or corrupt value-log pointers surface here.
                        self.resolve_value(&entry)?;
                    }
                    count += 1;
                    bytes += entry.encoded_len() as u64;
                    prev = Some(entry.key);
                }
                if count != run.entries() || bytes != run.bytes() {
                    return Err(LsmError::Corruption(format!(
                        "run {} at level {}: metadata mismatch ({} entries / {} bytes vs {} / {})",
                        run.id(),
                        idx + 1,
                        count,
                        bytes,
                        run.entries(),
                        run.bytes()
                    )));
                }
                if let Some(last) = prev {
                    if last != *run.max_key() {
                        return Err(LsmError::Corruption(format!(
                            "run {} at level {}: max key mismatch",
                            run.id(),
                            idx + 1
                        )));
                    }
                }
                verified += count;
            }
        }
        Ok(verified)
    }

    /// Structural and memory statistics.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.read();
        let mut levels = Vec::with_capacity(inner.levels.len());
        let mut filter_bits = 0u64;
        let mut fence_bits = 0u64;
        let mut fpr_total = 0.0f64;
        for (idx, level) in inner.levels.iter().enumerate() {
            let mut level_filter_bits = 0u64;
            let mut fpr_sum = 0.0f64;
            for run in level.runs() {
                level_filter_bits += run.filter().memory_bits() as u64;
                fence_bits += run.fence_memory_bits();
                fpr_sum += run.filter().theoretical_fpr();
            }
            filter_bits += level_filter_bits;
            fpr_total += fpr_sum;
            levels.push(LevelStats {
                level: idx + 1,
                runs: level.run_count(),
                entries: level.entries(),
                bytes: level.bytes(),
                capacity_bytes: level_capacity_bytes(
                    self.opts.buffer_capacity,
                    self.opts.size_ratio,
                    idx + 1,
                ),
                filter_bits: level_filter_bits,
                fpr_sum,
            });
        }
        DbStats {
            buffer_entries: inner.memtable.len() as u64,
            buffer_bytes: inner.memtable.bytes() as u64,
            buffer_capacity: self.opts.buffer_capacity as u64,
            disk_entries: inner.disk_entries(),
            runs: inner.levels.iter().map(Level::run_count).sum(),
            levels,
            filter_bits,
            fence_bits,
            expected_zero_result_lookup_ios: fpr_total,
            lookups: self.lookup_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MergePolicy;

    fn small_db(policy: MergePolicy, t: usize) -> Arc<Db> {
        Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(t)
                .merge_policy(policy)
                .uniform_filters(10.0),
        )
        .unwrap()
    }

    fn fill(db: &Db, n: usize) {
        fill_range(db, 0, n);
    }

    fn fill_range(db: &Db, start: usize, end: usize) {
        for i in start..end {
            db.put(format!("key{i:06}").into_bytes(), vec![b'v'; 20])
                .unwrap();
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 500);
        for i in (0..500).step_by(17) {
            let got = db.get(format!("key{i:06}").as_bytes()).unwrap();
            assert_eq!(got.unwrap(), Bytes::from(vec![b'v'; 20]), "key{i}");
        }
        assert!(db.get(b"missing").unwrap().is_none());
    }

    #[test]
    fn overwrites_visible_after_merges() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 300);
        db.put(&b"key000007"[..], &b"updated"[..]).unwrap();
        fill_range(&db, 300, 400); // push the update through flushes
        assert_eq!(db.get(b"key000007").unwrap().unwrap().as_ref(), b"updated");
    }

    #[test]
    fn delete_masks_older_versions_across_levels() {
        for policy in [MergePolicy::Leveling, MergePolicy::Tiering] {
            let db = small_db(policy, 3);
            fill(&db, 300);
            db.delete(&b"key000005"[..]).unwrap();
            fill_range(&db, 300, 450); // cycle more merges
            assert_eq!(db.get(b"key000005").unwrap(), None, "{policy:?}");
            assert!(db.get(b"key000006").unwrap().is_some());
        }
    }

    #[test]
    fn leveling_keeps_one_run_per_level() {
        let db = small_db(MergePolicy::Leveling, 3);
        fill(&db, 2000);
        let stats = db.stats();
        for level in &stats.levels {
            assert!(
                level.runs <= 1,
                "level {} has {} runs",
                level.level,
                level.runs
            );
        }
        assert!(stats.depth() >= 2);
    }

    #[test]
    fn tiering_keeps_under_t_runs_per_level() {
        let t = 4;
        let db = small_db(MergePolicy::Tiering, t);
        fill(&db, 2000);
        let stats = db.stats();
        for level in &stats.levels {
            assert!(
                level.runs < t,
                "level {} has {} runs",
                level.level,
                level.runs
            );
        }
        assert!(stats.depth() >= 2);
    }

    #[test]
    fn levels_respect_capacity_after_install() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 3000);
        let stats = db.stats();
        // All levels except possibly the deepest respect their caps.
        for level in &stats.levels[..stats.levels.len() - 1] {
            assert!(
                level.bytes <= level.capacity_bytes,
                "level {} holds {} > cap {}",
                level.level,
                level.bytes,
                level.capacity_bytes
            );
        }
    }

    #[test]
    fn range_scan_sees_everything_once() {
        for policy in [MergePolicy::Leveling, MergePolicy::Tiering] {
            let db = small_db(policy, 3);
            fill(&db, 400);
            db.delete(&b"key000100"[..]).unwrap();
            db.put(&b"key000101"[..], &b"fresh"[..]).unwrap();
            let got: Vec<(Bytes, Bytes)> = db
                .range(b"key000099", Some(b"key000103"))
                .unwrap()
                .map(|kv| kv.unwrap())
                .collect();
            let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_ref()).collect();
            assert_eq!(
                keys,
                vec![b"key000099".as_ref(), b"key000101", b"key000102"],
                "{policy:?}"
            );
            assert_eq!(got[1].1.as_ref(), b"fresh");
        }
    }

    #[test]
    fn full_scan_matches_inserted_set() {
        let db = small_db(MergePolicy::Tiering, 2);
        fill(&db, 700);
        let count = db.range(b"", None).unwrap().count();
        assert_eq!(count, 700);
    }

    #[test]
    fn scan_survives_concurrent_compaction() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 500);
        let mut iter = db.range(b"key000000", None).unwrap();
        let first = iter.next().unwrap().unwrap();
        assert_eq!(first.0.as_ref(), b"key000000");
        // Writes trigger flushes/merges that obsolete the runs under the
        // open cursor; the cursor must finish unharmed.
        fill(&db, 500);
        let rest = iter.inspect(|kv| assert!(kv.is_ok())).count();
        assert_eq!(rest, 499, "snapshot semantics: exactly the old 500 keys");
    }

    #[test]
    fn stats_track_memory_terms() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 1000);
        let stats = db.stats();
        assert!(stats.filter_bits > 0);
        assert!(stats.fence_bits > 0);
        assert!(stats.disk_entries >= 900);
        assert!(stats.expected_zero_result_lookup_ios > 0.0);
        assert!(
            (stats.bits_per_entry() - 10.0).abs() < 3.0,
            "uniform 10 bpe, word-rounded"
        );
    }

    #[test]
    fn lookup_hashes_key_exactly_once() {
        // Tiering at T=4 piles up several runs per level, so a zero-result
        // lookup visits many filters — yet the key is hashed exactly once.
        let db = small_db(MergePolicy::Tiering, 4);
        fill(&db, 800);
        let runs = db.stats().runs;
        assert!(
            runs > 2,
            "need a multi-run tree to make the point, got {runs}"
        );
        let before = db.lookup_stats();
        let misses = 200u64;
        for i in 0..misses {
            // In-range misses ("key000007x" sorts between existing keys), so
            // the fence-pointer pre-check cannot short-circuit the filter.
            assert!(db.get(format!("key{i:06}x").as_bytes()).unwrap().is_none());
        }
        let after = db.lookup_stats();
        assert_eq!(
            after.key_hashes - before.key_hashes,
            misses,
            "one hash per lookup, independent of the {runs} runs probed"
        );
        assert!(
            after.filter_probes - before.filter_probes >= misses,
            "a miss probes at least one filter in a non-empty tree"
        );
        // Accounting identity: every probe is either a negative or a pass.
        let probes = after.filter_probes - before.filter_probes;
        let negatives = after.filter_negatives - before.filter_negatives;
        let false_positives = after.filter_false_positives - before.filter_false_positives;
        assert!(negatives + false_positives <= probes);
        assert!(
            negatives > 0,
            "10-bpe filters reject the vast majority of absent keys"
        );
    }

    #[test]
    fn blocked_variant_db_end_to_end() {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(3)
                .blocked_filters()
                .uniform_filters(10.0),
        )
        .unwrap();
        fill(&db, 600);
        for i in (0..600).step_by(13) {
            let key = format!("key{i:06}");
            assert!(
                db.get(key.as_bytes()).unwrap().is_some(),
                "blocked filters must have no false negatives ({key})"
            );
        }
        let stats = db.stats();
        assert!(stats.expected_zero_result_lookup_ios > 0.0);
        for level in &stats.levels {
            if level.runs > 0 {
                assert!(level.fpr_sum > 0.0, "blocked FPR model applied per run");
            }
        }
    }

    #[test]
    fn rebuild_filters_switches_variant() {
        let dir =
            std::env::temp_dir().join(format!("monkey-db-variant-switch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DbOptions::at_path(&dir)
            .page_size(256)
            .buffer_capacity(512)
            .size_ratio(2)
            .uniform_filters(10.0);
        {
            let db = Db::open(opts.clone()).unwrap();
            fill(&db, 300);
            db.flush().unwrap();
        }
        // Reopen asking for blocked filters: recovery decodes the persisted
        // standard filters, then rebuild upgrades them in place.
        let db = Db::open(opts.blocked_filters()).unwrap();
        db.rebuild_filters().unwrap();
        for i in 0..300 {
            assert!(db.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
        }
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_db_behaves() {
        let db = small_db(MergePolicy::Leveling, 2);
        assert!(db.get(b"nothing").unwrap().is_none());
        assert_eq!(db.range(b"", None).unwrap().count(), 0);
        db.flush().unwrap(); // flushing an empty buffer is a no-op
        assert_eq!(db.stats().depth(), 0);
    }

    #[test]
    fn oversized_entries_rejected() {
        let db = small_db(MergePolicy::Leveling, 2);
        let err = db.put(&b"k"[..], vec![0u8; 4096]).unwrap_err();
        assert!(matches!(err, LsmError::EntryTooLarge { .. }));
        let err = db.put(vec![0u8; 70_000], &b"v"[..]).unwrap_err();
        assert!(matches!(err, LsmError::KeyTooLarge(_)));
    }

    #[test]
    fn flush_forces_buffer_to_disk() {
        let db = small_db(MergePolicy::Leveling, 2);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        assert_eq!(db.stats().disk_entries, 0);
        db.flush().unwrap();
        let stats = db.stats();
        assert_eq!(stats.disk_entries, 1);
        assert_eq!(stats.buffer_entries, 0);
        assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn deleting_everything_empties_last_level_merges() {
        let db = small_db(MergePolicy::Leveling, 2);
        for i in 0..50 {
            db.put(format!("k{i:03}").into_bytes(), vec![b'x'; 40])
                .unwrap();
        }
        for i in 0..50 {
            db.delete(format!("k{i:03}").into_bytes()).unwrap();
        }
        db.flush().unwrap();
        for i in 0..50 {
            assert!(db.get(format!("k{i:03}").as_bytes()).unwrap().is_none());
        }
        assert_eq!(db.range(b"", None).unwrap().count(), 0);
    }

    #[test]
    fn zero_result_lookups_mostly_filtered() {
        let db = small_db(MergePolicy::Leveling, 2);
        fill(&db, 1000);
        db.reset_io();
        for i in 0..500 {
            assert!(db.get(format!("absent{i}").as_bytes()).unwrap().is_none());
        }
        let ios = db.io().page_reads;
        // 10 bits/entry -> ~1% FPR per run over a handful of runs.
        assert!(ios < 100, "500 zero-result lookups cost {ios} I/Os");
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let db = small_db(MergePolicy::Tiering, 3);
        fill(&db, 200);
        crossbeam::scope(|scope| {
            scope.spawn(|_| {
                for i in 200..400 {
                    db.put(format!("key{i:06}").into_bytes(), vec![b'v'; 20])
                        .unwrap();
                }
            });
            for _ in 0..4 {
                scope.spawn(|_| {
                    for i in (0..200).step_by(7) {
                        let got = db.get(format!("key{i:06}").as_bytes()).unwrap();
                        assert!(got.is_some());
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(db.range(b"", None).unwrap().count(), 400);
    }
}

#[cfg(test)]
mod migrate_tests {
    use super::*;
    use crate::policy::MergePolicy;

    #[test]
    fn migrate_changes_tuning_and_keeps_data() {
        let src = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(2)
                .merge_policy(MergePolicy::Leveling)
                .uniform_filters(5.0),
        )
        .unwrap();
        for i in 0..800 {
            src.put(
                format!("k{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            )
            .unwrap();
        }
        src.delete(&b"k0013"[..]).unwrap();

        let dst = src
            .migrate_to(
                DbOptions::in_memory()
                    .page_size(256)
                    .buffer_capacity(1024)
                    .size_ratio(4)
                    .merge_policy(MergePolicy::Tiering)
                    .uniform_filters(10.0),
            )
            .unwrap();

        assert_eq!(dst.options().size_ratio, 4);
        assert_eq!(dst.options().merge_policy, MergePolicy::Tiering);
        // Same live contents, tombstone not carried.
        assert_eq!(dst.range(b"", None).unwrap().count(), 799);
        assert!(dst.get(b"k0013").unwrap().is_none());
        assert_eq!(dst.get(b"k0500").unwrap().unwrap().as_ref(), b"v500");
        // Tiering structure in the new store.
        for level in dst.stats().levels {
            assert!(level.runs < 4);
        }
        // Source untouched.
        assert_eq!(src.range(b"", None).unwrap().count(), 799);
    }

    #[test]
    fn migrate_empty_store() {
        let src = Db::open(DbOptions::in_memory().page_size(256).buffer_capacity(512)).unwrap();
        let dst = src
            .migrate_to(DbOptions::in_memory().page_size(512).buffer_capacity(1024))
            .unwrap();
        assert_eq!(dst.range(b"", None).unwrap().count(), 0);
    }

    #[test]
    fn migration_compacts_superseded_versions() {
        let src = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .uniform_filters(5.0),
        )
        .unwrap();
        // Write each key 5 times: the source tree carries old versions
        // until merges retire them; the migration target starts clean.
        for round in 0..5 {
            for i in 0..200 {
                src.put(
                    format!("k{i:03}").into_bytes(),
                    format!("r{round}").into_bytes(),
                )
                .unwrap();
            }
        }
        let dst = src
            .migrate_to(DbOptions::in_memory().page_size(256).buffer_capacity(512))
            .unwrap();
        assert_eq!(dst.stats().disk_entries + dst.stats().buffer_entries, 200);
        assert_eq!(dst.get(b"k007").unwrap().unwrap().as_ref(), b"r4");
    }
}

#[cfg(test)]
mod verify_tests {
    use super::*;
    use crate::policy::MergePolicy;

    fn build() -> Arc<Db> {
        let db = Db::open(
            DbOptions::in_memory()
                .page_size(256)
                .buffer_capacity(512)
                .size_ratio(3)
                .merge_policy(MergePolicy::Tiering)
                .uniform_filters(8.0),
        )
        .unwrap();
        for i in 0..1500 {
            db.put(format!("k{i:05}").into_bytes(), vec![b'v'; 24])
                .unwrap();
        }
        db
    }

    #[test]
    fn verify_passes_on_healthy_store() {
        let db = build();
        let verified = db.verify().unwrap();
        let stats = db.stats();
        assert_eq!(verified, stats.disk_entries);
        assert!(verified > 1000);
    }

    #[test]
    fn compaction_stats_accumulate() {
        let db = build();
        let c = db.compaction_stats();
        assert!(c.flushes >= 100, "1500 entries / ~12 per buffer: {c:?}");
        assert!(c.merges > 0);
        assert!(
            c.entries_rewritten > 1500,
            "merges rewrite entries repeatedly"
        );
        // Measured per-entry write amplification is in Eq. 10's ballpark:
        // tiering T=3 amortizes to (T−1)/T ≈ 0.67 rewrites per level.
        let amp = c.entries_rewritten as f64 / 1500.0;
        assert!((1.0..12.0).contains(&amp), "write amp {amp}");
    }

    #[test]
    fn verify_detects_filter_damage() {
        // Swap a run's filter for an empty (all-negative would be a false
        // negative) one via the rebuild path with zero bits — the
        // degenerate filter answers "maybe" for everything, so verify
        // still passes; instead corrupt metadata by constructing a run
        // with a *wrong* filter through recover_run at 0 bits, which is
        // valid. True filter damage cannot be constructed through the
        // public API — assert verify at least re-reads everything.
        let db = build();
        db.reset_io();
        let n = db.verify().unwrap();
        assert!(db.io().page_reads > 0, "verify physically reads the runs");
        assert!(n > 0);
    }
}
