//! Segmented write-ahead log with group commit.
//!
//! The buffer (memtable) holds the newest updates in volatile memory; the
//! WAL makes them durable. The log is a sequence of **segments**
//! (`wal-NNNNNN.log`), one per memtable generation: when the active
//! memtable rotates into the immutable flush queue, the current segment is
//! sealed and a fresh one is opened, so each queued memtable is covered by
//! a closed set of segments. After the background pipeline flushes a
//! memtable into a run, exactly the segments at or below its seal point
//! are deleted ([`Wal::prune_upto`]) — segments for younger, still-queued
//! memtables survive, which is what makes crash recovery with a non-empty
//! immutable queue correct.
//!
//! Appends use **group commit** (leader/follower): a put encodes its
//! record and enqueues it under the engine's write lock
//! ([`Wal::enqueue`]), then — outside that lock — calls [`Wal::commit`].
//! The first committer to take the file lock becomes the *leader*: it
//! drains every pending record into one `write` (plus one `sync_data` in
//! fsync-per-append mode) and publishes the durable high-water mark.
//! Followers whose records rode that batch return without touching the
//! file. Records are enqueued in sequence order under the write lock and
//! drained in order under the file lock, so the on-disk record order
//! always matches sequence order.
//!
//! Record wire format (unchanged from the single-file log):
//!
//! ```text
//! [u64 checksum][u8 kind][u64 seq][u16 key_len][u32 val_len][key][value]
//! ```
//!
//! where the checksum is XXH64 over the bytes that follow it. Replay stops
//! at the first torn or corrupt record — everything before it is
//! recovered, which is the standard contract for a crash mid-append. A
//! pre-segmentation `wal.log` file is replayed as segment 0, so old stores
//! recover unchanged.

use crate::entry::{Entry, EntryKind};
use crate::error::{LsmError, Result};
use bytes::Bytes;
use monkey_bloom::hash::xxh64;
use monkey_obs::{ActiveSpan, EventKind, SpanKind, Telemetry, Tracer};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Condvar;
use std::sync::{Arc, OnceLock};

const WAL_SEED: u64 = 0x57414C5F4D4F4E4B; // "WAL_MONK"
const LEGACY_FILE: &str = "wal.log";

/// Lifetime counters of the group-commit protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Physical write batches issued (each one `write` + at most one
    /// `sync`).
    pub group_commits: u64,
    /// Records that rode those batches. `batched_appends / group_commits`
    /// is the mean batch size — above 1.0 means concurrent writers shared
    /// commits.
    pub batched_appends: u64,
    /// Physical `sync_data` calls this log issued (or triggered through a
    /// shared [`WalSyncCoordinator`]). In fsync-per-append mode,
    /// `syncs / batched_appends` is the syncs-per-commit ratio — group
    /// commit alone pushes it below 1 under load, and cross-shard fsync
    /// batching pushes it further.
    pub syncs: u64,
}

/// Counters of a [`WalSyncCoordinator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncStats {
    /// Physical `sync_data` calls the coordinator performed.
    pub syncs: u64,
    /// Sync tickets handed out — one per batch that asked for durability.
    /// `syncs / tickets < 1` means batches shared in-flight fsyncs.
    pub tickets: u64,
}

struct SyncState {
    /// Next ticket to hand out (the first is 1).
    next_ticket: u64,
    /// Every ticket at or below this mark is durable.
    completed: u64,
    /// Files carrying writes not yet covered by a completed sync, each
    /// with the newest ticket that dirtied it.
    dirty: Vec<(u64, Arc<File>)>,
    /// A sync leader is currently fsyncing outside the lock.
    syncing: bool,
    /// Tickets at or below `.0` rode an epoch whose fsync failed.
    failed: Option<(u64, String)>,
    syncs: u64,
    tickets: u64,
}

/// Cross-segment, cross-shard fsync coalescing — the sync-ticket
/// protocol.
///
/// A committer that has already written its bytes takes a **ticket** and
/// registers its file as dirty, in one critical section. The first waiter
/// to find no sync in flight becomes the **sync leader**: it notes the
/// highest ticket handed out (`upto`), drains the dirty set, and fsyncs
/// each distinct file once, outside the lock. Every ticket ≤ `upto` had
/// registered its file before the drain, so one epoch covers them all;
/// when the leader publishes `completed = upto`, those waiters return
/// without ever touching the device. Tickets taken while the leader was
/// syncing stay dirty and wake the next leader.
///
/// One coordinator is shared by every shard's WAL, so under load `N`
/// shards' group commits collapse into one fsync wave instead of `N`
/// serial `sync_data` calls — this is what cuts syncs-per-commit below 1.
pub struct WalSyncCoordinator {
    state: Mutex<SyncState>,
    cv: Condvar,
}

impl WalSyncCoordinator {
    /// A fresh coordinator (shared across WALs via the returned `Arc`).
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SyncState {
                next_ticket: 1,
                completed: 0,
                dirty: Vec::new(),
                syncing: false,
                failed: None,
                syncs: 0,
                tickets: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Makes every byte already written to `file` durable, coalescing
    /// with concurrent callers. Returns the number of physical fsyncs
    /// this call performed itself — 0 means it piggybacked on another
    /// batch's in-flight sync.
    pub fn sync_after_write(&self, file: &Arc<File>) -> std::io::Result<u64> {
        let mut state = self.state.lock();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.tickets += 1;
        match state.dirty.iter_mut().find(|(_, f)| Arc::ptr_eq(f, file)) {
            Some(entry) => entry.0 = ticket,
            None => state.dirty.push((ticket, Arc::clone(file))),
        }
        loop {
            if state.completed >= ticket {
                if let Some((upto, msg)) = &state.failed {
                    if *upto >= ticket {
                        return Err(std::io::Error::other(msg.clone()));
                    }
                }
                return Ok(0);
            }
            if !state.syncing {
                // Become the sync leader: every ticket handed out so far
                // has its file in the dirty set, so this epoch covers
                // them all.
                state.syncing = true;
                let upto = state.next_ticket - 1;
                let batch = std::mem::take(&mut state.dirty);
                drop(state);
                let mut err = None;
                let mut syncs = 0u64;
                for (_, f) in &batch {
                    match f.sync_data() {
                        Ok(()) => syncs += 1,
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                let mut state = self.state.lock();
                state.syncs += syncs;
                state.completed = state.completed.max(upto);
                if let Some(e) = &err {
                    state.failed = Some((upto, e.to_string()));
                }
                state.syncing = false;
                drop(state);
                self.cv.notify_all();
                return match err {
                    Some(e) => Err(e),
                    None => Ok(syncs),
                };
            }
            // The parking_lot shim hands out genuine `std` guards, so the
            // std Condvar composes with it; poisoning cannot occur (no
            // panics while the coordinator lock is held).
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Coalescing counters since creation.
    pub fn stats(&self) -> SyncStats {
        let state = self.state.lock();
        SyncStats {
            syncs: state.syncs,
            tickets: state.tickets,
        }
    }
}

/// One encoded record waiting for a leader to write it.
struct PendingRecord {
    seq: u64,
    body: Vec<u8>,
}

/// A batch written to the active segment but (in fsync-per-append mode)
/// not yet durable: the hand-off from the under-lock write phase
/// ([`Wal::stage_pending_locked`]) to the lock-free sync phase
/// ([`Wal::finish_batch`]). Holding the segment `File` by `Arc` keeps the
/// sync valid even if the segment seals and rotates in between.
struct StagedBatch {
    commit_no: u64,
    last_seq: u64,
    records: u64,
    file: Arc<File>,
    span: Option<ActiveSpan>,
}

struct ActiveSegment {
    id: u64,
    /// Shared so the sync coordinator can fsync the file after the
    /// segment lock moved on to a newer batch.
    file: Arc<File>,
}

struct WalInner {
    dir: PathBuf,
    /// Records enqueued (in seq order) but not yet written to the file.
    pending: Mutex<Vec<PendingRecord>>,
    /// The open segment. Leaders hold this lock while draining `pending`,
    /// which is what serializes batches and keeps file order = seq order.
    segment: Mutex<ActiveSegment>,
    /// `seq + 1` of the newest record written (and, in
    /// fsync-per-append mode, synced); 0 = nothing written yet.
    durable_mark: AtomicU64,
    /// Commit number (1-based) of the newest batch written. Stored before
    /// `durable_mark` is released, so a follower that observes its record
    /// durable reads the id of the batch that carried it (or a later one —
    /// still causally downstream of its write).
    last_commit_no: AtomicU64,
    group_commits: AtomicU64,
    batched_appends: AtomicU64,
    syncs: AtomicU64,
}

/// The write-ahead log. A disabled WAL (for in-memory experiment
/// databases) accepts appends and does nothing.
pub struct Wal {
    inner: Option<WalInner>,
    sync_each_append: bool,
    /// When set, fsyncs route through the shared coordinator so
    /// concurrent batches (including other shards') ride one fsync.
    sync_coord: Option<Arc<WalSyncCoordinator>>,
    /// Optional telemetry sink: group commits emit an
    /// [`EventKind::WalGroupCommit`] event carrying the batch size —
    /// always for multi-record batches, 1-in-64 for single-record ones.
    events: OnceLock<Arc<Telemetry>>,
    /// Optional span source: multi-record batches (and sampled
    /// single-record ones) are timed as [`SpanKind::WalCommit`] spans
    /// whose links carry the commit number, so a traced put can be joined
    /// to the physical batch that made it durable.
    tracer: OnceLock<Arc<Tracer>>,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:06}.log"))
}

/// Parses a directory entry name into a segment id (`wal.log` ⇒ 0).
fn segment_id_of(name: &str) -> Option<u64> {
    if name == LEGACY_FILE {
        return Some(0);
    }
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl Wal {
    /// A no-op WAL for volatile databases.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            sync_each_append: false,
            sync_coord: None,
            events: OnceLock::new(),
            tracer: OnceLock::new(),
        }
    }

    /// Routes group-commit events into `telemetry`. First attachment
    /// wins; later calls are ignored.
    pub fn attach_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.events.set(telemetry);
    }

    /// Routes group-commit spans into `tracer`. First attachment wins;
    /// later calls are ignored.
    pub fn attach_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// Opens the log rooted at directory `dir`, replaying every complete
    /// record from every segment in segment order. Returns the WAL (with a
    /// fresh active segment) and the replayed entries in append order.
    pub fn open(dir: impl AsRef<Path>, sync_each_append: bool) -> Result<(Self, Vec<Entry>)> {
        Self::open_with(dir, sync_each_append, None)
    }

    /// [`open`](Self::open), with fsyncs routed through a shared
    /// [`WalSyncCoordinator`] — the multi-shard configuration, where every
    /// shard's WAL hands its durability barriers to one coalescing
    /// coordinator.
    pub fn open_with(
        dir: impl AsRef<Path>,
        sync_each_append: bool,
        sync_coord: Option<Arc<WalSyncCoordinator>>,
    ) -> Result<(Self, Vec<Entry>)> {
        let dir = dir.as_ref().to_path_buf();
        let mut ids: Vec<u64> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| segment_id_of(&e.file_name().to_string_lossy()))
            .collect();
        ids.sort_unstable();
        ids.dedup(); // wal.log and wal-000000.log are both segment 0
        let mut entries = Vec::new();
        for &id in &ids {
            let path = if id == 0 && !segment_path(&dir, 0).exists() {
                dir.join(LEGACY_FILE)
            } else {
                segment_path(&dir, id)
            };
            let buf = std::fs::read(&path)?;
            let (mut seg_entries, clean) = replay(&buf);
            entries.append(&mut seg_entries);
            if !clean {
                // A torn/corrupt record: nothing after it (including later
                // segments) can be trusted — same contract as the
                // single-file log.
                break;
            }
        }
        let next_id = ids.last().map_or(1, |id| id + 1);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, next_id))?;
        Ok((
            Self {
                inner: Some(WalInner {
                    dir,
                    pending: Mutex::new(Vec::new()),
                    segment: Mutex::new(ActiveSegment {
                        id: next_id,
                        file: Arc::new(file),
                    }),
                    durable_mark: AtomicU64::new(0),
                    last_commit_no: AtomicU64::new(0),
                    group_commits: AtomicU64::new(0),
                    batched_appends: AtomicU64::new(0),
                    syncs: AtomicU64::new(0),
                }),
                sync_each_append,
                sync_coord,
                events: OnceLock::new(),
                tracer: OnceLock::new(),
            },
            entries,
        ))
    }

    /// Encodes `entry` and queues it for the next group commit. Called
    /// under the engine's write lock, which is what keeps the pending
    /// queue in sequence order; the encoding itself is a couple of
    /// memcpys — the checksum is computed later, by the leader, off the
    /// hot lock.
    pub fn enqueue(&self, entry: &Entry) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if entry.key.len() > u16::MAX as usize {
            return Err(LsmError::KeyTooLarge(entry.key.len()));
        }
        let mut body = Vec::with_capacity(15 + entry.key.len() + entry.value.len());
        body.push(entry.kind.to_byte());
        body.extend_from_slice(&entry.seq.to_le_bytes());
        body.extend_from_slice(&(entry.key.len() as u16).to_le_bytes());
        body.extend_from_slice(&(entry.value.len() as u32).to_le_bytes());
        body.extend_from_slice(&entry.key);
        body.extend_from_slice(&entry.value);
        inner.pending.lock().push(PendingRecord {
            seq: entry.seq,
            body,
        });
        Ok(())
    }

    /// Ensures the record carrying `seq` has been written to the log (and
    /// synced, in fsync-per-append mode). The caller becomes the batch
    /// leader if no other committer got there first. Returns the commit
    /// number (1-based) of the batch observed to carry the record — the
    /// causal link a traced put records against its group commit — or 0
    /// when the WAL is disabled.
    pub fn commit(&self, seq: u64) -> Result<u64> {
        let Some(inner) = &self.inner else {
            return Ok(0);
        };
        if inner.durable_mark.load(Ordering::Acquire) > seq {
            // A leader already wrote our record; its batch id (or a later
            // one) is visible because last_commit_no is stored before the
            // durable mark's release.
            return Ok(inner.last_commit_no.load(Ordering::Relaxed));
        }
        let mut segment = inner.segment.lock();
        if inner.durable_mark.load(Ordering::Acquire) > seq {
            return Ok(inner.last_commit_no.load(Ordering::Relaxed)); // committed while we waited
        }
        match self.stage_pending_locked(inner, &mut segment)? {
            Some(staged) => {
                // Sync (and publish durability) off the segment lock: the
                // next leader can stage its batch onto the same file while
                // this one waits at the coordinator, which is what lets
                // consecutive same-WAL group commits share one fsync.
                drop(segment);
                self.finish_batch(inner, staged)
            }
            None => {
                // A leader drained our record while we waited for the
                // segment lock but has not finished its sync yet (the
                // durable mark still trails `seq`). Sync the segment
                // ourselves rather than return a not-yet-durable commit;
                // the coordinator dedups this with the in-flight epoch.
                let file = Arc::clone(&segment.file);
                drop(segment);
                if self.sync_each_append {
                    self.sync_file(inner, &file)?;
                    inner.durable_mark.fetch_max(seq + 1, Ordering::AcqRel);
                }
                Ok(inner.last_commit_no.load(Ordering::Relaxed))
            }
        }
    }

    /// Convenience single-record append: enqueue + commit.
    pub fn append(&self, entry: &Entry) -> Result<()> {
        self.enqueue(entry)?;
        self.commit(entry.seq)?;
        Ok(())
    }

    /// Drains the pending queue into the active segment as one batch and
    /// finishes it (sync + durable-mark publication) with the lock still
    /// held. Returns the batch's commit number (the latest one when the
    /// queue was already empty). The seal/sync/shutdown paths use this
    /// single-phase form; the commit hot path splits the phases so the
    /// sync runs off the segment lock.
    fn write_pending_locked(&self, inner: &WalInner, segment: &mut ActiveSegment) -> Result<u64> {
        match self.stage_pending_locked(inner, segment)? {
            Some(staged) => self.finish_batch(inner, staged),
            None => Ok(inner.last_commit_no.load(Ordering::Relaxed)),
        }
    }

    /// Phase 1, under the segment lock: drains the pending queue into the
    /// active segment as one `write`, assigns the batch its commit number
    /// (lock order = file order = commit order), and returns the staged
    /// batch for [`Wal::finish_batch`]. `None` when nothing was pending.
    fn stage_pending_locked(
        &self,
        inner: &WalInner,
        segment: &mut ActiveSegment,
    ) -> Result<Option<StagedBatch>> {
        let batch = std::mem::take(&mut *inner.pending.lock());
        if batch.is_empty() {
            return Ok(None);
        }
        // Multi-record batches are always traced (they are the interesting
        // group commits); single-record ones ride the tracer's sampler so
        // period-1 test configs see every commit while the default period
        // keeps the put path clock-free.
        let span = self.tracer.get().and_then(|t| {
            if batch.len() > 1 || t.sample() {
                Some(t.start(SpanKind::WalCommit))
            } else {
                None
            }
        });
        let total: usize = batch.iter().map(|r| 8 + r.body.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for record in &batch {
            let checksum = xxh64(&record.body, WAL_SEED);
            buf.extend_from_slice(&checksum.to_le_bytes());
            buf.extend_from_slice(&record.body);
        }
        (&*segment.file).write_all(&buf)?;
        let last_seq = batch.last().expect("non-empty batch").seq;
        let commit_no = inner.group_commits.fetch_add(1, Ordering::Relaxed) + 1;
        inner.last_commit_no.store(commit_no, Ordering::Relaxed);
        inner
            .batched_appends
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(Some(StagedBatch {
            commit_no,
            last_seq,
            records: batch.len() as u64,
            file: Arc::clone(&segment.file),
            span,
        }))
    }

    /// Phase 2, lock-free: makes a staged batch durable (in
    /// fsync-per-append mode), publishes the durable mark, and emits the
    /// batch's telemetry. Batches may finish out of order — the mark is a
    /// `fetch_max`, and a later batch's sync covers an earlier one's bytes
    /// because both were written to the file in lock order.
    fn finish_batch(&self, inner: &WalInner, staged: StagedBatch) -> Result<u64> {
        if self.sync_each_append {
            self.sync_file(inner, &staged.file)?;
        }
        inner
            .durable_mark
            .fetch_max(staged.last_seq + 1, Ordering::AcqRel);
        if let Some(active) = staged.span {
            if let Some(tracer) = self.tracer.get() {
                tracer.finish(active, 0, vec![staged.commit_no, staged.records]);
            }
        }
        // Real groups (>1 record) always make the timeline; single-record
        // commits — every sync-mode put — are sampled 1-in-64 so the event
        // ring shows WAL cadence without a clock read and ring push on the
        // put hot path. The stats counters above stay exact regardless.
        if staged.records > 1 || (staged.commit_no - 1).is_multiple_of(64) {
            if let Some(t) = self.events.get() {
                t.event(EventKind::WalGroupCommit {
                    records: staged.records,
                });
            }
        }
        Ok(staged.commit_no)
    }

    /// One durability barrier for `file`: through the coordinator when
    /// attached (so it coalesces with concurrent batches, possibly from
    /// other shards' WALs) or a direct `sync_data` otherwise. Physical
    /// syncs this call performed are attributed to this WAL's counter.
    fn sync_file(&self, inner: &WalInner, file: &Arc<File>) -> Result<()> {
        match &self.sync_coord {
            Some(coord) => {
                let syncs = coord.sync_after_write(file)?;
                inner.syncs.fetch_add(syncs, Ordering::Relaxed);
            }
            None => {
                file.sync_data()?;
                inner.syncs.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Seals the active segment — flushing any pending records into it —
    /// and opens the next one. Returns the sealed segment's id; entries
    /// enqueued so far live in segments at or below that id. Called at
    /// memtable rotation, under the engine's write lock.
    pub fn seal_current(&self) -> Result<Option<u64>> {
        let Some(inner) = &self.inner else {
            return Ok(None);
        };
        let mut segment = inner.segment.lock();
        self.write_pending_locked(inner, &mut segment)?;
        segment.file.sync_data()?;
        inner.syncs.fetch_add(1, Ordering::Relaxed);
        let sealed = segment.id;
        let next = sealed + 1;
        segment.file = Arc::new(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&inner.dir, next))?,
        );
        segment.id = next;
        Ok(Some(sealed))
    }

    /// Deletes every segment with id ≤ `id` (including a legacy
    /// `wal.log`, which is segment 0) — called after the memtable those
    /// segments covered has been flushed into a durable run.
    pub fn prune_upto(&self, id: u64) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        // The active segment is never pruned (its id is always > any seal
        // point handed to a flush).
        for dirent in std::fs::read_dir(&inner.dir)? {
            let dirent = dirent?;
            let name = dirent.file_name().to_string_lossy().into_owned();
            if let Some(seg_id) = segment_id_of(&name) {
                if seg_id <= id {
                    std::fs::remove_file(dirent.path())?;
                }
            }
        }
        Ok(())
    }

    /// Writes any pending records and forces them to stable storage.
    pub fn sync(&self) -> Result<()> {
        if let Some(inner) = &self.inner {
            let mut segment = inner.segment.lock();
            self.write_pending_locked(inner, &mut segment)?;
            segment.file.sync_data()?;
            inner.syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Writes any pending records without forcing a sync (shutdown path:
    /// nothing a clean process exit would lose stays buffered in memory).
    pub fn flush_pending(&self) -> Result<()> {
        if let Some(inner) = &self.inner {
            let mut segment = inner.segment.lock();
            self.write_pending_locked(inner, &mut segment)?;
        }
        Ok(())
    }

    /// Group-commit counters since open.
    pub fn stats(&self) -> WalStats {
        match &self.inner {
            Some(inner) => WalStats {
                group_commits: inner.group_commits.load(Ordering::Relaxed),
                batched_appends: inner.batched_appends.load(Ordering::Relaxed),
                syncs: inner.syncs.load(Ordering::Relaxed),
            },
            None => WalStats::default(),
        }
    }
}

/// Decodes complete records from a WAL segment image, stopping at the
/// first corruption or truncation. The second return value is `false` when
/// the segment ended in a torn or corrupt record.
fn replay(buf: &[u8]) -> (Vec<Entry>, bool) {
    let mut entries = Vec::new();
    let mut off = 0usize;
    loop {
        if off == buf.len() {
            return (entries, true); // clean EOF
        }
        if off + 8 + 15 > buf.len() {
            return (entries, false); // header truncated: torn tail
        }
        let checksum = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        let body_start = off + 8;
        let kind = buf[body_start];
        let seq = u64::from_le_bytes(buf[body_start + 1..body_start + 9].try_into().unwrap());
        let klen =
            u16::from_le_bytes(buf[body_start + 9..body_start + 11].try_into().unwrap()) as usize;
        let vlen =
            u32::from_le_bytes(buf[body_start + 11..body_start + 15].try_into().unwrap()) as usize;
        let body_end = body_start + 15 + klen + vlen;
        if body_end > buf.len() {
            return (entries, false); // torn record
        }
        if xxh64(&buf[body_start..body_end], WAL_SEED) != checksum {
            return (entries, false); // corrupt record: stop trusting the tail
        }
        let Some(kind) = EntryKind::from_byte(kind) else {
            return (entries, false);
        };
        let key = Bytes::copy_from_slice(&buf[body_start + 15..body_start + 15 + klen]);
        let value = Bytes::copy_from_slice(&buf[body_start + 15 + klen..body_end]);
        entries.push(Entry {
            key,
            value,
            seq,
            kind,
        });
        off = body_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("monkey-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn newest_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                segment_id_of(&e.file_name().to_string_lossy()).map(|id| (id, e.path()))
            })
            .collect();
        segs.sort();
        segs.pop().unwrap().1
    }

    #[test]
    fn disabled_wal_is_a_noop() {
        let wal = Wal::disabled();
        wal.append(&Entry::put(b"k".to_vec(), b"v".to_vec(), 1))
            .unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.seal_current().unwrap(), None);
        wal.prune_upto(99).unwrap();
        assert_eq!(wal.stats(), WalStats::default());
    }

    #[test]
    fn append_and_replay() {
        let dir = tmp("basic");
        {
            let (wal, replayed) = Wal::open(&dir, false).unwrap();
            assert!(replayed.is_empty());
            wal.append(&Entry::put(b"a".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            wal.append(&Entry::tombstone(b"b".to_vec(), 2)).unwrap();
            wal.sync().unwrap();
        }
        let (_wal, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        assert_eq!(replayed[0].value.as_ref(), b"1");
        assert!(replayed[1].is_tombstone());
        assert_eq!(replayed[1].seq, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seal_and_prune_drop_old_segments_only() {
        let dir = tmp("segments");
        {
            let (wal, _) = Wal::open(&dir, false).unwrap();
            wal.append(&Entry::put(b"old".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            let sealed = wal.seal_current().unwrap().unwrap();
            wal.append(&Entry::put(b"new".to_vec(), b"2".to_vec(), 2))
                .unwrap();
            wal.flush_pending().unwrap();
            wal.prune_upto(sealed).unwrap();
        }
        // Only the record written after the seal survives the prune.
        let (_wal, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"new");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queued_segments_replay_in_order() {
        let dir = tmp("queued");
        {
            let (wal, _) = Wal::open(&dir, false).unwrap();
            wal.append(&Entry::put(b"k".to_vec(), b"gen1".to_vec(), 1))
                .unwrap();
            wal.seal_current().unwrap();
            wal.append(&Entry::put(b"k".to_vec(), b"gen2".to_vec(), 2))
                .unwrap();
            wal.seal_current().unwrap();
            wal.append(&Entry::put(b"k".to_vec(), b"gen3".to_vec(), 3))
                .unwrap();
            wal.flush_pending().unwrap();
            // No prune: simulates a crash with two memtables still queued.
        }
        let (_wal, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 3, "all segments replayed");
        assert_eq!(
            replayed.last().unwrap().value.as_ref(),
            b"gen3",
            "append order across segments preserved"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_single_file_log_replays_as_segment_zero() {
        let dir = tmp("legacy");
        // Write a record in the old single-file format (same record wire
        // format, file named wal.log).
        let entry = Entry::put(b"old-store".to_vec(), b"v".to_vec(), 7);
        let mut body = vec![entry.kind.to_byte()];
        body.extend_from_slice(&entry.seq.to_le_bytes());
        body.extend_from_slice(&(entry.key.len() as u16).to_le_bytes());
        body.extend_from_slice(&(entry.value.len() as u32).to_le_bytes());
        body.extend_from_slice(&entry.key);
        body.extend_from_slice(&entry.value);
        let mut file_bytes = xxh64(&body, WAL_SEED).to_le_bytes().to_vec();
        file_bytes.extend_from_slice(&body);
        std::fs::write(dir.join(LEGACY_FILE), &file_bytes).unwrap();

        let (wal, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"old-store");
        // Pruning past segment 0 removes the legacy file.
        let sealed = wal.seal_current().unwrap().unwrap();
        wal.prune_upto(sealed).unwrap();
        assert!(!dir.join(LEGACY_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let dir = tmp("torn");
        {
            let (wal, _) = Wal::open(&dir, false).unwrap();
            wal.append(&Entry::put(b"good".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            wal.append(&Entry::put(b"lost".to_vec(), b"2".to_vec(), 2))
                .unwrap();
            wal.sync().unwrap();
        }
        let seg = newest_segment(&dir);
        let buf = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &buf[..buf.len() - 3]).unwrap();
        let (_wal, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"good");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = tmp("corrupt");
        {
            let (wal, _) = Wal::open(&dir, false).unwrap();
            for (i, k) in [b"first", b"secnd", b"third"].iter().enumerate() {
                wal.append(&Entry::put(k.to_vec(), b"1".to_vec(), i as u64))
                    .unwrap();
            }
            wal.sync().unwrap();
        }
        let seg = newest_segment(&dir);
        let mut buf = std::fs::read(&seg).unwrap();
        let record_len = 8 + 15 + 5 + 1; // first record (key "first", val "1")
        buf[record_len + 20] ^= 0xFF;
        std::fs::write(&seg, &buf).unwrap();
        let (_wal, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact prefix is trusted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_garbage_files() {
        assert!(replay(&[]).0.is_empty());
        assert!(replay(&[]).1, "empty file is a clean EOF");
        assert!(replay(&[1, 2, 3]).0.is_empty());
        assert!(!replay(&[1, 2, 3]).1);
        let (entries, clean) = replay(&[0u8; 64]);
        assert!(entries.is_empty(), "zeroed preallocated file");
        assert!(!clean);
    }

    #[test]
    fn sync_each_append_mode() {
        let dir = tmp("sync");
        {
            let (wal, _) = Wal::open(&dir, true).unwrap();
            wal.append(&Entry::put(b"k".to_vec(), b"v".to_vec(), 1))
                .unwrap();
        }
        let (_w, replayed) = Wal::open(&dir, true).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_coordinator_coalesces_across_wals() {
        // Two WALs (two "shards") share one coordinator; concurrent
        // committers on both must all end durable, with each fsync epoch
        // covering every ticket issued before its leader drained.
        let dir_a = tmp("coord-a");
        let dir_b = tmp("coord-b");
        let coord = WalSyncCoordinator::new();
        let (wal_a, _) = Wal::open_with(&dir_a, true, Some(Arc::clone(&coord))).unwrap();
        let (wal_b, _) = Wal::open_with(&dir_b, true, Some(Arc::clone(&coord))).unwrap();
        let wals = [Arc::new(wal_a), Arc::new(wal_b)];
        let per_thread = 50u64;
        crossbeam::scope(|scope| {
            for t in 0..4u64 {
                let wal = Arc::clone(&wals[(t % 2) as usize]);
                scope.spawn(move |_| {
                    for i in 0..per_thread {
                        let seq = t * per_thread + i;
                        wal.append(&Entry::put(
                            format!("k{seq:05}").into_bytes(),
                            b"v".to_vec(),
                            seq,
                        ))
                        .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let stats = coord.stats();
        assert_eq!(
            stats.tickets,
            wals[0].stats().group_commits + wals[1].stats().group_commits,
            "one ticket per physical batch"
        );
        assert!(stats.syncs <= stats.tickets, "coalescing never adds syncs");
        assert!(stats.syncs > 0);
        // Per-WAL sync attribution sums to the coordinator's total.
        assert_eq!(wals[0].stats().syncs + wals[1].stats().syncs, stats.syncs);
        drop(wals);
        for dir in [&dir_a, &dir_b] {
            let (_w, replayed) = Wal::open(dir, false).unwrap();
            assert_eq!(replayed.len(), 100, "every committed record durable");
            std::fs::remove_dir_all(dir).unwrap();
        }
    }

    #[test]
    fn sync_coordinator_piggybacks_followers() {
        // Deterministic follower case: while a leader epoch is marked
        // in-flight, a second registration must wait, then return having
        // done 0 syncs of its own once the epoch that covers it completes.
        let dir = tmp("coord-piggyback");
        let coord = WalSyncCoordinator::new();
        let (wal, _) = Wal::open_with(&dir, true, Some(Arc::clone(&coord))).unwrap();
        // Sequential commits each lead their own epoch: syncs == tickets.
        for seq in 0..3 {
            wal.append(&Entry::put(vec![seq as u8], b"v".to_vec(), seq))
                .unwrap();
        }
        let stats = coord.stats();
        assert_eq!(stats.tickets, 3);
        assert_eq!(stats.syncs, 3, "uncontended commits sync themselves");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_concurrent_appends() {
        let dir = tmp("group");
        let (wal, _) = Wal::open(&dir, true).unwrap();
        let wal = std::sync::Arc::new(wal);
        let n_threads = 8u64;
        let per_thread = 50u64;
        // The engine's pattern: sequence allocation and enqueue happen
        // under one lock (so the pending queue is in seq order), while the
        // physical commits race — whoever grabs the file first becomes the
        // leader and writes everyone's records in one batch.
        let next_seq = std::sync::Mutex::new(0u64);
        crossbeam::scope(|scope| {
            for _ in 0..n_threads {
                let wal = std::sync::Arc::clone(&wal);
                let next_seq = &next_seq;
                scope.spawn(move |_| {
                    for _ in 0..per_thread {
                        let seq = {
                            let mut n = next_seq.lock().unwrap();
                            let seq = *n;
                            *n += 1;
                            let entry =
                                Entry::put(format!("k{seq:05}").into_bytes(), b"v".to_vec(), seq);
                            wal.enqueue(&entry).unwrap();
                            seq
                        };
                        wal.commit(seq).unwrap();
                    }
                });
            }
        })
        .unwrap();
        let stats = wal.stats();
        assert_eq!(stats.batched_appends, n_threads * per_thread);
        assert!(
            stats.group_commits <= stats.batched_appends,
            "a batch never writes fewer than one record"
        );
        drop(wal);
        let (_w, replayed) = Wal::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), (n_threads * per_thread) as usize);
        // On-disk order is sequence order even under concurrency.
        assert!(replayed.windows(2).all(|w| w[0].seq < w[1].seq));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
