//! Write-ahead log for buffered updates.
//!
//! The buffer (memtable) holds the newest updates in volatile memory; the
//! WAL makes them durable. Each record is checksummed, and replay stops at
//! the first torn or corrupt record — everything before it is recovered,
//! which is the standard contract for a crash mid-append.
//!
//! Record wire format:
//!
//! ```text
//! [u64 checksum][u8 kind][u64 seq][u16 key_len][u32 val_len][key][value]
//! ```
//!
//! where the checksum is XXH64 over the bytes that follow it.

use crate::entry::{Entry, EntryKind};
use crate::error::{LsmError, Result};
use bytes::Bytes;
use monkey_bloom::hash::xxh64;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const WAL_SEED: u64 = 0x57414C5F4D4F4E4B; // "WAL_MONK"

struct WalFile {
    file: File,
    path: PathBuf,
}

/// The write-ahead log. A disabled WAL (for in-memory experiment databases)
/// accepts appends and does nothing.
pub struct Wal {
    inner: Option<Mutex<WalFile>>,
    sync_each_append: bool,
}

impl Wal {
    /// A no-op WAL for volatile databases.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            sync_each_append: false,
        }
    }

    /// Opens (or creates) the log at `path` and replays any complete
    /// records already present. Returns the WAL and the replayed entries in
    /// append order.
    pub fn open(path: impl AsRef<Path>, sync_each_append: bool) -> Result<(Self, Vec<Entry>)> {
        let path = path.as_ref().to_path_buf();
        let entries = match std::fs::read(&path) {
            Ok(buf) => replay(&buf),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((
            Self {
                inner: Some(Mutex::new(WalFile { file, path })),
                sync_each_append,
            },
            entries,
        ))
    }

    /// Appends one entry.
    pub fn append(&self, entry: &Entry) -> Result<()> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if entry.key.len() > u16::MAX as usize {
            return Err(LsmError::KeyTooLarge(entry.key.len()));
        }
        let mut body = Vec::with_capacity(15 + entry.key.len() + entry.value.len());
        body.push(entry.kind.to_byte());
        body.extend_from_slice(&entry.seq.to_le_bytes());
        body.extend_from_slice(&(entry.key.len() as u16).to_le_bytes());
        body.extend_from_slice(&(entry.value.len() as u32).to_le_bytes());
        body.extend_from_slice(&entry.key);
        body.extend_from_slice(&entry.value);
        let checksum = xxh64(&body, WAL_SEED);

        let mut guard = inner.lock();
        guard.file.write_all(&checksum.to_le_bytes())?;
        guard.file.write_all(&body)?;
        if self.sync_each_append {
            guard.file.sync_data()?;
        }
        Ok(())
    }

    /// Forces buffered records to stable storage.
    pub fn sync(&self) -> Result<()> {
        if let Some(inner) = &self.inner {
            inner.lock().file.sync_data()?;
        }
        Ok(())
    }

    /// Truncates the log — called right after a buffer flush makes its
    /// contents durable in a run.
    pub fn reset(&self) -> Result<()> {
        if let Some(inner) = &self.inner {
            let mut guard = inner.lock();
            guard.file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&guard.path)?;
            guard.file.sync_data()?;
        }
        Ok(())
    }
}

/// Decodes complete records from a WAL image, stopping at the first
/// corruption or truncation.
fn replay(buf: &[u8]) -> Vec<Entry> {
    let mut entries = Vec::new();
    let mut off = 0usize;
    loop {
        if off + 8 + 15 > buf.len() {
            break; // header truncated: clean EOF or torn tail
        }
        let checksum = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        let body_start = off + 8;
        let kind = buf[body_start];
        let seq = u64::from_le_bytes(buf[body_start + 1..body_start + 9].try_into().unwrap());
        let klen =
            u16::from_le_bytes(buf[body_start + 9..body_start + 11].try_into().unwrap()) as usize;
        let vlen =
            u32::from_le_bytes(buf[body_start + 11..body_start + 15].try_into().unwrap()) as usize;
        let body_end = body_start + 15 + klen + vlen;
        if body_end > buf.len() {
            break; // torn record
        }
        if xxh64(&buf[body_start..body_end], WAL_SEED) != checksum {
            break; // corrupt record: stop trusting the tail
        }
        let Some(kind) = EntryKind::from_byte(kind) else {
            break;
        };
        let key = Bytes::copy_from_slice(&buf[body_start + 15..body_start + 15 + klen]);
        let value = Bytes::copy_from_slice(&buf[body_start + 15 + klen..body_end]);
        entries.push(Entry {
            key,
            value,
            seq,
            kind,
        });
        off = body_end;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("monkey-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn disabled_wal_is_a_noop() {
        let wal = Wal::disabled();
        wal.append(&Entry::put(b"k".to_vec(), b"v".to_vec(), 1))
            .unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("basic");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, replayed) = Wal::open(&path, false).unwrap();
            assert!(replayed.is_empty());
            wal.append(&Entry::put(b"a".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            wal.append(&Entry::tombstone(b"b".to_vec(), 2)).unwrap();
            wal.sync().unwrap();
        }
        let (_wal, replayed) = Wal::open(&path, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].key.as_ref(), b"a");
        assert_eq!(replayed[0].value.as_ref(), b"1");
        assert!(replayed[1].is_tombstone());
        assert_eq!(replayed[1].seq, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path, false).unwrap();
            wal.append(&Entry::put(b"a".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            wal.reset().unwrap();
            wal.append(&Entry::put(b"b".to_vec(), b"2".to_vec(), 2))
                .unwrap();
            wal.sync().unwrap();
        }
        let (_wal, replayed) = Wal::open(&path, false).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"b");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_recovers_prefix() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path, false).unwrap();
            wal.append(&Entry::put(b"good".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            wal.append(&Entry::put(b"lost".to_vec(), b"2".to_vec(), 2))
                .unwrap();
            wal.sync().unwrap();
        }
        // Tear the last record.
        let buf = std::fs::read(&path).unwrap();
        std::fs::write(&path, &buf[..buf.len() - 3]).unwrap();
        let (_wal, replayed) = Wal::open(&path, false).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].key.as_ref(), b"good");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (wal, _) = Wal::open(&path, false).unwrap();
            wal.append(&Entry::put(b"first".to_vec(), b"1".to_vec(), 1))
                .unwrap();
            wal.append(&Entry::put(b"second".to_vec(), b"2".to_vec(), 2))
                .unwrap();
            wal.append(&Entry::put(b"third".to_vec(), b"3".to_vec(), 3))
                .unwrap();
            wal.sync().unwrap();
        }
        // Flip a byte in the middle record's body.
        let mut buf = std::fs::read(&path).unwrap();
        let record_len = 8 + 15 + 5 + 1; // first record (key "first", val "1")
        buf[record_len + 20] ^= 0xFF;
        std::fs::write(&path, &buf).unwrap();
        let (_wal, replayed) = Wal::open(&path, false).unwrap();
        assert_eq!(replayed.len(), 1, "only the intact prefix is trusted");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_garbage_files() {
        assert!(replay(&[]).is_empty());
        assert!(replay(&[1, 2, 3]).is_empty());
        assert!(replay(&[0u8; 64]).is_empty(), "zeroed preallocated file");
    }

    #[test]
    fn sync_each_append_mode() {
        let path = tmp("sync");
        let _ = std::fs::remove_file(&path);
        let (wal, _) = Wal::open(&path, true).unwrap();
        wal.append(&Entry::put(b"k".to_vec(), b"v".to_vec(), 1))
            .unwrap();
        drop(wal);
        let (_w, replayed) = Wal::open(&path, true).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
