//! K-way merge iteration over runs and the buffer.
//!
//! Both range lookups and merge (compaction) operations consume multiple
//! sorted sources at once. The merging iterator yields entries in internal
//! order (key ascending); with deduplication enabled, only the newest
//! version of each key survives — "only the entry from the most
//! recently-created run is kept because it is the most up-to-date" (§2).

use crate::entry::Entry;
use crate::error::Result;
use bytes::Bytes;
use std::cmp::Ordering;

/// A boxed sorted source of entries.
pub type EntrySource = Box<dyn Iterator<Item = Result<Entry>>>;

/// Sentinel runner-up index: no live contender besides the winner.
const NO_CONTENDER: usize = usize::MAX;

/// A tournament tree of losers over `k` sources.
///
/// Classic k-way merge structures pay `O(log k)` heap pops/pushes per
/// entry. The loser tree replays only the winner's root path (`log k`
/// comparisons), and — the case that dominates real merges, where one
/// input run supplies a long stretch of consecutive keys — a *run
/// detection* fast path keeps the same source winning with **one**
/// comparison per entry: after each replay the tree remembers the
/// runner-up (the best head among the losers on the winner's path); as
/// long as the winner's next entry still beats that runner-up, every
/// internal node's loser is unchanged and no replay is needed.
///
/// Ordering is internal order plus a source-index tiebreak — (key asc,
/// seq desc, source asc) — so the merge is fully deterministic, which the
/// parallel partitioned merge relies on for byte-identical output.
struct LoserTree {
    /// Current head of each leaf; `None` = exhausted (sorts last).
    /// Length is `p`, the leaf count padded to a power of two.
    heads: Vec<Option<Entry>>,
    /// `losers[1..p]`: the losing leaf of the match played at each
    /// internal node. `losers[0]` is unused.
    losers: Vec<usize>,
    /// Leaf count padded to a power of two.
    p: usize,
    /// Leaf holding the overall winner.
    winner: usize,
    /// Best leaf among the losers on the winner's path (the head the
    /// winner must beat to keep its crown without a replay).
    runner_up: usize,
}

impl LoserTree {
    fn new(mut heads: Vec<Option<Entry>>) -> Self {
        let p = heads.len().next_power_of_two().max(1);
        heads.resize_with(p, || None);
        let mut tree = Self {
            heads,
            losers: vec![0; p],
            p,
            winner: 0,
            runner_up: NO_CONTENDER,
        };
        tree.rebuild();
        tree
    }

    /// Does leaf `a`'s head beat leaf `b`'s in internal order?
    #[inline]
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => match x.key.cmp(&y.key).then_with(|| y.seq.cmp(&x.seq)) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Plays the full tournament bottom-up (initial build).
    fn rebuild(&mut self) {
        if self.p == 1 {
            self.winner = 0;
            self.runner_up = NO_CONTENDER;
            return;
        }
        let p = self.p;
        // winners[i] = winning leaf of the subtree rooted at node i.
        let mut winners = vec![0usize; 2 * p];
        for (i, w) in winners.iter_mut().enumerate().skip(p) {
            *w = i - p;
        }
        for i in (1..p).rev() {
            let (a, b) = (winners[2 * i], winners[2 * i + 1]);
            let (win, lose) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winners[i] = win;
            self.losers[i] = lose;
        }
        self.winner = winners[1];
        self.recompute_runner_up();
    }

    /// Replays the winner's path after its head changed hands.
    fn replay(&mut self) {
        let p = self.p;
        let mut winner = self.winner;
        let mut node = (winner + p) >> 1;
        while node >= 1 {
            let loser = self.losers[node];
            if self.beats(loser, winner) {
                self.losers[node] = winner;
                winner = loser;
            }
            node >>= 1;
        }
        self.winner = winner;
        self.recompute_runner_up();
    }

    fn recompute_runner_up(&mut self) {
        if self.p == 1 {
            self.runner_up = NO_CONTENDER;
            return;
        }
        let mut node = (self.winner + self.p) >> 1;
        let mut best = NO_CONTENDER;
        while node >= 1 {
            let cand = self.losers[node];
            if best == NO_CONTENDER || self.beats(cand, best) {
                best = cand;
            }
            node >>= 1;
        }
        self.runner_up = best;
    }

    /// The winning source index, or `None` when every source is exhausted.
    fn winner_source(&self) -> Option<usize> {
        self.heads[self.winner].is_some().then_some(self.winner)
    }

    /// Takes the winning entry; the caller must follow with
    /// [`refill`](Self::refill) before the next take.
    fn take_winner(&mut self) -> Entry {
        self.heads[self.winner].take().expect("winner has a head")
    }

    /// Installs the winner source's next head and restores the tournament
    /// invariant — by the 1-comparison fast path when the source is still
    /// winning, by a root-path replay otherwise.
    fn refill(&mut self, head: Option<Entry>) {
        self.heads[self.winner] = head;
        if self.runner_up == NO_CONTENDER {
            return; // sole live contender: nothing can outrank it
        }
        if self.beats(self.winner, self.runner_up) {
            return; // run detected: same source keeps winning
        }
        self.replay();
    }
}

/// Merges any number of sorted entry sources through a [`LoserTree`].
pub struct MergingIter {
    sources: Vec<EntrySource>,
    tree: LoserTree,
    last_key: Option<Bytes>,
    dedup: bool,
    failed: bool,
    // An error hit while refilling the tree: surfaced after the entries
    // already buffered, so no data is silently dropped before the error.
    pending_err: Option<crate::error::LsmError>,
}

impl MergingIter {
    /// Creates a merging iterator.
    ///
    /// With `dedup`, only the newest version (highest sequence number) of
    /// each key is yielded; older versions are consumed silently.
    pub fn new(mut sources: Vec<EntrySource>, dedup: bool) -> Result<Self> {
        let mut heads = Vec::with_capacity(sources.len());
        for source in sources.iter_mut() {
            match source.next() {
                Some(Ok(entry)) => heads.push(Some(entry)),
                Some(Err(e)) => return Err(e),
                None => heads.push(None),
            }
        }
        Ok(Self {
            sources,
            tree: LoserTree::new(heads),
            last_key: None,
            dedup,
            failed: false,
            pending_err: None,
        })
    }
}

impl Iterator for MergingIter {
    type Item = Result<Entry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            let Some(src) = self.tree.winner_source() else {
                if let Some(e) = self.pending_err.take() {
                    self.failed = true;
                    return Some(Err(e));
                }
                return None;
            };
            let entry = self.tree.take_winner();
            // After an error, stop pulling sources: the heads already
            // buffered drain first, then the error surfaces.
            let head = if self.pending_err.is_none() {
                match self.sources[src].next() {
                    Some(Ok(e)) => Some(e),
                    Some(Err(e)) => {
                        self.pending_err = Some(e);
                        None
                    }
                    None => None,
                }
            } else {
                None
            };
            self.tree.refill(head);
            if self.dedup {
                if self.last_key.as_ref() == Some(&entry.key) {
                    continue; // superseded version
                }
                self.last_key = Some(entry.key.clone());
            }
            return Some(Ok(entry));
        }
    }
}

/// A range-scan cursor over the whole tree, produced by
/// [`Db::range`](crate::Db::range). Yields live `(key, value)` pairs in key
/// order; tombstones and superseded versions are resolved internally.
pub struct RangeIter {
    source: RangeSource,
    hi: Option<Bytes>,
    done: bool,
    vlog: Option<std::sync::Arc<crate::vlog::ValueLog>>,
    // Range latency is recorded when the cursor is dropped, so the
    // histogram covers the whole scan, not just cursor construction.
    timer: Option<(
        std::sync::Arc<monkey_obs::Telemetry>,
        Option<std::time::Instant>,
    )>,
    // Live pairs yielded so far; reported to the workload characterizer on
    // drop as the scan's measured selectivity numerator.
    scanned: u64,
}

/// Where a range cursor's pairs come from.
enum RangeSource {
    /// One engine's k-way merge over its memtables and runs.
    Merged(MergingIter),
    /// Fan-out across per-shard cursors whose keyspaces are disjoint: each
    /// step yields the minimum head key. The children resolve their own
    /// tombstones, value-log pointers, and upper bounds.
    Shards {
        children: Vec<RangeIter>,
        heads: Vec<Option<(Bytes, Bytes)>>,
    },
}

impl RangeIter {
    pub(crate) fn new(inner: MergingIter, hi: Option<Bytes>) -> Self {
        Self {
            source: RangeSource::Merged(inner),
            hi,
            done: false,
            vlog: None,
            timer: None,
            scanned: 0,
        }
    }

    /// Merges per-shard cursors into one globally-sorted cursor. Because
    /// the shard router partitions by key, the children's keyspaces are
    /// disjoint — no deduplication is needed, only a min-head merge.
    pub(crate) fn fanout(mut children: Vec<RangeIter>) -> Result<Self> {
        let mut heads = Vec::with_capacity(children.len());
        for child in children.iter_mut() {
            heads.push(child.next().transpose()?);
        }
        Ok(Self {
            source: RangeSource::Shards { children, heads },
            hi: None,
            done: false,
            vlog: None,
            timer: None,
            scanned: 0,
        })
    }

    /// Attaches the value log used to resolve separated values.
    pub(crate) fn with_value_log(
        mut self,
        vlog: Option<std::sync::Arc<crate::vlog::ValueLog>>,
    ) -> Self {
        self.vlog = vlog;
        self
    }

    /// Attaches a telemetry hub and the scan's (sampled) start instant;
    /// the range latency sample lands when the cursor is dropped.
    pub(crate) fn with_telemetry(
        mut self,
        timer: Option<(
            std::sync::Arc<monkey_obs::Telemetry>,
            Option<std::time::Instant>,
        )>,
    ) -> Self {
        self.timer = timer;
        self
    }
}

impl Drop for RangeIter {
    fn drop(&mut self) {
        if let Some((telemetry, started)) = self.timer.take() {
            telemetry.workload().record_range(self.scanned);
            telemetry.op_end(monkey_obs::OpKind::Range, started);
        }
    }
}

impl Iterator for RangeIter {
    type Item = Result<(Bytes, Bytes)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let inner = match &mut self.source {
            RangeSource::Merged(inner) => inner,
            RangeSource::Shards { children, heads } => {
                // Minimum head key across the live children wins; disjoint
                // keyspaces mean ties are impossible.
                let min = heads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, h)| h.as_ref().map(|(k, _)| (i, k)))
                    .min_by(|a, b| a.1.cmp(b.1))
                    .map(|(i, _)| i)?;
                let pair = heads[min].take().expect("min head is live");
                match children[min].next().transpose() {
                    Ok(head) => heads[min] = head,
                    Err(e) => {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
                self.scanned += 1;
                return Some(Ok(pair));
            }
        };
        loop {
            let entry = match inner.next()? {
                Ok(e) => e,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            if let Some(hi) = &self.hi {
                if entry.key >= *hi {
                    self.done = true;
                    return None;
                }
            }
            if entry.is_tombstone() {
                continue; // deleted key: invisible to scans
            }
            if entry.kind == crate::entry::EntryKind::IndirectPut {
                let resolved = crate::vlog::ValuePointer::decode(&entry.value)
                    .ok_or_else(|| {
                        crate::error::LsmError::Corruption("malformed value-log pointer".into())
                    })
                    .and_then(|ptr| match &self.vlog {
                        Some(vlog) => vlog.get(ptr),
                        None => Err(crate::error::LsmError::Corruption(
                            "indirect entry in a store without a value log".into(),
                        )),
                    });
                return match resolved {
                    Ok(value) => {
                        self.scanned += 1;
                        Some(Ok((entry.key, value)))
                    }
                    Err(e) => {
                        self.done = true;
                        Some(Err(e))
                    }
                };
            }
            self.scanned += 1;
            return Some(Ok((entry.key, entry.value)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(entries: Vec<Entry>) -> EntrySource {
        Box::new(entries.into_iter().map(Ok))
    }

    fn put(k: &str, v: &str, seq: u64) -> Entry {
        Entry::put(k.as_bytes().to_vec(), v.as_bytes().to_vec(), seq)
    }

    #[test]
    fn merges_in_key_order() {
        let it = MergingIter::new(
            vec![
                src(vec![put("a", "1", 1), put("c", "3", 3)]),
                src(vec![put("b", "2", 2), put("d", "4", 4)]),
            ],
            false,
        )
        .unwrap();
        let keys: Vec<String> = it
            .map(|e| String::from_utf8(e.unwrap().key.to_vec()).unwrap())
            .collect();
        assert_eq!(keys, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn dedup_keeps_newest_version() {
        let it = MergingIter::new(
            vec![
                src(vec![put("k", "new", 10)]),
                src(vec![put("k", "old", 5)]),
            ],
            true,
        )
        .unwrap();
        let got: Vec<Entry> = it.map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].value.as_ref(), b"new");
    }

    #[test]
    fn without_dedup_all_versions_surface_newest_first() {
        let it = MergingIter::new(
            vec![
                src(vec![put("k", "old", 5)]),
                src(vec![put("k", "new", 10)]),
            ],
            false,
        )
        .unwrap();
        let got: Vec<Entry> = it.map(|e| e.unwrap()).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 10, "internal order: newest first among equals");
        assert_eq!(got[1].seq, 5);
    }

    #[test]
    fn dedup_across_three_sources() {
        let it = MergingIter::new(
            vec![
                src(vec![put("a", "a2", 20), put("b", "b1", 11)]),
                src(vec![put("a", "a1", 10), put("c", "c1", 12)]),
                src(vec![put("a", "a0", 1), put("b", "b0", 2)]),
            ],
            true,
        )
        .unwrap();
        let got: Vec<(String, String)> = it
            .map(|e| {
                let e = e.unwrap();
                (
                    String::from_utf8(e.key.to_vec()).unwrap(),
                    String::from_utf8(e.value.to_vec()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), "a2".into()),
                ("b".into(), "b1".into()),
                ("c".into(), "c1".into())
            ]
        );
    }

    #[test]
    fn empty_sources_are_fine() {
        let it = MergingIter::new(vec![src(vec![]), src(vec![])], true).unwrap();
        assert_eq!(it.count(), 0);
        let it = MergingIter::new(vec![], true).unwrap();
        assert_eq!(it.count(), 0);
    }

    #[test]
    fn range_iter_hides_tombstones_and_respects_bound() {
        let inner = MergingIter::new(
            vec![src(vec![
                put("a", "1", 1),
                Entry::tombstone(b"b".to_vec(), 2),
                put("c", "3", 3),
                put("d", "4", 4),
            ])],
            true,
        )
        .unwrap();
        let it = RangeIter::new(inner, Some(Bytes::from_static(b"d")));
        let keys: Vec<String> = it
            .map(|kv| String::from_utf8(kv.unwrap().0.to_vec()).unwrap())
            .collect();
        assert_eq!(keys, vec!["a", "c"], "b deleted, d excluded");
    }

    #[test]
    fn error_from_source_propagates_and_fuses() {
        let bad: EntrySource = Box::new(
            vec![
                Ok(put("a", "1", 1)),
                Err(crate::error::LsmError::Corruption("synthetic".into())),
                Ok(put("z", "9", 9)),
            ]
            .into_iter(),
        );
        let mut it = MergingIter::new(vec![bad], true).unwrap();
        assert!(it.next().unwrap().is_ok());
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iterator fuses after error");
    }
}
