//! Value-log separation (the WiscKey technique the paper's §6 discusses:
//! "decouples values from keys and stores values on a separate log. This
//! technique is compatible with Monkey's core design, but it would require
//! adapting the cost models to account for (1) only merging keys, and
//! (2) having to access the log during lookups").
//!
//! Values at or above a configurable threshold are appended to an
//! append-only log; the tree stores a fixed-width pointer instead. Merges
//! then move pointers (tens of bytes) instead of values (kilobytes), which
//! divides the `E` in the update-cost model by the value size — at the
//! price of one extra I/O on lookups that hit a separated value.
//!
//! Log page layout:
//!
//! ```text
//! [u16 slot_count][u64 checksum]
//! slot_count × [u32 len][bytes]
//! [zero padding to the page size]
//! ```
//!
//! A pointer names `(log run id, page, slot)` and encodes in 14 bytes.
//!
//! Garbage collection: superseded values become dead space in sealed log
//! runs. [`crate::Db::migrate_to`] acts as an offline GC — it streams live
//! key-value pairs (resolving pointers) into a fresh store, which
//! re-separates them into a compact new log.

use crate::error::{LsmError, Result};
use bytes::Bytes;
use monkey_bloom::hash::xxh64;
use monkey_storage::{Disk, RunId};
use parking_lot::Mutex;
use std::sync::Arc;

const VLOG_SEED: u64 = 0x564C_4F47_4D4F_4E4B; // "VLOGMONK"
const PAGE_HEADER: usize = 2 + 8;

/// A pointer into the value log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValuePointer {
    /// Storage id of the log run.
    pub run: RunId,
    /// Page within the run.
    pub page: u32,
    /// Slot within the page.
    pub slot: u16,
}

impl ValuePointer {
    /// Encoded size on a page / in the WAL.
    pub const ENCODED_LEN: usize = 8 + 4 + 2;

    /// Encodes the pointer.
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut buf = [0u8; Self::ENCODED_LEN];
        buf[..8].copy_from_slice(&self.run.to_le_bytes());
        buf[8..12].copy_from_slice(&self.page.to_le_bytes());
        buf[12..14].copy_from_slice(&self.slot.to_le_bytes());
        buf
    }

    /// Decodes a pointer, or `None` on bad length.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() != Self::ENCODED_LEN {
            return None;
        }
        Some(Self {
            run: RunId::from_le_bytes(buf[..8].try_into().unwrap()),
            page: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            slot: u16::from_le_bytes(buf[12..14].try_into().unwrap()),
        })
    }
}

struct OpenPage {
    buf: Vec<u8>,
    slots: u16,
}

struct VlogState {
    writer: Option<monkey_storage::RunWriter>,
    open: OpenPage,
    /// Pages already appended to the current run.
    pages_flushed: u32,
}

/// The append-only value log.
pub struct ValueLog {
    disk: Arc<Disk>,
    state: Mutex<VlogState>,
    /// Log runs are rotated once they reach this many pages.
    run_pages_limit: u32,
}

impl ValueLog {
    /// Creates a log on `disk`, rotating runs every `run_pages_limit` pages.
    pub fn new(disk: Arc<Disk>, run_pages_limit: u32) -> Self {
        assert!(run_pages_limit >= 1);
        Self {
            disk,
            state: Mutex::new(VlogState {
                writer: None,
                open: OpenPage {
                    buf: empty_page_buf(),
                    slots: 0,
                },
                pages_flushed: 0,
            }),
            run_pages_limit,
        }
    }

    fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// Largest value the log can hold (one page minus headers).
    pub fn max_value_len(&self) -> usize {
        self.page_size() - PAGE_HEADER - 4
    }

    /// Appends a value, returning its pointer. The value becomes readable
    /// immediately (partially filled pages are served from memory) and
    /// durable once its page fills or [`sync`](Self::sync) runs.
    pub fn append(&self, value: &[u8]) -> Result<ValuePointer> {
        if value.len() > self.max_value_len() {
            return Err(LsmError::EntryTooLarge {
                encoded: value.len(),
                max: self.max_value_len(),
            });
        }
        let mut state = self.state.lock();
        // Close the open page if the value does not fit.
        if state.open.buf.len() + 4 + value.len() > self.page_size() {
            self.flush_open_page(&mut state)?;
        }
        let slot = state.open.slots;
        state
            .open
            .buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        state.open.buf.extend_from_slice(value);
        state.open.slots += 1;
        let count = state.open.slots;
        state.open.buf[0..2].copy_from_slice(&count.to_le_bytes());

        let writer = match &state.writer {
            Some(w) => w.id(),
            None => {
                let w = self.disk.begin_run();
                let id = w.id();
                state.writer = Some(w);
                id
            }
        };
        Ok(ValuePointer {
            run: writer,
            page: state.pages_flushed,
            slot,
        })
    }

    fn flush_open_page(&self, state: &mut VlogState) -> Result<()> {
        if state.open.slots == 0 {
            return Ok(());
        }
        let mut page = std::mem::replace(&mut state.open.buf, empty_page_buf());
        state.open.slots = 0;
        page.resize(self.page_size(), 0);
        let checksum = xxh64(&page[PAGE_HEADER..], VLOG_SEED ^ page[0] as u64);
        page[2..10].copy_from_slice(&checksum.to_le_bytes());
        let writer = match &mut state.writer {
            Some(w) => w,
            None => {
                state.writer = Some(self.disk.begin_run());
                state.writer.as_mut().unwrap()
            }
        };
        writer.append(&page)?;
        state.pages_flushed += 1;
        if state.pages_flushed >= self.run_pages_limit {
            let w = state.writer.take().expect("writer present");
            w.seal()?;
            state.pages_flushed = 0;
        }
        Ok(())
    }

    /// Forces the open page (if any) to storage and **seals the current
    /// run**, so everything referenced by already-handed-out pointers
    /// survives a crash (an unsealed run is treated as aborted and cleaned
    /// up on drop). Subsequent appends open a fresh run — the log rotates
    /// once per sync (i.e. per buffer flush) or per `run_pages_limit`
    /// pages, whichever comes first.
    pub fn sync(&self) -> Result<()> {
        let mut state = self.state.lock();
        self.flush_open_page(&mut state)?;
        if let Some(w) = state.writer.take() {
            if w.pages_written() > 0 {
                w.seal()?;
            }
            state.pages_flushed = 0;
        }
        Ok(())
    }

    /// Reads the value behind `ptr`. One page I/O (cache-eligible) when the
    /// page has been flushed; free when it is still the open page.
    pub fn get(&self, ptr: ValuePointer) -> Result<Bytes> {
        {
            let state = self.state.lock();
            let open_run = state.writer.as_ref().map(|w| w.id());
            if Some(ptr.run) == open_run && ptr.page == state.pages_flushed {
                // Still in the open page: serve from memory.
                return read_slot(&state.open.buf, state.open.slots, ptr.slot);
            }
        }
        let page = self.disk.read_page(ptr.run, ptr.page)?;
        decode_slot(&page, ptr.slot)
    }
}

fn empty_page_buf() -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&0u16.to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes());
    buf
}

fn read_slot(buf: &[u8], count: u16, slot: u16) -> Result<Bytes> {
    if slot >= count {
        return Err(LsmError::Corruption(format!(
            "value-log slot {slot} out of {count} (open page)"
        )));
    }
    let mut off = PAGE_HEADER;
    for _ in 0..slot {
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
        off += 4 + len;
    }
    let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
    Ok(Bytes::copy_from_slice(&buf[off + 4..off + 4 + len]))
}

fn decode_slot(page: &Bytes, slot: u16) -> Result<Bytes> {
    if page.len() < PAGE_HEADER {
        return Err(LsmError::Corruption(
            "value-log page shorter than header".into(),
        ));
    }
    let count = u16::from_le_bytes(page[0..2].try_into().unwrap());
    let stored = u64::from_le_bytes(page[2..10].try_into().unwrap());
    let computed = xxh64(&page[PAGE_HEADER..], VLOG_SEED ^ page[0] as u64);
    if stored != computed {
        return Err(LsmError::Corruption(
            "value-log page checksum mismatch".into(),
        ));
    }
    if slot >= count {
        return Err(LsmError::Corruption(format!(
            "value-log slot {slot} out of {count}"
        )));
    }
    let mut off = PAGE_HEADER;
    for _ in 0..slot {
        if off + 4 > page.len() {
            return Err(LsmError::Corruption(
                "value-log slot walk overran page".into(),
            ));
        }
        let len = u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) as usize;
        off += 4 + len;
    }
    if off + 4 > page.len() {
        return Err(LsmError::Corruption(
            "value-log slot header overran page".into(),
        ));
    }
    let len = u32::from_le_bytes(page[off..off + 4].try_into().unwrap()) as usize;
    if off + 4 + len > page.len() {
        return Err(LsmError::Corruption("value-log value overran page".into()));
    }
    Ok(page.slice(off + 4..off + 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vlog() -> ValueLog {
        ValueLog::new(Disk::mem(256), 4)
    }

    #[test]
    fn pointer_roundtrip() {
        let p = ValuePointer {
            run: 77,
            page: 3,
            slot: 9,
        };
        assert_eq!(ValuePointer::decode(&p.encode()), Some(p));
        assert_eq!(ValuePointer::decode(&[0u8; 3]), None);
    }

    #[test]
    fn append_get_roundtrip_across_pages() {
        let log = vlog();
        let values: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 50]).collect();
        let ptrs: Vec<ValuePointer> = values.iter().map(|v| log.append(v).unwrap()).collect();
        // Values span multiple pages and runs (256B pages, 4-page runs).
        assert!(ptrs.iter().any(|p| p.page > 0));
        assert!(ptrs.iter().any(|p| p.run != ptrs[0].run), "run rotation");
        for (v, p) in values.iter().zip(&ptrs) {
            assert_eq!(log.get(*p).unwrap().as_ref(), &v[..], "{p:?}");
        }
    }

    #[test]
    fn open_page_values_readable_before_flush() {
        let log = vlog();
        let ptr = log.append(b"unflushed").unwrap();
        assert_eq!(log.get(ptr).unwrap().as_ref(), b"unflushed");
        log.sync().unwrap();
        assert_eq!(log.get(ptr).unwrap().as_ref(), b"unflushed");
    }

    #[test]
    fn sync_seals_and_rotates_runs() {
        let disk = Disk::mem(256);
        let log = ValueLog::new(Arc::clone(&disk), 1024);
        let a = log.append(b"first-batch").unwrap();
        log.sync().unwrap();
        let b = log.append(b"second-batch").unwrap();
        log.sync().unwrap();
        assert_ne!(a.run, b.run, "each sync rotates to a new run");
        assert_eq!(log.get(a).unwrap().as_ref(), b"first-batch");
        assert_eq!(log.get(b).unwrap().as_ref(), b"second-batch");
        // Sealed runs survive the log itself being dropped.
        drop(log);
        assert!(disk.run_pages(a.run).is_ok());
    }

    #[test]
    fn oversized_value_rejected() {
        let log = vlog();
        assert!(matches!(
            log.append(&vec![0u8; 300]),
            Err(LsmError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn variable_sizes_in_one_page() {
        let log = vlog();
        let a = log.append(b"x").unwrap();
        let b = log.append(&[b'y'; 100]).unwrap();
        let c = log.append(b"").unwrap();
        log.sync().unwrap();
        assert_eq!(log.get(a).unwrap().as_ref(), b"x");
        assert_eq!(log.get(b).unwrap().len(), 100);
        assert!(log.get(c).unwrap().is_empty());
    }

    #[test]
    fn bad_slot_is_corruption_not_panic() {
        let log = vlog();
        let p = log.append(b"only").unwrap();
        log.sync().unwrap();
        let bad = ValuePointer { slot: 5, ..p };
        assert!(matches!(log.get(bad), Err(LsmError::Corruption(_))));
    }

    #[test]
    fn io_cost_one_read_per_flushed_lookup() {
        let disk = Disk::mem(256);
        let log = ValueLog::new(Arc::clone(&disk), 100);
        let ptr = log.append(&[b'v'; 100]).unwrap();
        log.sync().unwrap();
        disk.reset_io();
        log.get(ptr).unwrap();
        assert_eq!(
            disk.io().page_reads,
            1,
            "exactly the one extra I/O the model charges"
        );
    }
}
