//! Key-value entries and their internal ordering.
//!
//! An entry is a key-value pair plus a monotonically increasing sequence
//! number and a kind flag ("there is a flag attached to each entry to
//! indicate if it is a delete", §2). Within the tree, versions of the same
//! key are ordered newest-first: a lookup stops at the first version it
//! finds, and merges keep only the version from the youngest run.

use bytes::Bytes;

/// Whether an entry stores a value, a value-log pointer, or marks a
/// deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// A live key-value pair with the value inline.
    Put,
    /// A tombstone superseding older versions of the key.
    Delete,
    /// A live pair whose value lives in the value log; the entry's value
    /// field holds an encoded [`ValuePointer`](crate::vlog::ValuePointer).
    IndirectPut,
}

impl EntryKind {
    /// Single-byte wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            Self::Put => 0,
            Self::Delete => 1,
            Self::IndirectPut => 2,
        }
    }

    /// Decodes the wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(Self::Put),
            1 => Some(Self::Delete),
            2 => Some(Self::IndirectPut),
            _ => None,
        }
    }

    /// True for either live kind (inline or indirect).
    pub fn is_live(self) -> bool {
        !matches!(self, Self::Delete)
    }
}

/// One versioned key-value entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Application key.
    pub key: Bytes,
    /// Application value (empty for tombstones).
    pub value: Bytes,
    /// Global sequence number; larger = newer.
    pub seq: u64,
    /// Put or tombstone.
    pub kind: EntryKind,
}

impl Entry {
    /// Creates a live entry.
    pub fn put(key: impl Into<Bytes>, value: impl Into<Bytes>, seq: u64) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
            seq,
            kind: EntryKind::Put,
        }
    }

    /// Creates a tombstone.
    pub fn tombstone(key: impl Into<Bytes>, seq: u64) -> Self {
        Self {
            key: key.into(),
            value: Bytes::new(),
            seq,
            kind: EntryKind::Delete,
        }
    }

    /// True for tombstones.
    pub fn is_tombstone(&self) -> bool {
        self.kind == EntryKind::Delete
    }

    /// Encoded size on a page: fixed header plus key and value bytes.
    pub fn encoded_len(&self) -> usize {
        ENTRY_HEADER_LEN + self.key.len() + self.value.len()
    }

    /// Internal ordering: key ascending, then sequence number *descending*,
    /// so the newest version of a key sorts first among its duplicates.
    pub fn internal_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bytes of per-entry header on a page: key length (u16), value length
/// (u32), sequence (u64), kind (u8).
pub const ENTRY_HEADER_LEN: usize = 2 + 4 + 8 + 1;

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn kind_roundtrip() {
        for k in [EntryKind::Put, EntryKind::Delete, EntryKind::IndirectPut] {
            assert_eq!(EntryKind::from_byte(k.to_byte()), Some(k));
        }
        assert_eq!(EntryKind::from_byte(7), None);
        assert!(EntryKind::Put.is_live());
        assert!(EntryKind::IndirectPut.is_live());
        assert!(!EntryKind::Delete.is_live());
    }

    #[test]
    fn constructors() {
        let e = Entry::put(&b"k"[..], &b"v"[..], 5);
        assert!(!e.is_tombstone());
        assert_eq!(e.seq, 5);
        let t = Entry::tombstone(&b"k"[..], 6);
        assert!(t.is_tombstone());
        assert!(t.value.is_empty());
    }

    #[test]
    fn encoded_len_counts_header() {
        let e = Entry::put(&b"ab"[..], &b"cde"[..], 0);
        assert_eq!(e.encoded_len(), ENTRY_HEADER_LEN + 5);
    }

    #[test]
    fn internal_cmp_orders_key_then_newest_first() {
        let a1 = Entry::put(&b"a"[..], &b"1"[..], 1);
        let a2 = Entry::put(&b"a"[..], &b"2"[..], 2);
        let b1 = Entry::put(&b"b"[..], &b"1"[..], 1);
        assert_eq!(a2.internal_cmp(&a1), Ordering::Less, "newer version first");
        assert_eq!(a1.internal_cmp(&b1), Ordering::Less);
        assert_eq!(b1.internal_cmp(&a2), Ordering::Greater);
        assert_eq!(a1.internal_cmp(&a1.clone()), Ordering::Equal);
    }
}
