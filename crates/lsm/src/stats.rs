//! Introspection: the tree's shape, memory footprint, and expected costs.
//!
//! These statistics are what the experiment harness records: the actual
//! per-level filter allocation, the memory terms `M_buffer` / `M_filters` /
//! `M_pointers` of the paper's Figure 2, and the model-predicted expected
//! I/O cost of a zero-result lookup (the sum of all filters' false positive
//! rates — the paper's central quantity `R`).

/// Statistics of one disk level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelStats {
    /// 1-based level index.
    pub level: usize,
    /// Number of runs resident at this level.
    pub runs: usize,
    /// Entries across the level's runs.
    pub entries: u64,
    /// Payload bytes across the level's runs.
    pub bytes: u64,
    /// Capacity threshold of the level in bytes (`M_buffer · Tⁱ`).
    pub capacity_bytes: u64,
    /// Filter memory across the level's runs, in bits.
    pub filter_bits: u64,
    /// Sum of the level's runs' theoretical false positive rates — the
    /// level's contribution to `R`.
    pub fpr_sum: f64,
}

/// Snapshot of the whole database's structure.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DbStats {
    /// Entries currently in the buffer.
    pub buffer_entries: u64,
    /// Bytes currently in the buffer.
    pub buffer_bytes: u64,
    /// Configured buffer capacity (`M_buffer`).
    pub buffer_capacity: u64,
    /// Per-level statistics, shallowest first.
    pub levels: Vec<LevelStats>,
    /// Total entries on disk (excludes the buffer).
    pub disk_entries: u64,
    /// Total runs on disk.
    pub runs: usize,
    /// Total filter memory in bits (`M_filters`).
    pub filter_bits: u64,
    /// Total fence-pointer memory in bits (`M_pointers`).
    pub fence_bits: u64,
    /// Expected I/Os for a zero-result point lookup: the sum of all runs'
    /// theoretical false positive rates (Eq. 3).
    pub expected_zero_result_lookup_ios: f64,
    /// Observed point-lookup path counters since the database was opened.
    pub lookups: LookupStats,
    /// Entries held in immutable memtables queued for flush (readable but
    /// no longer accepting writes).
    pub immutable_entries: u64,
    /// Write-pipeline counters since the database was opened.
    pub pipeline: PipelineStats,
    /// Write-pipeline gauges: instantaneous levels at snapshot time.
    pub pipeline_gauges: PipelineGauges,
}

/// Observed **counters** of the background write pipeline: how often
/// foreground puts hit backpressure and how well the WAL's group commit
/// amortizes writes.
///
/// Everything here is monotonically non-decreasing over the lifetime of
/// the `Db` handle, so two snapshots can be subtracted to get a rate
/// (a Prometheus `counter`). Instantaneous levels — quantities that go
/// both up and down, where subtraction is meaningless — live in
/// [`PipelineGauges`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Puts that blocked because the immutable-memtable backlog was at
    /// its configured limit.
    pub stalls: u64,
    /// Total wall-clock microseconds puts spent stalled.
    pub stall_micros: u64,
    /// Flush/merge failures recorded by the background worker (the error
    /// itself is returned from the next foreground call).
    pub background_errors: u64,
    /// WAL write batches issued (each one `write` + at most one `sync`).
    pub wal_group_commits: u64,
    /// WAL records carried by those batches; `wal_batched_appends /
    /// wal_group_commits` is the mean group-commit batch size.
    pub wal_batched_appends: u64,
    /// Physical `fsync` calls the WAL issued. With fsync batching on,
    /// concurrent group commits (across segments *and* shards) piggyback
    /// on one in-flight sync, so `wal_syncs / wal_group_commits` — the
    /// syncs-per-commit ratio — drops below 1 under load.
    pub wal_syncs: u64,
}

/// Observed **gauges** of the background write pipeline: instantaneous
/// levels, valid only at the moment the snapshot was taken.
///
/// A gauge moves in both directions — the flush backlog grows when puts
/// outrun the flush stage and shrinks as it catches up — so unlike the
/// monotone [`PipelineStats`] counters, subtracting two gauge snapshots
/// tells you nothing; only the latest value is meaningful (a Prometheus
/// `gauge`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineGauges {
    /// Immutable memtables currently queued behind the active one.
    pub immutable_queue_depth: usize,
    /// Writer threads currently blocked in a backpressure stall, waiting
    /// for the flush stage to drain the immutable queue.
    pub stalled_writers: usize,
}

/// Observed counters of the point-lookup fast path. Where
/// [`DbStats::expected_zero_result_lookup_ios`] is the *model's* prediction
/// of `R`, these are the *measured* quantities: `filter_false_positives /
/// key_hashes` is the empirical zero-result I/O rate when the workload is
/// all zero-result lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupStats {
    /// Lookups that reached the disk levels; each hashes its key exactly
    /// once, however many runs it then visits.
    pub key_hashes: u64,
    /// Bloom-filter probes across all runs visited (degenerate zero-bit
    /// filters are not probed).
    pub filter_probes: u64,
    /// Probes the filter answered "definitely absent" — I/O saved.
    pub filter_negatives: u64,
    /// Probes where the filter said "maybe" but the page read found
    /// nothing — one wasted I/O each; the measured counterpart of `R`.
    pub filter_false_positives: u64,
}

impl LookupStats {
    /// Measured wasted I/Os per point lookup — the empirical counterpart
    /// of [`DbStats::expected_zero_result_lookup_ios`] when the workload
    /// is all zero-result lookups. `0.0` before any lookup ran.
    pub fn measured_zero_result_lookup_ios(&self) -> f64 {
        if self.key_hashes == 0 {
            0.0
        } else {
            self.filter_false_positives as f64 / self.key_hashes as f64
        }
    }
}

impl DbStats {
    /// Number of non-empty disk levels.
    pub fn occupied_levels(&self) -> usize {
        self.levels.iter().filter(|l| l.runs > 0).count()
    }

    /// Depth of the tree: the deepest non-empty level's index (0 when the
    /// tree is empty).
    pub fn depth(&self) -> usize {
        self.levels
            .iter()
            .rev()
            .find(|l| l.runs > 0)
            .map_or(0, |l| l.level)
    }

    /// Effective filter bits-per-entry across the tree.
    pub fn bits_per_entry(&self) -> f64 {
        if self.disk_entries == 0 {
            0.0
        } else {
            self.filter_bits as f64 / self.disk_entries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(idx: usize, runs: usize) -> LevelStats {
        LevelStats {
            level: idx,
            runs,
            entries: runs as u64 * 10,
            bytes: runs as u64 * 100,
            capacity_bytes: 1000,
            filter_bits: runs as u64 * 50,
            fpr_sum: runs as f64 * 0.01,
        }
    }

    #[test]
    fn depth_and_occupied() {
        let s = DbStats {
            levels: vec![level(1, 1), level(2, 0), level(3, 2)],
            ..Default::default()
        };
        assert_eq!(s.occupied_levels(), 2);
        assert_eq!(s.depth(), 3, "empty middle level does not hide depth");
        assert_eq!(DbStats::default().depth(), 0);
    }

    #[test]
    fn measured_zero_result_lookup_ios() {
        let mut l = LookupStats::default();
        assert_eq!(l.measured_zero_result_lookup_ios(), 0.0);
        l.key_hashes = 200;
        l.filter_false_positives = 3;
        assert!((l.measured_zero_result_lookup_ios() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn bits_per_entry() {
        let s = DbStats {
            disk_entries: 100,
            filter_bits: 550,
            ..Default::default()
        };
        assert!((s.bits_per_entry() - 5.5).abs() < 1e-12);
        assert_eq!(DbStats::default().bits_per_entry(), 0.0);
    }
}
