//! Property-based tests for the storage layer.

use bytes::Bytes;
use monkey_storage::{BlockCache, Disk};
use proptest::prelude::*;

proptest! {
    /// Pages written through a RunWriter read back verbatim through the
    /// counted read path, for any page pattern.
    #[test]
    fn run_roundtrip(pages in proptest::collection::vec(any::<u8>(), 1..40), page_size in 1usize..256) {
        let disk = Disk::mem(page_size);
        let mut w = disk.begin_run();
        for &fill in &pages {
            w.append(&vec![fill; page_size]).unwrap();
        }
        let id = w.seal().unwrap();
        prop_assert_eq!(disk.run_pages(id).unwrap() as usize, pages.len());
        for (i, &fill) in pages.iter().enumerate() {
            let got = disk.read_page(id, i as u32).unwrap();
            prop_assert!(got.iter().all(|&b| b == fill));
        }
    }

    /// I/O accounting is exact: N appends = N writes, M random reads =
    /// M reads and M seeks (no cache).
    #[test]
    fn io_counts_exact(n_pages in 1u32..30, reads in proptest::collection::vec(any::<u32>(), 0..50)) {
        let disk = Disk::mem(32);
        let mut w = disk.begin_run();
        for _ in 0..n_pages {
            w.append(&[0u8; 32]).unwrap();
        }
        let id = w.seal().unwrap();
        let io = disk.io();
        prop_assert_eq!(io.page_writes, n_pages as u64);
        disk.reset_io();
        for &r in &reads {
            disk.read_page(id, r % n_pages).unwrap();
        }
        let io = disk.io();
        prop_assert_eq!(io.page_reads, reads.len() as u64);
        prop_assert_eq!(io.seeks, reads.len() as u64);
        prop_assert_eq!(io.cache_hits, 0);
    }

    /// Sequential reads return the same bytes as page-at-a-time reads but
    /// cost exactly one seek.
    #[test]
    fn sequential_matches_random(n_pages in 2u32..30, start in 0u32..29, len in 1u32..30) {
        let disk = Disk::mem(16);
        let mut w = disk.begin_run();
        for i in 0..n_pages {
            w.append(&[i as u8; 16]).unwrap();
        }
        let id = w.seal().unwrap();
        let start = start % n_pages;
        let len = len.min(n_pages - start);
        disk.reset_io();
        let scanned = disk.read_pages(id, start, len).unwrap();
        prop_assert_eq!(disk.io().seeks, 1);
        prop_assert_eq!(disk.io().page_reads, len as u64);
        for (i, p) in scanned.iter().enumerate() {
            prop_assert_eq!(p[0], (start as usize + i) as u8);
        }
    }

    /// The cache never exceeds its capacity and never returns wrong bytes.
    #[test]
    fn cache_capacity_and_correctness(
        ops in proptest::collection::vec((0u64..8, 0u32..16, any::<u8>()), 1..200),
        capacity in 0usize..4096,
    ) {
        let cache = BlockCache::new(capacity);
        let mut model = std::collections::HashMap::new();
        for &(run, page, fill) in &ops {
            let data = Bytes::from(vec![fill; 64]);
            cache.insert(run, page, data.clone());
            model.insert((run, page), data);
            // The byte budget is enforced per shard and rounds up, so the
            // total may exceed the configured capacity by up to one byte
            // per shard (16).
            prop_assert!(cache.used_bytes() <= capacity.div_ceil(16) * 16);
            if let Some(got) = cache.get(run, page) {
                prop_assert_eq!(&got, model.get(&(run, page)).unwrap());
            }
        }
    }

    /// With an unbounded cache, re-reading any previously read page is a
    /// cache hit, never an I/O.
    #[test]
    fn warm_cache_absorbs_rereads(reads in proptest::collection::vec(0u32..20, 1..100)) {
        let disk = Disk::mem_cached(32, usize::MAX / 2);
        let mut w = disk.begin_run();
        for i in 0..20u32 {
            w.append(&[i as u8; 32]).unwrap();
        }
        let id = w.seal().unwrap();
        disk.reset_io();
        let mut seen = std::collections::HashSet::new();
        for &r in &reads {
            disk.read_page(id, r).unwrap();
            seen.insert(r);
        }
        let io = disk.io();
        prop_assert_eq!(io.page_reads, seen.len() as u64, "each page faulted once");
        prop_assert_eq!(io.cache_hits, (reads.len() - seen.len()) as u64);
    }
}
